// PrivacyCostController unit tests over a scripted fake plant — the
// control law (hysteresis band, cooldown, ladder edges), the emergency
// privacy clamp, operator verbs (freeze / set-bounds), the auditable
// decision trail, and every observability surface (metrics, events,
// flight-recorder trigger). The final paired-rig test proves the
// controller's event and trace shapes over a real sharded engine are
// secret-independent.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "control/controller.h"
#include "obs/eventlog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/sharded_engine.h"

namespace shpir::control {
namespace {

using Outcome = PrivacyCostController::Outcome;

/// Scripted plant: tests set each shard's signals directly and inspect
/// the retune requests the controller issues. A successful request
/// mimics the engine by marking the transition pending; ApplyPending()
/// plays the scan-period boundary.
class FakePlant : public ControlPlant {
 public:
  struct Shard {
    uint64_t disk_slots = 256;
    uint64_t cache_pages = 8;
    ShardSignals signals;
    Status next_status = OkStatus();
    std::vector<uint64_t> requests;
  };

  explicit FakePlant(size_t num_shards, uint64_t initial_k = 128)
      : shards_(num_shards) {
    for (Shard& shard : shards_) {
      shard.signals.block_size = initial_k;
    }
  }

  uint64_t shards() const override { return shards_.size(); }
  uint64_t disk_slots(uint64_t shard) const override {
    return shards_[shard].disk_slots;
  }
  uint64_t cache_pages(uint64_t shard) const override {
    return shards_[shard].cache_pages;
  }
  ShardSignals Read(uint64_t shard) override {
    return shards_[shard].signals;
  }
  Status RequestBlockSize(uint64_t shard, uint64_t new_k) override {
    shards_[shard].requests.push_back(new_k);
    if (!shards_[shard].next_status.ok()) {
      return shards_[shard].next_status;
    }
    shards_[shard].signals.pending_block_size = new_k;
    return OkStatus();
  }

  void ApplyPending(uint64_t shard) {
    Shard& s = shards_[shard];
    if (s.signals.pending_block_size != 0) {
      s.signals.block_size = s.signals.pending_block_size;
      s.signals.pending_block_size = 0;
    }
  }

  Shard& shard(uint64_t i) { return shards_[i]; }

 private:
  std::vector<Shard> shards_;
};

PrivacyCostController::Options BaseOptions() {
  PrivacyCostController::Options options;
  options.c_bound = 4.0;  // Ladder {32, 64, 128} on 256 slots, m = 8.
  options.cooldown_ticks = 0;
  return options;
}

std::unique_ptr<PrivacyCostController> MakeController(
    FakePlant* plant, PrivacyCostController::Options options) {
  Result<std::unique_ptr<PrivacyCostController>> controller =
      PrivacyCostController::Create(options, plant);
  SHPIR_CHECK(controller.ok());
  return std::move(*controller);
}

TEST(ControllerCreate, ValidatesOptionsAndPlant) {
  FakePlant plant(1);
  PrivacyCostController::Options options = BaseOptions();

  EXPECT_FALSE(PrivacyCostController::Create(options, nullptr).ok());

  options.c_bound = 1.0;  // Eq. 5 c is always > 1.
  EXPECT_FALSE(PrivacyCostController::Create(options, &plant).ok());

  options = BaseOptions();
  options.pressure_low = 0.8;
  options.pressure_high = 0.5;
  EXPECT_FALSE(PrivacyCostController::Create(options, &plant).ok());

  options = BaseOptions();
  options.k_min = 200;
  options.k_max = 100;
  EXPECT_FALSE(PrivacyCostController::Create(options, &plant).ok());

  // Bounds that leave no rung under the c_bound: every divisor k <= 16
  // of 256 has c(k) > 4 on an 8-page cache.
  options = BaseOptions();
  options.k_max = 16;
  EXPECT_FALSE(PrivacyCostController::Create(options, &plant).ok());

  FakePlant empty(0);
  EXPECT_FALSE(PrivacyCostController::Create(BaseOptions(), &empty).ok());

  EXPECT_TRUE(PrivacyCostController::Create(BaseOptions(), &plant).ok());
}

TEST(ControllerLadder, FeasibleRungsAreDivisorsUnderTheBound) {
  FakePlant plant(1);
  auto controller = MakeController(&plant, BaseOptions());
  // Divisors k of 256 with 2k <= 256 and c(256, 8, k) <= 4.0.
  EXPECT_EQ(controller->Ladder(0), (std::vector<uint64_t>{32, 64, 128}));
}

TEST(ControllerLaw, HighPressureStepsDownOneRung) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.queue_fraction = 0.9;

  controller->TickNow();

  ASSERT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64}));
  const std::vector<PrivacyCostController::Decision> trail =
      controller->Trail();
  ASSERT_EQ(trail.size(), 1u);
  EXPECT_EQ(trail[0].outcome, Outcome::kApplied);
  EXPECT_EQ(trail[0].k_before, 128u);
  EXPECT_EQ(trail[0].k_target, 64u);
  EXPECT_DOUBLE_EQ(trail[0].pressure, 0.9);
}

TEST(ControllerLaw, LowPressureStepsUpOneRung) {
  FakePlant plant(1, /*initial_k=*/32);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.queue_fraction = 0.0;

  controller->TickNow();

  EXPECT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64}));
  EXPECT_EQ(controller->Trail()[0].outcome, Outcome::kApplied);
}

TEST(ControllerLaw, HysteresisBandHolds) {
  FakePlant plant(1, /*initial_k=*/64);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.queue_fraction = 0.5;  // Between 0.25 and 0.75.

  controller->TickNow();

  EXPECT_TRUE(plant.shard(0).requests.empty());
  EXPECT_EQ(controller->Trail()[0].outcome, Outcome::kHold);
}

TEST(ControllerLaw, LadderEdgesHold) {
  // Already at the cheapest rung: high pressure has nowhere to go.
  FakePlant cheap(1, /*initial_k=*/32);
  auto controller = MakeController(&cheap, BaseOptions());
  cheap.shard(0).signals.queue_fraction = 1.0;
  controller->TickNow();
  EXPECT_TRUE(cheap.shard(0).requests.empty());
  EXPECT_EQ(controller->Trail()[0].outcome, Outcome::kHold);

  // Already at the most private rung: low pressure has nowhere to go.
  FakePlant private_rig(1, /*initial_k=*/128);
  auto top = MakeController(&private_rig, BaseOptions());
  top->TickNow();
  EXPECT_TRUE(private_rig.shard(0).requests.empty());
  EXPECT_EQ(top->Trail()[0].outcome, Outcome::kHold);
}

TEST(ControllerLaw, SloBurnAloneRaisesPressure) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.burn = 2.0;  // Queue empty, burn over budget.

  controller->TickNow();

  EXPECT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64}));
  EXPECT_DOUBLE_EQ(controller->Trail()[0].pressure, 2.0);
}

TEST(ControllerLaw, FiringSloRulePinsPressureToOne) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.slo_firing = true;

  controller->TickNow();

  EXPECT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64}));
  EXPECT_DOUBLE_EQ(controller->Trail()[0].pressure, 1.0);
}

TEST(ControllerLaw, CooldownForcesHoldsAfterAChange) {
  FakePlant plant(1, /*initial_k=*/128);
  PrivacyCostController::Options options = BaseOptions();
  options.cooldown_ticks = 2;
  auto controller = MakeController(&plant, options);
  plant.shard(0).signals.queue_fraction = 1.0;

  controller->TickNow();  // Applies 128 -> 64.
  plant.ApplyPending(0);
  controller->TickNow();  // Cooldown 1.
  controller->TickNow();  // Cooldown 2.
  controller->TickNow();  // Free again: applies 64 -> 32.

  EXPECT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64, 32}));
  const auto trail = controller->Trail();
  ASSERT_EQ(trail.size(), 4u);
  EXPECT_EQ(trail[0].outcome, Outcome::kApplied);
  EXPECT_EQ(trail[1].outcome, Outcome::kHold);
  EXPECT_EQ(trail[2].outcome, Outcome::kHold);
  EXPECT_EQ(trail[3].outcome, Outcome::kApplied);
}

TEST(ControllerLaw, PendingTransitionDefersNewDecisions) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.queue_fraction = 1.0;

  controller->TickNow();  // Applies; fake leaves the transition pending.
  controller->TickNow();  // Still pending at the engine.

  EXPECT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64}));
  EXPECT_EQ(controller->Trail()[1].outcome, Outcome::kDeferred);
}

TEST(ControllerLaw, RejectedRequestIsRecordedAsSkipped) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.queue_fraction = 1.0;
  plant.shard(0).next_status = ResourceExhaustedError("queue full");

  controller->TickNow();

  EXPECT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64}));
  EXPECT_EQ(controller->Trail()[0].outcome, Outcome::kSkipped);
}

TEST(ControllerClamp, EstimateOverBoundJumpsToMostPrivateRung) {
  FakePlant plant(1, /*initial_k=*/32);
  PrivacyCostController::Options options = BaseOptions();
  options.cooldown_ticks = 4;
  auto controller = MakeController(&plant, options);

  // Put the shard in cooldown first: the clamp must ignore it.
  plant.shard(0).signals.queue_fraction = 0.0;
  controller->TickNow();  // Steps 32 -> 64, starts cooldown.
  plant.ApplyPending(0);

  plant.shard(0).signals.c_estimate = 5.0;  // Breach: above c_bound 4.
  controller->TickNow();

  ASSERT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64, 128}));
  EXPECT_EQ(controller->Trail()[1].outcome, Outcome::kClamped);
  EXPECT_EQ(controller->Trail()[1].k_target, 128u);
  EXPECT_EQ(controller->emergency_clamps(), 1u);

  // While the clamp transition is pending the breach defers.
  controller->TickNow();
  EXPECT_EQ(controller->Trail()[2].outcome, Outcome::kDeferred);

  // Once landed at the most private rung, a lingering breach holds.
  plant.ApplyPending(0);
  controller->TickNow();
  EXPECT_EQ(controller->Trail()[3].outcome, Outcome::kHold);
  EXPECT_EQ(controller->emergency_clamps(), 1u);
}

TEST(ControllerClamp, SealsAnIncidentThroughTheFlightRecorder) {
  FakePlant plant(1, /*initial_k=*/32);
  auto controller = MakeController(&plant, BaseOptions());
  obs::FlightRecorder::Options rec_options;
  rec_options.min_interval_ns = 0;
  obs::FlightRecorder recorder(rec_options);
  controller->EnableFlightRecorder(&recorder);

  plant.shard(0).signals.c_estimate = 9.0;
  controller->TickNow();

  EXPECT_EQ(controller->emergency_clamps(), 1u);
  ASSERT_EQ(recorder.sealed(), 1u);
  const std::vector<obs::FlightRecorder::Incident> incidents =
      recorder.List();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].reason, "privacy_clamp");
  EXPECT_EQ(incidents[0].trigger_value, 1u);
}

TEST(ControllerVerbs, FreezeObservesWithoutActuating) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  controller->Freeze();
  EXPECT_TRUE(controller->frozen());
  plant.shard(0).signals.queue_fraction = 1.0;

  controller->TickNow();
  EXPECT_TRUE(plant.shard(0).requests.empty());
  EXPECT_EQ(controller->Trail()[0].outcome, Outcome::kFrozen);
  // Frozen ticks still snapshot the inputs for the audit trail.
  EXPECT_DOUBLE_EQ(controller->Trail()[0].pressure, 1.0);

  controller->Unfreeze();
  controller->TickNow();
  EXPECT_EQ(plant.shard(0).requests, (std::vector<uint64_t>{64}));
}

TEST(ControllerVerbs, StartFrozenOptionHoldsUntilUnfrozen) {
  FakePlant plant(1, /*initial_k=*/128);
  PrivacyCostController::Options options = BaseOptions();
  options.start_frozen = true;
  auto controller = MakeController(&plant, options);
  plant.shard(0).signals.queue_fraction = 1.0;
  controller->TickNow();
  EXPECT_TRUE(plant.shard(0).requests.empty());
  EXPECT_TRUE(controller->frozen());
}

TEST(ControllerVerbs, SetBoundsRecomputesLaddersOrFailsAtomically) {
  FakePlant plant(2);
  auto controller = MakeController(&plant, BaseOptions());

  ASSERT_TRUE(controller->SetBounds(64, 128).ok());
  EXPECT_EQ(controller->Ladder(0), (std::vector<uint64_t>{64, 128}));
  EXPECT_EQ(controller->Ladder(1), (std::vector<uint64_t>{64, 128}));

  // No divisor of 256 in [200, 0]: rejected, old ladders kept.
  EXPECT_FALSE(controller->SetBounds(200, 0).ok());
  EXPECT_FALSE(controller->SetBounds(0, 64).ok());
  EXPECT_FALSE(controller->SetBounds(128, 64).ok());
  EXPECT_EQ(controller->Ladder(0), (std::vector<uint64_t>{64, 128}));
}

TEST(ControllerAudit, StatusJsonCarriesStateAndDecisions) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  plant.shard(0).signals.queue_fraction = 0.9;
  controller->TickNow();

  const std::string json = controller->StatusJson();
  EXPECT_NE(json.find("\"frozen\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c_bound\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ladder\":[32,64,128]"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"applied\""), std::string::npos);
  EXPECT_NE(json.find("\"decisions\":["), std::string::npos);
  EXPECT_NE(json.find("\"ticks\":1"), std::string::npos);
}

TEST(ControllerAudit, TrailIsBoundedOldestFirst) {
  FakePlant plant(1, /*initial_k=*/64);
  PrivacyCostController::Options options = BaseOptions();
  options.decision_trail = 4;
  auto controller = MakeController(&plant, options);
  plant.shard(0).signals.queue_fraction = 0.5;  // Hold forever.
  for (int i = 0; i < 10; ++i) {
    controller->TickNow();
  }
  const auto trail = controller->Trail();
  ASSERT_EQ(trail.size(), 4u);
  EXPECT_EQ(trail.front().tick, 7u);
  EXPECT_EQ(trail.back().tick, 10u);
  EXPECT_EQ(controller->ticks(), 10u);
}

TEST(ControllerObs, MetricsCountOutcomesAndTrackGauges) {
  FakePlant plant(2, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  obs::MetricsRegistry registry;
  controller->EnableMetrics(&registry);

  plant.shard(0).signals.queue_fraction = 0.9;  // Steps down.
  plant.shard(1).signals.queue_fraction = 0.5;  // Holds.
  controller->TickNow();

  EXPECT_EQ(
      registry.FindOrCreateCounter("shpir_control_ticks_total")->Value(),
      1u);
  EXPECT_EQ(
      registry.FindOrCreateCounter("shpir_control_applied_total")->Value(),
      1u);
  EXPECT_EQ(
      registry.FindOrCreateCounter("shpir_control_hold_total")->Value(),
      1u);
  // Gauges reflect the worst shard this tick: min published k and the
  // max pressure. No live estimate yet, so effective c falls back to
  // the Eq. 5 theory value at k = 128 and headroom is the rest of the
  // bound.
  EXPECT_DOUBLE_EQ(
      registry.FindOrCreateGauge("shpir_control_block_size_k")->Value(),
      128.0);
  EXPECT_DOUBLE_EQ(
      registry.FindOrCreateGauge("shpir_control_pressure")->Value(), 0.9);
  EXPECT_DOUBLE_EQ(
      registry.FindOrCreateGauge("shpir_control_effective_c")->Value(),
      8.0 / 7.0);
  EXPECT_DOUBLE_EQ(
      registry.FindOrCreateGauge("shpir_control_privacy_headroom")->Value(),
      4.0 - 8.0 / 7.0);
  EXPECT_DOUBLE_EQ(
      registry.FindOrCreateGauge("shpir_control_frozen")->Value(), 0.0);
}

TEST(ControllerObs, EventsAreEmittedPerTickAndPerDecision) {
  FakePlant plant(1, /*initial_k=*/128);
  auto controller = MakeController(&plant, BaseOptions());
  obs::EventLog::Options log_options;
  log_options.min_level = obs::EventLevel::kDebug;
  obs::EventLog log(log_options);
  controller->EnableEventLog(&log);

  plant.shard(0).signals.queue_fraction = 0.9;
  controller->TickNow();
  plant.shard(0).signals.c_estimate = 6.0;
  plant.shard(0).signals.pending_block_size = 0;
  plant.shard(0).signals.block_size = 64;
  controller->TickNow();

  bool saw_tick = false, saw_decision = false, saw_clamp = false;
  for (const obs::EventRecord& event : log.Snapshot()) {
    const std::string name = event.name;
    if (name == "control_tick") {
      saw_tick = true;
      EXPECT_EQ(event.level, obs::EventLevel::kDebug);
    } else if (name == "control_decision") {
      saw_decision = true;
      EXPECT_EQ(event.shard, 0);
    } else if (name == "control_privacy_clamp") {
      saw_clamp = true;
      EXPECT_EQ(event.level, obs::EventLevel::kWarn);
    }
  }
  EXPECT_TRUE(saw_tick);
  EXPECT_TRUE(saw_decision);
  EXPECT_TRUE(saw_clamp);
}

TEST(ControllerBackground, StartTicksAndStopJoins) {
  FakePlant plant(1, /*initial_k=*/64);
  PrivacyCostController::Options options = BaseOptions();
  options.tick_interval = std::chrono::milliseconds(1);
  auto controller = MakeController(&plant, options);
  controller->Start();
  controller->Start();  // Idempotent.
  while (controller->ticks() < 3) {
  }
  controller->Stop();
  const uint64_t after_stop = controller->ticks();
  EXPECT_GE(after_stop, 3u);
  controller->Stop();  // Idempotent.
  EXPECT_EQ(controller->ticks(), after_stop);
}

// --- Paired-rig proof: over a real sharded engine, the controller's
// --- event and trace shapes do not depend on which pages clients ask
// --- for (acceptance criterion #3 in docs/CONTROL.md).

struct ControlRig {
  std::unique_ptr<obs::EventLog> log;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<shard::ShardedPirEngine> engine;
  std::unique_ptr<ShardedEnginePlant> plant;
  std::unique_ptr<PrivacyCostController> controller;

  static ControlRig Make() {
    ControlRig rig;
    obs::EventLog::Options log_options;
    log_options.min_level = obs::EventLevel::kDebug;
    rig.log = std::make_unique<obs::EventLog>(log_options);
    obs::Tracer::Options trace_options;
    trace_options.sample_every = 1;
    trace_options.seed = 42;
    rig.tracer = std::make_unique<obs::Tracer>(trace_options);

    shard::ShardedPirEngine::Options options;
    options.num_pages = 64;
    options.page_size = 32;
    options.cache_pages = 8;
    options.privacy_c = 2.0;
    options.shards = 2;
    options.queue_depth = 64;
    options.seed = 11;
    auto engine = shard::ShardedPirEngine::Create(options);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize({}));

    rig.plant = std::make_unique<ShardedEnginePlant>(rig.engine.get());
    PrivacyCostController::Options copts;
    copts.c_bound = 4.0;
    auto controller =
        PrivacyCostController::Create(copts, rig.plant.get());
    SHPIR_CHECK(controller.ok());
    rig.controller = std::move(*controller);
    rig.controller->EnableEventLog(rig.log.get());
    rig.controller->EnableTracing(rig.tracer.get());
    return rig;
  }

  void Drive(const std::vector<storage::PageId>& targets) {
    for (const storage::PageId id : targets) {
      SHPIR_CHECK_OK(engine->Retrieve(id).status());
    }
    engine->WaitIdle();
    controller->TickNow();
  }
};

TEST(ControllerShape, PairedRigsEmitIdenticalEventAndSpanShapes) {
  ControlRig a = ControlRig::Make();
  ControlRig b = ControlRig::Make();
  // Disjoint secret targets on different shards (low vs high halves).
  a.Drive({0, 1, 2, 3});
  b.Drive({63, 62, 61, 60});
  a.Drive({4, 5, 6, 7});
  b.Drive({59, 58, 57, 56});

  const std::string shape_a = obs::EventShape(a.log->Snapshot());
  const std::string shape_b = obs::EventShape(b.log->Snapshot());
  EXPECT_FALSE(shape_a.empty());
  EXPECT_EQ(shape_a, shape_b);
  EXPECT_NE(shape_a.find("control_tick"), std::string::npos) << shape_a;

  // Same decisions, same counters: the controller saw only aggregates.
  EXPECT_EQ(a.controller->ticks(), b.controller->ticks());
  EXPECT_EQ(a.controller->Trail().size(), b.controller->Trail().size());

  // Trace shapes: identical multiset of span names.
  std::vector<std::string> spans_a, spans_b;
  for (const obs::SpanRecord& span : a.tracer->Snapshot()) {
    spans_a.push_back(span.name);
  }
  for (const obs::SpanRecord& span : b.tracer->Snapshot()) {
    spans_b.push_back(span.name);
  }
  std::sort(spans_a.begin(), spans_a.end());
  std::sort(spans_b.begin(), spans_b.end());
  EXPECT_FALSE(spans_a.empty());
  EXPECT_EQ(spans_a, spans_b);
}

}  // namespace
}  // namespace shpir::control
