#include "hardware/coprocessor.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/metrics.h"
#include "storage/disk.h"

namespace shpir::hardware {
namespace {

using storage::MemoryDisk;
using storage::Page;

constexpr size_t kPageSize = 32;
// nonce 12 + (8 + 32) + tag 32.
constexpr size_t kSealedSize = 84;

TEST(HardwareProfileTest, Ibm4764MatchesTable2) {
  const HardwareProfile p = HardwareProfile::Ibm4764();
  EXPECT_DOUBLE_EQ(p.seek_time_s, 0.005);
  EXPECT_DOUBLE_EQ(p.disk_rate, 100e6);
  EXPECT_DOUBLE_EQ(p.link_rate, 80e6);
  EXPECT_DOUBLE_EQ(p.crypto_rate, 10e6);
  EXPECT_EQ(p.secure_memory_bytes, 64u * kMB);
  EXPECT_DOUBLE_EQ(p.network_rtt_s, 0.0);
}

TEST(HardwareProfileTest, ArrayScalesOnlyMemory) {
  const HardwareProfile p = HardwareProfile::Ibm4764Array(10);
  EXPECT_EQ(p.secure_memory_bytes, 640u * kMB);
  EXPECT_DOUBLE_EQ(p.crypto_rate, 10e6);
}

TEST(HardwareProfileTest, ModernTeeIsStrictlyFaster) {
  const HardwareProfile old_hw = HardwareProfile::Ibm4764();
  const HardwareProfile new_hw = HardwareProfile::ModernTee();
  EXPECT_LT(new_hw.seek_time_s, old_hw.seek_time_s);
  EXPECT_GT(new_hw.disk_rate, old_hw.disk_rate);
  EXPECT_GT(new_hw.link_rate, old_hw.link_rate);
  EXPECT_GT(new_hw.crypto_rate, old_hw.crypto_rate);
  EXPECT_GT(new_hw.secure_memory_bytes, old_hw.secure_memory_bytes);
}

TEST(HardwareProfileTest, TwoPartyOwnerHasNetworkNoLink) {
  const HardwareProfile p = HardwareProfile::TwoPartyOwner(6 * kGB);
  EXPECT_EQ(p.secure_memory_bytes, 6u * kGB);
  EXPECT_DOUBLE_EQ(p.network_rtt_s, 0.050);
  EXPECT_DOUBLE_EQ(p.link_rate, 0.0);
  EXPECT_GT(p.network_rate, 0.0);
}

TEST(CostAccountantTest, SecondsFollowsEq8Structure) {
  // 4 seeks + known byte volumes must give ts*4 + bytes/rates.
  CostAccountant cost;
  cost.AddSeeks(4);
  cost.AddDiskBytes(1000000);
  cost.AddLinkBytes(1000000);
  cost.AddCryptoBytes(1000000);
  const HardwareProfile p = HardwareProfile::Ibm4764();
  const double expected =
      4 * 0.005 + 1e6 / 100e6 + 1e6 / 80e6 + 1e6 / 10e6;
  EXPECT_DOUBLE_EQ(cost.Seconds(p), expected);
}

TEST(CostAccountantTest, ZeroRatesContributeNoTime) {
  CostAccountant cost;
  cost.AddLinkBytes(12345);
  HardwareProfile p = HardwareProfile::Ibm4764();
  p.link_rate = 0.0;
  EXPECT_DOUBLE_EQ(cost.Seconds(p), 0.0);
}

TEST(CostAccountantTest, NetworkCosts) {
  CostAccountant cost;
  cost.AddNetworkRoundTrips(2);
  cost.AddNetworkBytes(1000000);
  HardwareProfile p;
  p.network_rtt_s = 0.05;
  p.network_rate = 2e6;
  p.seek_time_s = 0;
  EXPECT_DOUBLE_EQ(cost.Seconds(p), 2 * 0.05 + 0.5);
}

TEST(CostAccountantTest, SnapshotDeltas) {
  CostAccountant cost;
  cost.AddSeeks(1);
  const CostAccountant::Counters before = cost.Snapshot();
  cost.AddSeeks(3);
  cost.AddDiskBytes(100);
  const CostAccountant::Counters delta = cost.Snapshot() - before;
  EXPECT_EQ(delta.seeks, 3u);
  EXPECT_EQ(delta.disk_bytes, 100u);
}

class CoprocessorTest : public ::testing::Test {
 protected:
  CoprocessorTest() : disk_(16, kSealedSize) {
    Result<std::unique_ptr<SecureCoprocessor>> cpu = SecureCoprocessor::Create(
        HardwareProfile::Ibm4764(), &disk_, kPageSize, 7);
    SHPIR_CHECK(cpu.ok());
    cpu_ = std::move(cpu).value();
  }

  MemoryDisk disk_;
  std::unique_ptr<SecureCoprocessor> cpu_;
};

TEST_F(CoprocessorTest, SealOpenRoundTripThroughDisk) {
  Page page(3, Bytes(kPageSize, 0x44));
  Result<Bytes> sealed = cpu_->SealPage(page);
  ASSERT_TRUE(sealed.ok());
  ASSERT_TRUE(cpu_->WriteSlot(5, *sealed).ok());
  Result<Bytes> raw = cpu_->ReadSlot(5);
  ASSERT_TRUE(raw.ok());
  Result<Page> back = cpu_->OpenPage(*raw);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, page);
}

TEST_F(CoprocessorTest, RunAccountsOneSeek) {
  std::vector<Bytes> slots(4, Bytes(kSealedSize, 0));
  ASSERT_TRUE(cpu_->WriteRun(0, slots).ok());
  EXPECT_EQ(cpu_->cost().counters().seeks, 1u);
  EXPECT_EQ(cpu_->cost().counters().disk_bytes, 4u * kSealedSize);
  EXPECT_EQ(cpu_->cost().counters().link_bytes, 4u * kSealedSize);
  std::vector<Bytes> out;
  ASSERT_TRUE(cpu_->ReadRun(0, 4, out).ok());
  EXPECT_EQ(cpu_->cost().counters().seeks, 2u);
}

TEST_F(CoprocessorTest, CryptoAccountsPageBytes) {
  Page page(1, Bytes(kPageSize, 0));
  ASSERT_TRUE(cpu_->SealPage(page).ok());
  EXPECT_EQ(cpu_->cost().counters().crypto_bytes, kPageSize);
}

TEST_F(CoprocessorTest, SecureMemoryBudget) {
  EXPECT_EQ(cpu_->secure_memory_used(), 0u);
  ASSERT_TRUE(cpu_->ReserveSecureMemory(1000, "test").ok());
  EXPECT_EQ(cpu_->secure_memory_used(), 1000u);
  const Status too_big =
      cpu_->ReserveSecureMemory(cpu_->secure_memory_capacity(), "big");
  EXPECT_EQ(too_big.code(), StatusCode::kResourceExhausted);
  cpu_->ReleaseSecureMemory(1000);
  EXPECT_EQ(cpu_->secure_memory_used(), 0u);
}

TEST_F(CoprocessorTest, DeterministicSeedsGiveSameKeys) {
  MemoryDisk disk2(16, kSealedSize);
  Result<std::unique_ptr<SecureCoprocessor>> cpu2 = SecureCoprocessor::Create(
      HardwareProfile::Ibm4764(), &disk2, kPageSize, 7);
  ASSERT_TRUE(cpu2.ok());
  // Same seed => same keys and same RNG stream => identical sealed bytes.
  Page page(9, Bytes(kPageSize, 0x12));
  Result<Bytes> a = cpu_->SealPage(page);
  Result<Bytes> b = (*cpu2)->SealPage(page);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(CoprocessorCreateTest, RejectsMismatchedSlotSize) {
  MemoryDisk disk(4, 100);  // Not the sealed size for 32-byte pages.
  Result<std::unique_ptr<SecureCoprocessor>> cpu = SecureCoprocessor::Create(
      HardwareProfile::Ibm4764(), &disk, kPageSize, 1);
  EXPECT_FALSE(cpu.ok());
  EXPECT_EQ(cpu.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoprocessorCreateTest, RejectsNullDisk) {
  Result<std::unique_ptr<SecureCoprocessor>> cpu = SecureCoprocessor::Create(
      HardwareProfile::Ibm4764(), nullptr, kPageSize, 1);
  EXPECT_FALSE(cpu.ok());
}

TEST_F(CoprocessorTest, ElapsedSecondsReflectsActivity) {
  EXPECT_DOUBLE_EQ(cpu_->ElapsedSeconds(), 0.0);
  std::vector<Bytes> out;
  ASSERT_TRUE(cpu_->ReadRun(0, 2, out).ok());
  EXPECT_GT(cpu_->ElapsedSeconds(), 0.005);  // At least the seek.
}

TEST_F(CoprocessorTest, AttachMetricsMirrorsCostAccounting) {
  obs::MetricsRegistry registry;
  cpu_->AttachMetrics(&registry);

  std::vector<Bytes> out;
  ASSERT_TRUE(cpu_->ReadRun(0, 2, out).ok());      // 1 seek, 2 slots.
  ASSERT_TRUE(cpu_->WriteSlot(5, out[0]).ok());    // 1 seek, 1 slot.
  Page page(1, Bytes(kPageSize, 0x33));
  Result<Bytes> sealed = cpu_->SealPage(page);
  ASSERT_TRUE(sealed.ok());
  ASSERT_TRUE(cpu_->OpenPage(*sealed).ok());
  ASSERT_TRUE(cpu_->ReserveSecureMemory(4096, "test structure").ok());

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& c : snapshot.counters) {
      if (c.name == name) {
        return c.value;
      }
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  auto gauge = [&](const std::string& name) -> double {
    for (const auto& g : snapshot.gauges) {
      if (g.name == name) {
        return g.value;
      }
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1;
  };
  EXPECT_EQ(counter("shpir_hw_seeks_total"), 2u);
  EXPECT_EQ(counter("shpir_hw_disk_bytes_total"), 3 * kSealedSize);
  EXPECT_EQ(counter("shpir_hw_link_bytes_total"), 3 * kSealedSize);
  EXPECT_EQ(counter("shpir_hw_crypto_bytes_total"), 2 * kPageSize);
  EXPECT_EQ(counter("shpir_hw_pages_sealed_total"), 1u);
  EXPECT_EQ(counter("shpir_hw_pages_opened_total"), 1u);
  EXPECT_DOUBLE_EQ(gauge("shpir_hw_simulated_seconds"),
                   cpu_->ElapsedSeconds());
  EXPECT_DOUBLE_EQ(gauge("shpir_hw_secure_memory_used_bytes"), 4096.0);
  EXPECT_DOUBLE_EQ(
      gauge("shpir_hw_secure_memory_capacity_bytes"),
      static_cast<double>(cpu_->secure_memory_capacity()));

  // Detach: further activity leaves the registry untouched.
  cpu_->AttachMetrics(nullptr);
  ASSERT_TRUE(cpu_->ReadRun(0, 2, out).ok());
  EXPECT_EQ(registry.FindOrCreateCounter("shpir_hw_seeks_total")->Value(),
            2u);
}

}  // namespace
}  // namespace shpir::hardware
