#include "model/cost_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::model {
namespace {

using hardware::HardwareProfile;
using hardware::kKB;
using hardware::kMB;

/// Paper §5 spot values: (n, m, B, quoted seconds). All with c = 2.
struct PaperSpot {
  std::string name;
  uint64_t n;
  uint64_t m;
  uint64_t page_size;
  double quoted_seconds;
};

class PaperSpotTest : public ::testing::TestWithParam<PaperSpot> {};

TEST_P(PaperSpotTest, ModelMatchesQuotedValue) {
  const PaperSpot& spot = GetParam();
  Result<CostModel::Evaluation> eval = CostModel::Evaluate(
      spot.n, spot.m, spot.page_size, 2.0, HardwareProfile::Ibm4764());
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_NEAR(eval->query_seconds, spot.quoted_seconds,
              spot.quoted_seconds * 0.05)
      << "k=" << eval->k;
}

INSTANTIATE_TEST_SUITE_P(
    Section5, PaperSpotTest,
    ::testing::Values(
        // "a single secure coprocessor can retrieve 1KB pages in 27ms".
        PaperSpot{"Gb1Page1K", 1000000, 50000, kKB, 0.027},
        // "... and 10KB pages in 94ms".
        PaperSpot{"Gb1Page10K", 100000, 5000, 10 * kKB, 0.094},
        // "with 1 coprocessor and a 10GB database ... 1KB pages in 197ms".
        PaperSpot{"Gb10Page1K1Unit", 10000000, 20000, kKB, 0.197},
        // "... and 10KB pages in 731ms".
        PaperSpot{"Gb10Page10K1Unit", 1000000, 5000, 10 * kKB, 0.731},
        // "2 coprocessors can reduce those times to 65ms".
        PaperSpot{"Gb10Page1K2Units", 10000000, 80000, kKB, 0.065},
        // "... and 378ms, respectively".
        PaperSpot{"Gb10Page10K2Units", 1000000, 10000, 10 * kKB, 0.378},
        // "100GB databases will require 10 coprocessors to retrieve 1KB
        // pages in 197ms".
        PaperSpot{"Gb100Page1K", 100000000, 200000, kKB, 0.197},
        // "... and 10KB pages in 613ms".
        PaperSpot{"Gb100Page10K", 10000000, 60000, 10 * kKB, 0.613},
        // "for 1TB databases, sub-second page retrieval times (727ms for
        // 1KB pages ...)".
        PaperSpot{"Tb1Page1K", 1000000000, 500000, kKB, 0.727},
        // "... and 907ms for 10KB pages".
        PaperSpot{"Tb1Page10K", 100000000, 400000, 10 * kKB, 0.907}),
    [](const ::testing::TestParamInfo<PaperSpot>& info) {
      return info.param.name;
    });

TEST(CostModelTest, StorageMatchesEq7) {
  // n=1e6, m=50000, k=29, B=1KB: 2.625MB map + 50030KB pages.
  const uint64_t bytes = CostModel::SecureStorageBytes(1000000, 50000, 29,
                                                       kKB);
  EXPECT_EQ(bytes, 2625000u + 50030u * kKB);
}

TEST(CostModelTest, QuerySecondsStructure) {
  HardwareProfile profile = HardwareProfile::Ibm4764();
  // k=0: 4 seeks + 2 pages (k+1 = 1, both directions).
  const double t = CostModel::QuerySeconds(0, kKB, profile);
  EXPECT_NEAR(t, 0.02 + 2000.0 * (1 / 100e6 + 1 / 80e6 + 1 / 10e6), 1e-12);
}

TEST(CostModelTest, TwoPartySpotChecks) {
  // Paper: "With 6GB of storage space ... 2 million pages in its cache,
  // achieving a query response time of 0.737s (for 1KB pages)".
  const HardwareProfile profile =
      HardwareProfile::TwoPartyOwner(16ull * hardware::kGB);
  Result<CostModel::Evaluation> a = CostModel::EvaluateTwoParty(
      1000000000, 2000000, kKB, 2.0, profile);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->query_seconds, 0.737, 0.05);
  // "over 10GB of space is necessary to achieve ... 1.3s" (10KB pages,
  // m = 1e6).
  Result<CostModel::Evaluation> b = CostModel::EvaluateTwoParty(
      100000000, 1000000, 10 * kKB, 2.0, profile);
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->query_seconds, 1.3, 0.15);
  // Owner storage ~10GB: pageMap (1e8 * 28 bits) + m * 10KB.
  EXPECT_NEAR(static_cast<double>(b->storage_bytes) / hardware::kGB, 10.4,
              1.0);
}

TEST(CostModelTest, ResponseTimeDecreasesWithCache) {
  const HardwareProfile profile = HardwareProfile::Ibm4764();
  double prev = 1e9;
  for (uint64_t m : {1000u, 5000u, 10000u, 20000u, 50000u}) {
    Result<CostModel::Evaluation> eval =
        CostModel::Evaluate(1000000, m, kKB, 2.0, profile);
    ASSERT_TRUE(eval.ok());
    EXPECT_LT(eval->query_seconds, prev);
    prev = eval->query_seconds;
  }
}

TEST(CostModelTest, ResponseTimeIncreasesWithPrivacy) {
  const HardwareProfile profile = HardwareProfile::Ibm4764();
  double prev = 0;
  for (double eps : {1.0, 0.5, 0.1, 0.05, 0.01}) {
    Result<CostModel::Evaluation> eval =
        CostModel::Evaluate(10000000, 100000, kKB, 1.0 + eps, profile);
    ASSERT_TRUE(eval.ok());
    EXPECT_GT(eval->query_seconds, prev) << "eps=" << eps;
    prev = eval->query_seconds;
  }
}

TEST(CostModelTest, FigureGeneratorsProduceFullSeries) {
  EXPECT_EQ(GenerateFig4().size(), 20u);
  EXPECT_EQ(GenerateFig5().size(), 20u);
  EXPECT_EQ(GenerateFig6().size(), 20u);
  EXPECT_EQ(GenerateFig7().size(), 8u);
}

TEST(CostModelTest, Fig4ShapesMatchPaper) {
  // Within each database series, response time and storage move in
  // opposite directions as the cache grows.
  const std::vector<FigurePoint> points = GenerateFig4();
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].database != points[i - 1].database) {
      continue;
    }
    EXPECT_LT(points[i].response_seconds, points[i - 1].response_seconds);
    EXPECT_GT(points[i].storage_mb, points[i - 1].storage_mb);
  }
}

TEST(CostModelTest, Fig6SubSecondUpTo100GbAtEps01) {
  // "for databases up to 100GB, sub-second query response times are
  // achievable even for c = 1.1".
  for (const FigurePoint& point : GenerateFig6()) {
    if (point.epsilon == 0.1 && point.database != "1TB") {
      EXPECT_LT(point.response_seconds, 1.0) << point.database;
    }
  }
}

TEST(CostModelTest, SimulatorCrossValidatesEq8) {
  // Run the actual engine on a small database and compare the simulated
  // per-query time with Eq. 8. The simulator transfers sealed pages
  // (B + 52 bytes), so allow that overhead.
  constexpr size_t kPageSize = 1000;
  constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
  core::CApproxPir::Options options;
  options.num_pages = 256;
  options.page_size = kPageSize;
  options.cache_pages = 16;
  options.block_size = 16;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(HardwareProfile::Ibm4764(), &disk,
                                          kPageSize, 5);
  ASSERT_TRUE(cpu.ok());
  Result<std::unique_ptr<core::CApproxPir>> engine =
      core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());

  crypto::SecureRandom rng(6);
  const auto before = (*cpu)->cost().Snapshot();
  constexpr int kQueries = 100;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE((*engine)->Retrieve(rng.UniformInt(256)).ok());
  }
  const auto delta = (*cpu)->cost().Snapshot() - before;
  const double simulated = hardware::CostAccountant::Seconds(
                               delta, HardwareProfile::Ibm4764()) /
                           kQueries;
  const double analytic =
      CostModel::QuerySeconds(16, kPageSize, HardwareProfile::Ibm4764());
  EXPECT_NEAR(simulated, analytic, analytic * 0.06);
}

}  // namespace
}  // namespace shpir::model
