// Cross-cutting cryptographic properties: nonce freshness, keystream
// non-reuse, and avalanche behavior — defense-in-depth checks on top of
// the known-answer vectors.

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "crypto/aes.h"
#include "crypto/secure_random.h"
#include "crypto/sha256.h"
#include "storage/page_cipher.h"

namespace shpir::crypto {
namespace {

TEST(CryptoPropertiesTest, SealedNoncesNeverRepeat) {
  auto cipher = storage::PageCipher::Create(Bytes(32, 1), Bytes(32, 2), 16);
  ASSERT_TRUE(cipher.ok());
  SecureRandom rng(1);
  const storage::Page page(0, Bytes(16, 0));
  std::set<Bytes> nonces;
  for (int i = 0; i < 20000; ++i) {
    Bytes sealed = *cipher->Seal(page, rng);
    Bytes nonce(sealed.begin(),
                sealed.begin() + storage::PageCipher::kNonceSize);
    ASSERT_TRUE(nonces.insert(std::move(nonce)).second) << "iteration " << i;
  }
}

TEST(CryptoPropertiesTest, AesAvalanche) {
  // Flipping any single plaintext bit flips ~half the ciphertext bits.
  auto aes = Aes::Create(Bytes(16, 0x3c));
  ASSERT_TRUE(aes.ok());
  uint8_t base[16] = {};
  uint8_t base_ct[16];
  aes->EncryptBlock(base, base_ct);
  for (int bit = 0; bit < 128; bit += 7) {
    uint8_t flipped[16] = {};
    flipped[bit / 8] ^= static_cast<uint8_t>(1 << (bit % 8));
    uint8_t ct[16];
    aes->EncryptBlock(flipped, ct);
    int diff = 0;
    for (int i = 0; i < 16; ++i) {
      diff += __builtin_popcount(base_ct[i] ^ ct[i]);
    }
    EXPECT_GT(diff, 40) << "bit " << bit;
    EXPECT_LT(diff, 88) << "bit " << bit;
  }
}

TEST(CryptoPropertiesTest, Sha256Avalanche) {
  Bytes base(32, 0x11);
  const auto base_digest = Sha256::Hash(base);
  for (size_t pos = 0; pos < base.size(); pos += 5) {
    Bytes mutated = base;
    mutated[pos] ^= 1;
    const auto digest = Sha256::Hash(mutated);
    int diff = 0;
    for (size_t i = 0; i < digest.size(); ++i) {
      diff += __builtin_popcount(base_digest[i] ^ digest[i]);
    }
    EXPECT_GT(diff, 80) << pos;   // ~128 expected of 256 bits.
    EXPECT_LT(diff, 176) << pos;
  }
}

TEST(CryptoPropertiesTest, EncryptBlockIsAPermutation) {
  // Distinct plaintexts map to distinct ciphertexts (injective on a
  // sample), and decryption inverts.
  auto aes = Aes::Create(Bytes(32, 0x77));
  ASSERT_TRUE(aes.ok());
  std::set<Bytes> outputs;
  SecureRandom rng(2);
  for (int i = 0; i < 2000; ++i) {
    Bytes pt(16);
    rng.Fill(pt);
    Bytes ct(16);
    aes->EncryptBlock(pt.data(), ct.data());
    outputs.insert(ct);
    Bytes back(16);
    aes->DecryptBlock(ct.data(), back.data());
    ASSERT_EQ(back, pt);
  }
  // Collisions would imply a broken permutation (2000 random 128-bit
  // values collide with probability ~0).
  EXPECT_EQ(outputs.size(), 2000u);
}

TEST(CryptoPropertiesTest, SecureRandomStreamsAreIndependentPerSeed) {
  // 64 seeds, first 8 bytes each: all distinct.
  std::set<uint64_t> firsts;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    SecureRandom rng(seed);
    firsts.insert(rng.NextUint64());
  }
  EXPECT_EQ(firsts.size(), 64u);
}

}  // namespace
}  // namespace shpir::crypto
