#include "crypto/ctr.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/secure_random.h"

namespace shpir::crypto {
namespace {

// NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt), all four blocks.
TEST(AesCtrTest, Sp80038aF51) {
  const Bytes key = HexDecode("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = HexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = HexDecode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const std::string expected_ct =
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee";
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  Bytes ct(pt.size());
  ASSERT_TRUE(ctr->Crypt(iv, pt, ct).ok());
  EXPECT_EQ(HexEncode(ct), expected_ct);
}

// NIST SP 800-38A F.5.3 (CTR-AES192.Encrypt), first two blocks.
TEST(AesCtrTest, Sp80038aF53) {
  const Bytes key =
      HexDecode("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b");
  const Bytes iv = HexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = HexDecode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  Bytes ct(pt.size());
  ASSERT_TRUE(ctr->Crypt(iv, pt, ct).ok());
  EXPECT_EQ(HexEncode(ct),
            "1abc932417521ca24f2b0459fe7e6e0b"
            "090339ec0aa6faefd5ccc2c6f4ce8e94");
}

// NIST SP 800-38A F.5.5 (CTR-AES256.Encrypt), first block.
TEST(AesCtrTest, Sp80038aF55FirstBlock) {
  const Bytes key = HexDecode(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Bytes iv = HexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = HexDecode("6bc1bee22e409f96e93d7e117393172a");
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  Bytes ct(pt.size());
  ASSERT_TRUE(ctr->Crypt(iv, pt, ct).ok());
  EXPECT_EQ(HexEncode(ct), "601ec313775789a5b7a7f504bbf3d228");
}

TEST(AesCtrTest, EncryptDecryptRoundTrip) {
  const Bytes key(32, 0x11);
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  SecureRandom rng(7);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1024u, 4096u}) {
    Bytes pt(len);
    rng.Fill(pt);
    Bytes iv(16);
    rng.Fill(iv);
    Bytes ct(len), back(len);
    ASSERT_TRUE(ctr->Crypt(iv, pt, ct).ok());
    ASSERT_TRUE(ctr->Crypt(iv, ct, back).ok());
    EXPECT_EQ(pt, back) << "length " << len;
    if (len >= 16) {
      EXPECT_NE(pt, ct) << "length " << len;
    }
  }
}

TEST(AesCtrTest, InPlaceCrypt) {
  const Bytes key(16, 0x22);
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  Bytes data(100, 0xaa);
  const Bytes original = data;
  const Bytes iv(16, 0x01);
  ASSERT_TRUE(ctr->Crypt(iv, data, data).ok());
  EXPECT_NE(data, original);
  ASSERT_TRUE(ctr->Crypt(iv, data, data).ok());
  EXPECT_EQ(data, original);
}

TEST(AesCtrTest, DifferentIvsGiveDifferentCiphertexts) {
  const Bytes key(16, 0x33);
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  const Bytes pt(64, 0x00);
  Bytes ct_a(64), ct_b(64);
  ASSERT_TRUE(ctr->Crypt(Bytes(16, 0x01), pt, ct_a).ok());
  ASSERT_TRUE(ctr->Crypt(Bytes(16, 0x02), pt, ct_b).ok());
  EXPECT_NE(ct_a, ct_b);
}

TEST(AesCtrTest, CounterWrapsAcrossBlockBoundary) {
  // IV with low 32 bits at max: the second block must carry into byte 11.
  const Bytes key(16, 0x44);
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  Bytes iv = HexDecode("000102030405060708090a0bffffffff");
  const Bytes pt(48, 0x00);
  Bytes ct(48);
  ASSERT_TRUE(ctr->Crypt(iv, pt, ct).ok());
  // Round-trip still works (the wrap is deterministic).
  Bytes back(48);
  ASSERT_TRUE(ctr->Crypt(iv, ct, back).ok());
  EXPECT_EQ(back, pt);
}

TEST(AesCtrTest, RejectsBadIvAndSizeMismatch) {
  const Bytes key(16, 0x55);
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  Bytes pt(16), out(16), short_out(8);
  EXPECT_EQ(ctr->Crypt(Bytes(15, 0), pt, out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ctr->Crypt(Bytes(16, 0), pt, short_out).code(),
            StatusCode::kInvalidArgument);
}

TEST(AesCtrTest, NonceWrapperMatchesExplicitIv) {
  const Bytes key(16, 0x66);
  Result<AesCtr> ctr = AesCtr::Create(key);
  ASSERT_TRUE(ctr.ok());
  const Bytes nonce(12, 0x07);
  Bytes iv(16, 0x00);
  std::copy(nonce.begin(), nonce.end(), iv.begin());
  const Bytes pt(40, 0x5a);
  Bytes a(40), b(40);
  ASSERT_TRUE(ctr->CryptWithNonce(nonce, pt, a).ok());
  ASSERT_TRUE(ctr->Crypt(iv, pt, b).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(ctr->CryptWithNonce(Bytes(11, 0), pt, a).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shpir::crypto
