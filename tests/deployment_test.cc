// Deployment-level scenarios: multi-coprocessor capacity, end-to-end
// Fig. 4 shape on the real simulator, and Eq. 8 cross-validation sweeps.

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "core/security_parameter.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "model/cost_model.h"
#include "storage/disk.h"

namespace shpir {
namespace {

constexpr size_t kPageSize = 1000;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

/// Simulated mean per-query seconds for a (n, m, k) geometry.
double MeasureQuerySeconds(uint64_t n, uint64_t m, uint64_t k,
                           uint64_t seed) {
  core::CApproxPir::Options options;
  options.num_pages = n;
  options.page_size = kPageSize;
  options.cache_pages = m;
  options.block_size = k;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, seed);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));
  crypto::SecureRandom rng(seed + 1);
  const auto before = (*cpu)->cost().Snapshot();
  constexpr int kQueries = 30;
  for (int i = 0; i < kQueries; ++i) {
    SHPIR_CHECK((*engine)->Retrieve(rng.UniformInt(n)).ok());
  }
  const auto delta = (*cpu)->cost().Snapshot() - before;
  return hardware::CostAccountant::Seconds(
             delta, hardware::HardwareProfile::Ibm4764()) /
         kQueries;
}

TEST(DeploymentTest, MultiUnitArrayUnlocksBiggerCaches) {
  // A geometry whose Eq. 7 footprint exceeds one 64MB unit but fits
  // two: pageMap is tiny here, so the cache dominates.
  core::CApproxPir::Options options;
  options.num_pages = 200000;
  options.page_size = kPageSize;
  options.cache_pages = 100000;  // 100MB of cache pages.
  options.block_size = 16;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());

  storage::MemoryDisk disk1(*slots, kSealedSize);
  auto one_unit = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk1, kPageSize, 1);
  ASSERT_TRUE(one_unit.ok());
  Result<std::unique_ptr<core::CApproxPir>> too_big =
      core::CApproxPir::Create(one_unit->get(), options);
  EXPECT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);

  storage::MemoryDisk disk2(*slots, kSealedSize);
  auto two_units = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764Array(2), &disk2, kPageSize, 2);
  ASSERT_TRUE(two_units.ok());
  Result<std::unique_ptr<core::CApproxPir>> fits =
      core::CApproxPir::Create(two_units->get(), options);
  EXPECT_TRUE(fits.ok()) << fits.status();
}

TEST(DeploymentTest, Fig4ShapeHoldsOnTheSimulator) {
  // Larger cache (at fixed privacy c = 2) means smaller k and lower
  // simulated response time — Fig. 4's downward curve, measured on the
  // actual engine rather than the closed form.
  const uint64_t n = 4096;
  double prev = 1e9;
  for (uint64_t m : {64u, 128u, 256u, 512u}) {
    auto k = core::SecurityParameter::BlockSize(n, m, 2.0);
    ASSERT_TRUE(k.ok());
    const double seconds = MeasureQuerySeconds(n, m, *k, m);
    EXPECT_LT(seconds, prev) << "m=" << m;
    prev = seconds;
  }
}

class Eq8CrossValidation
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(Eq8CrossValidation, SimulatorTracksClosedForm) {
  const auto [n, k] = GetParam();
  const double simulated = MeasureQuerySeconds(n, 32, k, n + k);
  const double analytic = model::CostModel::QuerySeconds(
      k, kPageSize, hardware::HardwareProfile::Ibm4764());
  // Allow the sealed-page overhead (52B on 1000B pages, < 6%).
  EXPECT_NEAR(simulated, analytic, analytic * 0.06)
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Eq8CrossValidation,
    ::testing::Values(std::tuple{512u, 4u}, std::tuple{512u, 16u},
                      std::tuple{2048u, 8u}, std::tuple{2048u, 64u},
                      std::tuple{8192u, 32u}, std::tuple{8192u, 128u}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace shpir
