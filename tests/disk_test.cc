#include "storage/disk.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "storage/access_trace.h"
#include "storage/file_disk.h"
#include "storage/metered_disk.h"

namespace shpir::storage {
namespace {

TEST(MemoryDiskTest, ReadBackWhatWasWritten) {
  MemoryDisk disk(10, 8);
  Bytes data(8, 0x5a);
  ASSERT_TRUE(disk.Write(3, data).ok());
  Bytes out(8);
  ASSERT_TRUE(disk.Read(3, out).ok());
  EXPECT_EQ(out, data);
}

TEST(MemoryDiskTest, FreshDiskIsZeroed) {
  MemoryDisk disk(4, 16);
  Bytes out(16, 0xff);
  ASSERT_TRUE(disk.Read(0, out).ok());
  EXPECT_EQ(out, Bytes(16, 0));
}

TEST(MemoryDiskTest, BoundsChecked) {
  MemoryDisk disk(4, 16);
  Bytes buf(16);
  EXPECT_EQ(disk.Read(4, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.Write(4, buf).code(), StatusCode::kOutOfRange);
}

TEST(MemoryDiskTest, SizeChecked) {
  MemoryDisk disk(4, 16);
  Bytes wrong(15);
  EXPECT_EQ(disk.Read(0, wrong).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.Write(0, wrong).code(), StatusCode::kInvalidArgument);
}

TEST(MemoryDiskTest, RunsReadAndWriteConsecutiveSlots) {
  MemoryDisk disk(10, 4);
  std::vector<Bytes> slots;
  for (int i = 0; i < 3; ++i) {
    slots.push_back(Bytes(4, static_cast<uint8_t>(i + 1)));
  }
  ASSERT_TRUE(disk.WriteRun(5, slots).ok());
  std::vector<Bytes> out;
  ASSERT_TRUE(disk.ReadRun(5, 3, out).ok());
  EXPECT_EQ(out, slots);
  // Slot 4 and 8 untouched.
  Bytes z(4);
  ASSERT_TRUE(disk.Read(4, z).ok());
  EXPECT_EQ(z, Bytes(4, 0));
}

TEST(MemoryDiskTest, RunPastEndRejected) {
  MemoryDisk disk(10, 4);
  std::vector<Bytes> out;
  EXPECT_EQ(disk.ReadRun(8, 3, out).code(), StatusCode::kOutOfRange);
  std::vector<Bytes> slots(3, Bytes(4, 0));
  EXPECT_EQ(disk.WriteRun(8, slots).code(), StatusCode::kOutOfRange);
}

class FileDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/shpir_file_disk_test.bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileDiskTest, CreateWriteReadReopen) {
  {
    Result<std::unique_ptr<FileDisk>> disk = FileDisk::Create(path_, 8, 32);
    ASSERT_TRUE(disk.ok()) << disk.status();
    Bytes data(32, 0x77);
    ASSERT_TRUE((*disk)->Write(5, data).ok());
  }
  Result<std::unique_ptr<FileDisk>> disk = FileDisk::Open(path_, 8, 32);
  ASSERT_TRUE(disk.ok()) << disk.status();
  Bytes out(32);
  ASSERT_TRUE((*disk)->Read(5, out).ok());
  EXPECT_EQ(out, Bytes(32, 0x77));
}

TEST_F(FileDiskTest, OpenMissingFileFails) {
  Result<std::unique_ptr<FileDisk>> disk = FileDisk::Open(path_, 8, 32);
  EXPECT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kNotFound);
}

TEST_F(FileDiskTest, GeometryMismatchRejected) {
  {
    Result<std::unique_ptr<FileDisk>> disk = FileDisk::Create(path_, 8, 32);
    ASSERT_TRUE(disk.ok());
  }
  Result<std::unique_ptr<FileDisk>> disk = FileDisk::Open(path_, 9, 32);
  EXPECT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FileDiskTest, BoundsChecked) {
  Result<std::unique_ptr<FileDisk>> disk = FileDisk::Create(path_, 4, 16);
  ASSERT_TRUE(disk.ok());
  Bytes buf(16);
  EXPECT_EQ((*disk)->Read(4, buf).code(), StatusCode::kOutOfRange);
}

TEST(TracingDiskTest, RecordsReadsAndWritesWithRequestIndex) {
  MemoryDisk inner(10, 4);
  AccessTrace trace;
  TracingDisk disk(&inner, &trace);
  Bytes buf(4);

  trace.BeginRequest();
  ASSERT_TRUE(disk.Read(2, buf).ok());
  ASSERT_TRUE(disk.Write(7, buf).ok());
  trace.BeginRequest();
  ASSERT_TRUE(disk.Read(1, buf).ok());

  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0],
            (AccessEvent{AccessEvent::Op::kRead, 2, 0}));
  EXPECT_EQ(trace.events()[1],
            (AccessEvent{AccessEvent::Op::kWrite, 7, 0}));
  EXPECT_EQ(trace.events()[2],
            (AccessEvent{AccessEvent::Op::kRead, 1, 1}));
  EXPECT_EQ(trace.num_requests(), 2u);
}

TEST(TracingDiskTest, PassesDataThrough) {
  MemoryDisk inner(4, 8);
  AccessTrace trace;
  TracingDisk disk(&inner, &trace);
  trace.BeginRequest();
  Bytes data(8, 0x42);
  ASSERT_TRUE(disk.Write(0, data).ok());
  Bytes out(8);
  ASSERT_TRUE(inner.Read(0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(TracingDiskTest, ClearResetsTrace) {
  MemoryDisk inner(4, 8);
  AccessTrace trace;
  TracingDisk disk(&inner, &trace);
  trace.BeginRequest();
  Bytes buf(8);
  ASSERT_TRUE(disk.Read(0, buf).ok());
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.num_requests(), 0u);
}

TEST(MeteredDiskTest, CountsOpsBytesAndSeeks) {
  MemoryDisk inner(16, 8);
  obs::MetricsRegistry registry;
  MeteredDisk disk(&inner, &registry);
  EXPECT_EQ(disk.num_slots(), 16u);
  EXPECT_EQ(disk.slot_size(), 8u);

  Bytes data(8, 0x11);
  ASSERT_TRUE(disk.Write(0, data).ok());   // First access: one seek.
  ASSERT_TRUE(disk.Write(1, data).ok());   // Sequential: no seek.
  ASSERT_TRUE(disk.Write(7, data).ok());   // Jump: seek.
  std::vector<Bytes> run;
  ASSERT_TRUE(disk.ReadRun(8, 4, run).ok());  // Continues from 8: no seek.
  Bytes out(8);
  ASSERT_TRUE(disk.Read(3, out).ok());     // Jump back: seek.

  auto counter = [&](const std::string& name) {
    return registry.FindOrCreateCounter(name)->Value();
  };
  EXPECT_EQ(counter("shpir_disk_writes_total"), 3u);
  EXPECT_EQ(counter("shpir_disk_reads_total"), 5u);  // 4-slot run + 1.
  EXPECT_EQ(counter("shpir_disk_write_bytes_total"), 3u * 8);
  EXPECT_EQ(counter("shpir_disk_read_bytes_total"), 5u * 8);
  EXPECT_EQ(counter("shpir_disk_seeks_total"), 3u);
}

TEST(MeteredDiskTest, DelegatesDataFaithfully) {
  MemoryDisk inner(4, 16);
  obs::MetricsRegistry registry;
  MeteredDisk disk(&inner, &registry);
  Bytes data(16, 0xC3);
  ASSERT_TRUE(disk.Write(2, data).ok());
  Bytes direct(16);
  ASSERT_TRUE(inner.Read(2, direct).ok());
  EXPECT_EQ(direct, data);
  Bytes via(16);
  ASSERT_TRUE(disk.Read(2, via).ok());
  EXPECT_EQ(via, data);
}

}  // namespace
}  // namespace shpir::storage
