#include "shard/dispatcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace shpir::shard {
namespace {

Dispatcher::Options MakeOptions(size_t queues, size_t depth) {
  Dispatcher::Options options;
  options.queues = queues;
  options.queue_depth = depth;
  return options;
}

TEST(DispatcherTest, RunsSubmittedJobs) {
  Dispatcher dispatcher(MakeOptions(2, 8));
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(dispatcher
                    .Submit(i % 2,
                            [&ran](const Status& admission) {
                              EXPECT_TRUE(admission.ok());
                              ++ran;
                            })
                    .ok());
  }
  dispatcher.WaitIdle();
  EXPECT_EQ(ran.load(), 10);
}

TEST(DispatcherTest, PreservesFifoOrderPerQueue) {
  Dispatcher dispatcher(MakeOptions(1, 32));
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(dispatcher
                    .Submit(0,
                            [&order, i](const Status&) {
                              order.push_back(i);
                            })
                    .ok());
  }
  dispatcher.WaitIdle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(DispatcherTest, RejectsWhenQueueFull) {
  obs::MetricsRegistry registry;
  Dispatcher dispatcher(MakeOptions(1, 2));
  dispatcher.EnableMetrics(&registry);
  // Block the worker so submissions pile up.
  std::atomic<bool> release{false};
  ASSERT_TRUE(dispatcher
                  .Submit(0,
                          [&release](const Status&) {
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  // The worker can pop at most the blocker before parking in it, so 8
  // submissions against a depth-2 queue must see rejections.
  int rejected = 0;
  for (int i = 0; i < 8; ++i) {
    const Status status = dispatcher.Submit(0, [](const Status&) {});
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1);
  release.store(true);
  dispatcher.WaitIdle();
  uint64_t counted = 0;
  for (const auto& counter : registry.Snapshot().counters) {
    if (counter.name == "shpir_shard_admission_rejections_total") {
      counted = counter.value;
    }
  }
  EXPECT_EQ(counted, static_cast<uint64_t>(rejected));
}

TEST(DispatcherTest, SubmitAllIsAllOrNothing) {
  Dispatcher dispatcher(MakeOptions(2, 1));
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Saturate queue 1: one job in flight, one queued.
  ASSERT_TRUE(dispatcher
                  .Submit(1,
                          [&release](const Status&) {
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  Status filler;
  for (;;) {
    filler = dispatcher.Submit(1, [](const Status&) {});
    if (filler.ok()) {
      break;
    }
  }
  // Fan-out must fail atomically: queue 0 stays empty.
  std::vector<Dispatcher::Job> jobs;
  jobs.push_back([&ran](const Status&) { ++ran; });
  jobs.push_back([&ran](const Status&) { ++ran; });
  const Status rejected = dispatcher.SubmitAll(std::move(jobs));
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(dispatcher.depth(0), 0u);
  release.store(true);
  dispatcher.WaitIdle();
  EXPECT_EQ(ran.load(), 0);
}

TEST(DispatcherTest, ExpiredJobsAreInvokedWithDeadlineExceeded) {
  Dispatcher dispatcher(MakeOptions(1, 8));
  std::atomic<bool> release{false};
  ASSERT_TRUE(dispatcher
                  .Submit(0,
                          [&release](const Status&) {
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  std::atomic<int> expired{0};
  std::atomic<int> ok{0};
  // Deadline already in the past: must surface as DeadlineExceeded by
  // the time the worker pops it.
  ASSERT_TRUE(dispatcher
                  .Submit(0,
                          [&](const Status& admission) {
                            (admission.code() ==
                                     StatusCode::kDeadlineExceeded
                                 ? expired
                                 : ok)
                                .fetch_add(1);
                          },
                          std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1))
                  .ok());
  release.store(true);
  dispatcher.WaitIdle();
  EXPECT_EQ(expired.load(), 1);
  EXPECT_EQ(ok.load(), 0);
}

TEST(DispatcherTest, QueueWaitHistogramCoversEveryRequestFate) {
  obs::MetricsRegistry registry;
  Dispatcher dispatcher(MakeOptions(1, 2));
  dispatcher.EnableMetrics(&registry);
  // Park the worker in a blocker so subsequent jobs queue up.
  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  ASSERT_TRUE(dispatcher
                  .Submit(0,
                          [&](const Status&) {
                            started.store(true);
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  while (!started.load()) {
    std::this_thread::yield();
  }
  // One job that will expire in the queue, one that will run, one that
  // is rejected outright (depth 2 is full) — ALL THREE must land in the
  // wait histogram, or overload would censor the latency tail.
  ASSERT_TRUE(dispatcher
                  .Submit(0, [](const Status&) {},
                          std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1))
                  .ok());
  ASSERT_TRUE(dispatcher.Submit(0, [](const Status&) {}).ok());
  const Status rejected = dispatcher.Submit(0, [](const Status&) {});
  ASSERT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  release.store(true);
  dispatcher.WaitIdle();

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  uint64_t waits = 0;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "shpir_shard_queue_wait_ns") {
      waits = histogram.count;
    }
  }
  // Blocker + expired + ran + rejected.
  EXPECT_EQ(waits, 4u);
  uint64_t expirations = 0, rejections = 0;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "shpir_shard_deadline_expirations_total") {
      expirations = counter.value;
    }
    if (counter.name == "shpir_shard_admission_rejections_total") {
      rejections = counter.value;
    }
  }
  EXPECT_EQ(expirations, 1u);
  EXPECT_EQ(rejections, 1u);
}

TEST(DispatcherTest, DrainRunsQueuedJobsThenRejectsNewOnes) {
  Dispatcher dispatcher(MakeOptions(2, 16));
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(dispatcher
                    .Submit(i % 2, [&ran](const Status&) { ++ran; })
                    .ok());
  }
  dispatcher.Drain();
  EXPECT_EQ(ran.load(), 8);
  const Status after = dispatcher.Submit(0, [](const Status&) {});
  EXPECT_EQ(after.code(), StatusCode::kFailedPrecondition);
  dispatcher.Drain();  // Idempotent.
}

TEST(DispatcherTest, DepthGaugeTracksQueuedJobs) {
  obs::MetricsRegistry registry;
  Dispatcher dispatcher(MakeOptions(1, 8));
  dispatcher.EnableMetrics(&registry);
  dispatcher.WaitIdle();
  double capacity = 0;
  for (const auto& gauge : registry.Snapshot().gauges) {
    if (gauge.name == "shpir_shard_queue_capacity") {
      capacity = gauge.value;
    }
  }
  EXPECT_EQ(capacity, 8.0);
}

}  // namespace
}  // namespace shpir::shard
