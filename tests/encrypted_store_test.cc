#include "baselines/encrypted_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/check.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace shpir::baselines {
namespace {

using storage::Page;
using storage::PageId;

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

TEST(StaticEncryptedStoreTest, RetrievesCorrectPages) {
  storage::MemoryDisk disk(20, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());
  StaticEncryptedStore::Options options{20, kPageSize};
  auto store = StaticEncryptedStore::Create(cpu->get(), options);
  ASSERT_TRUE(store.ok());
  std::vector<Page> pages;
  for (PageId id = 0; id < 20; ++id) {
    pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id * 3)));
  }
  ASSERT_TRUE((*store)->Initialize(pages).ok());
  for (PageId id = 0; id < 20; ++id) {
    EXPECT_EQ(*(*store)->Retrieve(id),
              Bytes(kPageSize, static_cast<uint8_t>(id * 3)));
  }
}

TEST(StaticEncryptedStoreTest, LayoutIsPermutedButStatic) {
  storage::MemoryDisk disk(32, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 2);
  ASSERT_TRUE(cpu.ok());
  StaticEncryptedStore::Options options{32, kPageSize};
  auto store = StaticEncryptedStore::Create(cpu->get(), options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Initialize({}).ok());
  // All locations distinct (a permutation)...
  std::set<storage::Location> locations;
  for (PageId id = 0; id < 32; ++id) {
    EXPECT_TRUE(locations.insert((*store)->LocationOf(id)).second);
  }
  // ...and repeated queries hit the same slot (the §1 weakness).
  const storage::Location first = (*store)->LocationOf(5);
  ASSERT_TRUE((*store)->Retrieve(5).ok());
  ASSERT_TRUE((*store)->Retrieve(5).ok());
  EXPECT_EQ((*store)->LocationOf(5), first);
}

TEST(StaticEncryptedStoreTest, CostIsOneSeekOnePage) {
  storage::MemoryDisk disk(16, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 3);
  ASSERT_TRUE(cpu.ok());
  StaticEncryptedStore::Options options{16, kPageSize};
  auto store = StaticEncryptedStore::Create(cpu->get(), options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Initialize({}).ok());
  const auto before = (*cpu)->cost().Snapshot();
  ASSERT_TRUE((*store)->Retrieve(0).ok());
  const auto delta = (*cpu)->cost().Snapshot() - before;
  EXPECT_EQ(delta.seeks, 1u);
  EXPECT_EQ(delta.disk_bytes, kSealedSize);
}

TEST(StaticEncryptedStoreTest, Validation) {
  storage::MemoryDisk disk(4, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 4);
  ASSERT_TRUE(cpu.ok());
  StaticEncryptedStore::Options options{5, kPageSize};
  EXPECT_FALSE(StaticEncryptedStore::Create(cpu->get(), options).ok());
  options.num_pages = 4;
  auto store = StaticEncryptedStore::Create(cpu->get(), options);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->Retrieve(0).ok());  // Not initialized.
  ASSERT_TRUE((*store)->Initialize({}).ok());
  EXPECT_FALSE((*store)->Retrieve(4).ok());  // Out of range.
}

}  // namespace
}  // namespace shpir::baselines
