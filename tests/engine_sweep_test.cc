// Property-style parameterized sweep: the engine must deliver correct
// payloads and exact constant per-query cost for every (n, m, k)
// geometry, including awkward ones (k = 1, m barely 2, n not a multiple
// of k, k close to n/2).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::core {
namespace {

constexpr size_t kPageSize = 16;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

using Geometry = std::tuple<uint64_t, uint64_t, uint64_t>;  // n, m, k.

class EngineSweepTest : public ::testing::TestWithParam<Geometry> {};

Bytes PayloadFor(storage::PageId id) {
  Bytes data(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>(id * 37 + i);
  }
  return data;
}

TEST_P(EngineSweepTest, CorrectnessAndConstantCost) {
  const auto [n, m, k] = GetParam();
  CApproxPir::Options options;
  options.num_pages = n;
  options.page_size = kPageSize;
  options.cache_pages = m;
  options.block_size = k;
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok()) << slots.status();
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize,
      n * 1000 + m * 10 + k);
  ASSERT_TRUE(cpu.ok());
  auto engine = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  std::vector<storage::Page> pages;
  for (storage::PageId id = 0; id < n; ++id) {
    pages.emplace_back(id, PayloadFor(id));
  }
  ASSERT_TRUE((*engine)->Initialize(pages).ok());

  crypto::SecureRandom rng(n + m + k);
  auto prev = (*cpu)->cost().Snapshot();
  const uint64_t queries = 300;
  for (uint64_t i = 0; i < queries; ++i) {
    const storage::PageId id = rng.UniformInt(n);
    Result<Bytes> data = (*engine)->Retrieve(id);
    ASSERT_TRUE(data.ok()) << "query " << i;
    ASSERT_EQ(*data, PayloadFor(id)) << "query " << i << " id " << id;
    const auto now = (*cpu)->cost().Snapshot();
    const auto delta = now - prev;
    prev = now;
    ASSERT_EQ(delta.seeks, 4u) << i;
    ASSERT_EQ(delta.disk_bytes, 2 * (k + 1) * kSealedSize) << i;
  }

  // pageMap invariant: uncached locations form a permutation.
  const uint64_t id_space =
      (*engine)->disk_slots() + (*engine)->cache_pages();
  std::set<uint64_t> locations;
  uint64_t cached = 0;
  for (storage::PageId id = 0; id < id_space; ++id) {
    if ((*engine)->DebugIsCached(id)) {
      ++cached;
    } else {
      Result<storage::Location> loc = (*engine)->DebugLocation(id);
      ASSERT_TRUE(loc.ok());
      ASSERT_TRUE(locations.insert(*loc).second);
    }
  }
  EXPECT_EQ(cached, m);
  EXPECT_EQ(locations.size(), (*engine)->disk_slots());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, EngineSweepTest,
    ::testing::Values(
        Geometry{5, 2, 1},     // Minimal everything.
        Geometry{7, 2, 3},     // n not a multiple of k.
        Geometry{16, 2, 8},    // Exactly two blocks.
        Geometry{30, 15, 3},   // Cache half the database.
        Geometry{33, 3, 11},   // Odd sizes.
        Geometry{64, 4, 16},
        Geometry{100, 10, 7},  // Padding needed (100 -> 105).
        Geometry{128, 32, 2},  // Long scan period.
        Geometry{200, 2, 64},  // Tiny cache, big blocks.
        Geometry{256, 64, 32}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "k" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace shpir::core
