#include "obs/eventlog.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace shpir::obs {
namespace {

TEST(EventLog, EmitAndSnapshotPreservesOrderAndFields) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  EventLog log(options);
  log.Emit(EventLevel::kInfo, "started", {{"pages", 128}});
  log.Emit(EventLevel::kWarn, "queue_full", {{"depth", 64}, {"shard", 3}});
  log.Emit(EventLevel::kDebug, "fanout_complete", /*shard=*/2,
           /*trace_id=*/0xabcdULL, {{"latency_ns", 1234.5}});

  const std::vector<EventRecord> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(std::string(events[0].name), "started");
  EXPECT_EQ(events[0].level, EventLevel::kInfo);
  ASSERT_EQ(events[0].num_fields, 1u);
  EXPECT_EQ(std::string(events[0].fields[0].name), "pages");
  EXPECT_EQ(events[0].fields[0].value, 128.0);
  EXPECT_EQ(std::string(events[1].name), "queue_full");
  EXPECT_EQ(events[1].num_fields, 2u);
  EXPECT_EQ(std::string(events[2].name), "fanout_complete");
  EXPECT_EQ(events[2].shard, 2);
  EXPECT_EQ(events[2].trace_id, 0xabcdULL);
  // Seq strictly increases in emission order.
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);

  EXPECT_EQ(log.emitted(), 3u);
  EXPECT_EQ(log.recorded(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, MinLevelFiltersBelowAndCountsThem) {
  EventLog::Options options;
  options.min_level = EventLevel::kWarn;
  EventLog log(options);
  log.Emit(EventLevel::kDebug, "noise");
  log.Emit(EventLevel::kInfo, "chatter");
  log.Emit(EventLevel::kWarn, "trouble");
  log.Emit(EventLevel::kError, "fire");

  const std::vector<EventRecord> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(std::string(events[0].name), "trouble");
  EXPECT_EQ(std::string(events[1].name), "fire");
  EXPECT_EQ(log.emitted(), 4u);
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.filtered(), 2u);
}

TEST(EventLog, RingSaturationOverwritesOldestAndCountsDrops) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  options.capacity = 8;
  options.lanes = 2;
  EventLog log(options);
  constexpr uint64_t kEmit = 100;
  for (uint64_t i = 0; i < kEmit; ++i) {
    log.Emit(EventLevel::kInfo, "tick", {{"i", i}});
  }
  const std::vector<EventRecord> events = log.Snapshot();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(log.emitted(), kEmit);
  EXPECT_EQ(log.recorded(), kEmit);
  // Every event past capacity overwrote one predecessor.
  EXPECT_EQ(log.dropped(), kEmit - 8);
  // The survivors are the most recent events (highest seqs), in order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_GE(events.front().seq, kEmit - 8);
}

TEST(EventLog, PerLevelRateLimitDiscardsOverBudgetEvents) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  options.max_per_sec[static_cast<size_t>(EventLevel::kDebug)] = 5;
  EventLog log(options);
  // A burst far faster than one second: only the budget survives.
  for (int i = 0; i < 50; ++i) {
    log.Emit(EventLevel::kDebug, "burst");
  }
  // Other levels have no budget and are untouched.
  log.Emit(EventLevel::kError, "still_there");

  EXPECT_EQ(log.recorded(), 6u);
  EXPECT_EQ(log.rate_limited(), 45u);
  const std::vector<EventRecord> events = log.Snapshot();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(std::string(events.back().name), "still_there");
}

TEST(EventLog, ClearDiscardsEventsButKeepsCounters) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  EventLog log(options);
  log.Emit(EventLevel::kInfo, "one");
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.emitted(), 1u);
  EXPECT_EQ(log.recorded(), 1u);
}

TEST(EventLog, ConcurrentEmittersLoseNothingBelowCapacity) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  options.capacity = 4096;
  options.lanes = 4;
  EventLog log(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit(EventLevel::kInfo, "work", {{"i", i}});
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(log.recorded(), kThreads * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.Snapshot().size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(EventLog, JsonCarriesCountersAndEvents) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  EventLog log(options);
  log.Emit(EventLevel::kWarn, "queue_full", /*shard=*/1,
           /*trace_id=*/0x1234ULL, {{"depth", 64}});
  const std::string json = EventLogJson(log);
  EXPECT_NE(json.find("\"emitted\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"rate_limited\":0"), std::string::npos);
  EXPECT_NE(json.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_full\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"0000000000001234\""),
            std::string::npos);
  EXPECT_NE(json.find("\"depth\":64"), std::string::npos);
}

TEST(EventLog, ShapeIgnoresValuesTimestampsAndTraceIds) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  EventLog a(options);
  EventLog b(options);
  // Same emission structure, different values / trace ids / timing.
  a.Emit(EventLevel::kInfo, "fanout_complete", /*shard=*/-1,
         /*trace_id=*/0x1111ULL, {{"latency_ns", 100}, {"ok", 1}});
  b.Emit(EventLevel::kInfo, "fanout_complete", /*shard=*/-1,
         /*trace_id=*/0x2222ULL, {{"latency_ns", 999999}, {"ok", 0}});
  EXPECT_EQ(EventShape(a.Snapshot()), EventShape(b.Snapshot()));
  EXPECT_NE(EventShape(a.Snapshot()), "");

  // A different event name is a different shape.
  b.Emit(EventLevel::kWarn, "fanout_rejected", {{"shards", 2}});
  EXPECT_NE(EventShape(a.Snapshot()), EventShape(b.Snapshot()));
}

TEST(EventLog, ShapeIsOrderIndependent) {
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  EventLog a(options);
  EventLog b(options);
  // Interleaving differs (as thread scheduling would); shape must not.
  a.Emit(EventLevel::kInfo, "first");
  a.Emit(EventLevel::kWarn, "second", {{"x", 1}});
  b.Emit(EventLevel::kWarn, "second", {{"x", 2}});
  b.Emit(EventLevel::kInfo, "first");
  EXPECT_EQ(EventShape(a.Snapshot()), EventShape(b.Snapshot()));
}

TEST(EventLog, PublishMetricsExportsCountersIncludingDrops) {
  MetricsRegistry registry;
  EventLog::Options options;
  options.min_level = EventLevel::kDebug;
  options.capacity = 4;
  options.lanes = 1;
  EventLog log(options);
  log.PublishMetrics(&registry);
  for (int i = 0; i < 10; ++i) {
    log.Emit(EventLevel::kInfo, "tick");
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  double emitted = -1;
  double dropped = -1;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "shpir_eventlog_emitted_total") {
      emitted = gauge.value;
    }
    if (gauge.name == "shpir_eventlog_dropped_total") {
      dropped = gauge.value;
    }
  }
  EXPECT_EQ(emitted, 10.0);
  EXPECT_EQ(dropped, 6.0);
}

// The compile-time secret guard: EventField must accept arithmetic
// values and reject common::Secret<T>. The rejection itself is a
// static_assert — uncommenting the line below must fail the build:
//   EventField bad("page", common::Secret<uint64_t>(42));
TEST(EventLog, EventFieldAcceptsArithmeticTypes) {
  const EventField a("count", 7);
  const EventField b("ratio", 0.5);
  const EventField c("big", uint64_t{1} << 40);
  EXPECT_EQ(a.value, 7.0);
  EXPECT_EQ(b.value, 0.5);
  EXPECT_EQ(c.value, static_cast<double>(uint64_t{1} << 40));
}

}  // namespace
}  // namespace shpir::obs
