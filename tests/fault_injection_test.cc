#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir {
namespace {

using storage::Location;
using storage::MemoryDisk;

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

/// Disk decorator that starts failing after a budget of operations, or
/// corrupts reads — simulates media failures under the engine.
class FaultyDisk : public storage::Disk {
 public:
  explicit FaultyDisk(storage::Disk* inner) : inner_(inner) {}

  void FailAfter(uint64_t ops) { remaining_ = ops; }
  void CorruptReads(bool corrupt) { corrupt_reads_ = corrupt; }

  uint64_t num_slots() const override { return inner_->num_slots(); }
  size_t slot_size() const override { return inner_->slot_size(); }

  Status Read(Location loc, MutableByteSpan out) override {
    SHPIR_RETURN_IF_ERROR(Tick());
    SHPIR_RETURN_IF_ERROR(inner_->Read(loc, out));
    if (corrupt_reads_) {
      out[0] ^= 0xFF;
    }
    return OkStatus();
  }

  Status Write(Location loc, ByteSpan data) override {
    SHPIR_RETURN_IF_ERROR(Tick());
    return inner_->Write(loc, data);
  }

 private:
  Status Tick() {
    if (remaining_ == 0) {
      return InternalError("injected disk failure");
    }
    if (remaining_ != UINT64_MAX) {
      --remaining_;
    }
    return OkStatus();
  }

  storage::Disk* inner_;
  uint64_t remaining_ = UINT64_MAX;
  bool corrupt_reads_ = false;
};

struct Rig {
  std::unique_ptr<MemoryDisk> inner;
  std::unique_ptr<FaultyDisk> disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;

  static Rig Make(uint64_t seed) {
    core::CApproxPir::Options options;
    options.num_pages = 40;
    options.page_size = kPageSize;
    options.cache_pages = 4;
    options.block_size = 8;
    Rig rig;
    Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.inner = std::make_unique<MemoryDisk>(*slots, kSealedSize);
    rig.disk = std::make_unique<FaultyDisk>(rig.inner.get());
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.disk.get(), kPageSize,
        seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto engine = core::CApproxPir::Create(rig.cpu.get(), options);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize({}));
    return rig;
  }
};

TEST(FaultInjectionTest, ReadFailureSurfacesAsError) {
  Rig rig = Rig::Make(1);
  rig.disk->FailAfter(0);
  Result<Bytes> data = rig.engine->Retrieve(0);
  EXPECT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInternal);
}

TEST(FaultInjectionTest, MidRoundFailureSurfacesAsError) {
  Rig rig = Rig::Make(2);
  // Fail in the middle of the block read (8 reads + 1 extra + writes).
  rig.disk->FailAfter(3);
  EXPECT_FALSE(rig.engine->Retrieve(0).ok());
  // Fail during write-back.
  Rig rig2 = Rig::Make(3);
  rig2.disk->FailAfter(10);  // Past the 9 reads, into the writes.
  EXPECT_FALSE(rig2.engine->Retrieve(0).ok());
}

TEST(FaultInjectionTest, CorruptedCiphertextDetectedAsDataLoss) {
  Rig rig = Rig::Make(4);
  rig.disk->CorruptReads(true);
  Result<Bytes> data = rig.engine->Retrieve(0);
  EXPECT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kDataLoss);
}

TEST(FaultInjectionTest, RecoversWhenFaultClears) {
  Rig rig = Rig::Make(5);
  rig.disk->CorruptReads(true);
  EXPECT_FALSE(rig.engine->Retrieve(0).ok());
  rig.disk->CorruptReads(false);
  // A transient MAC failure during the read phase did not mutate any
  // state: the engine keeps serving (the round-robin cursor advanced,
  // which is harmless).
  Result<Bytes> data = rig.engine->Retrieve(0);
  EXPECT_TRUE(data.ok()) << data.status();
}

TEST(FaultInjectionTest, InitializeFailureSurfaces) {
  core::CApproxPir::Options options;
  options.num_pages = 40;
  options.page_size = kPageSize;
  options.cache_pages = 4;
  options.block_size = 8;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  MemoryDisk inner(*slots, kSealedSize);
  FaultyDisk disk(&inner);
  disk.FailAfter(0);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 6);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->Initialize({}).ok());
}

}  // namespace
}  // namespace shpir
