#include "obs/flight_recorder.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace shpir::obs {
namespace {

FlightRecorder::Options FastOptions() {
  FlightRecorder::Options options;
  options.min_interval_ns = 0;  // No debounce: tests control timing.
  return options;
}

TEST(FlightRecorder, EdgeTriggerSealsOnCounterIncrease) {
  FlightRecorder recorder(FastOptions());
  uint64_t breaches = 0;
  recorder.AddTrigger("privacy_breach", [&breaches] { return breaches; });

  // Steady counter: polls are free.
  EXPECT_EQ(recorder.Poll(), 0u);
  EXPECT_EQ(recorder.Poll(), 0u);
  EXPECT_EQ(recorder.sealed(), 0u);

  breaches = 3;
  EXPECT_EQ(recorder.Poll(), 1u);
  EXPECT_EQ(recorder.sealed(), 1u);
  // No new edge: the counter was latched at 3.
  EXPECT_EQ(recorder.Poll(), 0u);

  const std::vector<FlightRecorder::Incident> incidents = recorder.List();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].reason, "privacy_breach");
  EXPECT_EQ(incidents[0].trigger_value, 3u);
  EXPECT_GT(incidents[0].id, 0u);
  EXPECT_EQ(recorder.polls(), 4u);
}

TEST(FlightRecorder, AtMostOneSealPerPollWhenTwoTriggersEdge) {
  FlightRecorder recorder(FastOptions());
  uint64_t a = 0;
  uint64_t b = 0;
  recorder.AddTrigger("slo_burn_alert", [&a] { return a; });
  recorder.AddTrigger("dispatcher_overload", [&b] { return b; });

  a = 1;
  b = 1;
  EXPECT_EQ(recorder.Poll(), 1u);
  // Both edges were consumed in that poll: nothing left to fire.
  EXPECT_EQ(recorder.Poll(), 0u);
  EXPECT_EQ(recorder.sealed(), 1u);
  EXPECT_EQ(recorder.List().front().reason, "slo_burn_alert");
}

TEST(FlightRecorder, DebounceWindowCountsEdgeButSealsNothing) {
  FlightRecorder::Options options;
  options.min_interval_ns = 3600ULL * 1000000000ULL;  // 1h: never elapses.
  FlightRecorder recorder(options);
  uint64_t overloads = 0;
  recorder.AddTrigger("dispatcher_overload",
                      [&overloads] { return overloads; });

  // First seal passes (last_seal_ns starts at 0, far in the past).
  overloads = 1;
  EXPECT_EQ(recorder.Poll(), 1u);
  // Second edge lands inside the window: debounced, not sealed.
  overloads = 2;
  EXPECT_EQ(recorder.Poll(), 0u);
  EXPECT_EQ(recorder.sealed(), 1u);
  EXPECT_EQ(recorder.debounced(), 1u);
}

TEST(FlightRecorder, ManualTriggerIgnoresDebounce) {
  FlightRecorder::Options options;
  options.min_interval_ns = 3600ULL * 1000000000ULL;
  FlightRecorder recorder(options);
  const uint64_t first = recorder.Trigger("manual");
  const uint64_t second = recorder.Trigger("manual");
  EXPECT_EQ(recorder.sealed(), 2u);
  EXPECT_EQ(recorder.debounced(), 0u);
  EXPECT_LT(first, second);
}

TEST(FlightRecorder, BoundedStoreEvictsOldestIncidents) {
  FlightRecorder::Options options;
  options.min_interval_ns = 0;
  options.max_incidents = 2;
  FlightRecorder recorder(options);
  for (int i = 0; i < 5; ++i) {
    recorder.Trigger("manual");
  }
  EXPECT_EQ(recorder.sealed(), 5u);
  const std::vector<FlightRecorder::Incident> incidents = recorder.List();
  ASSERT_EQ(incidents.size(), 2u);
  // Oldest first; ids 1..3 were evicted.
  EXPECT_EQ(incidents[0].id, 4u);
  EXPECT_EQ(incidents[1].id, 5u);
  // Evicted bundles are gone from show mode too.
  EXPECT_EQ(recorder.ShowJson(1), "");
  EXPECT_NE(recorder.ShowJson(5), "");
}

TEST(FlightRecorder, ListJsonCarriesCountersAndSummaries) {
  FlightRecorder recorder(FastOptions());
  recorder.Trigger("manual");
  const std::string json = recorder.ListJson();
  EXPECT_NE(json.find("\"sealed\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"debounced\":0"), std::string::npos);
  EXPECT_NE(json.find("\"incidents\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"manual\""), std::string::npos);
  EXPECT_NE(json.find("\"trigger_value\":0"), std::string::npos);
  // Summaries only: the heavy bundle payloads stay out of list mode.
  EXPECT_EQ(json.find("\"events\""), std::string::npos);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST(FlightRecorder, ShowJsonRendersTheFullBundle) {
  FlightRecorder recorder(FastOptions());
  recorder.SetConfigFingerprint("shards=4 pages=1024 k=16 c=2.00");
  const uint64_t id = recorder.Trigger("manual");
  const std::string json = recorder.ShowJson(id);
  EXPECT_NE(json.find("\"id\":" + std::to_string(id)), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"reason\":\"manual\""), std::string::npos);
  EXPECT_NE(json.find("\"config\":\"shards=4 pages=1024 k=16 c=2.00\""),
            std::string::npos);
  EXPECT_NE(json.find("\"shape\":\"reason:manual"), std::string::npos);
  // Unattached surfaces render as empty objects, not absent keys.
  EXPECT_NE(json.find("\"events\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{}"), std::string::npos);
  // Unknown id: empty string, the wire layer maps it to NotFound.
  EXPECT_EQ(recorder.ShowJson(id + 100), "");
}

TEST(FlightRecorder, AttachedSurfacesAreCapturedInTheBundle) {
  EventLog::Options log_options;
  log_options.min_level = EventLevel::kDebug;
  EventLog log(log_options);
  log.Emit(EventLevel::kWarn, "queue_full", {{"depth", 32}});

  MetricsRegistry metrics;
  metrics.FindOrCreateCounter("shpir_test_requests_total")->Increment();

  Tracer::Options trace_options;
  trace_options.sample_every = 1;
  Tracer tracer(trace_options);
  {
    TraceSpan span(&tracer, "fanout");
  }

  FlightRecorder recorder(FastOptions());
  recorder.AttachEventLog(&log);
  recorder.AttachMetrics(&metrics);
  recorder.AttachTracer(&tracer);
  const uint64_t id = recorder.Trigger("manual");
  const std::string json = recorder.ShowJson(id);

  EXPECT_NE(json.find("queue_full"), std::string::npos) << json;
  EXPECT_NE(json.find("shpir_test_requests_total"), std::string::npos);
  EXPECT_NE(json.find("fanout"), std::string::npos);

  const std::vector<FlightRecorder::Incident> incidents = recorder.List();
  ASSERT_EQ(incidents.size(), 1u);
  const std::string& shape = incidents[0].shape;
  // The digest lists names only — never values or timings.
  EXPECT_NE(shape.find("warn:queue_full"), std::string::npos) << shape;
  EXPECT_NE(shape.find("span:fanout"), std::string::npos);
  EXPECT_NE(shape.find("metric:shpir_test_requests_total"),
            std::string::npos);
  EXPECT_EQ(shape.find("32"), std::string::npos);
}

TEST(FlightRecorder, SpillWritesOneJsonFilePerIncident) {
  const std::string dir =
      testing::TempDir() + "/shpir_flight_recorder_spill";
  std::filesystem::remove_all(dir);
  FlightRecorder::Options options;
  options.min_interval_ns = 0;
  options.spill_dir = dir;
  FlightRecorder recorder(options);
  recorder.SetConfigFingerprint("pages=64");
  const uint64_t id = recorder.Trigger("manual");

  const std::string path = dir + "/incident_" + std::to_string(id) + ".json";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  EXPECT_EQ(contents, recorder.ShowJson(id));
  EXPECT_NE(contents.find("\"config\":\"pages=64\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, SpillDirFallsBackToEnvironmentVariable) {
  const std::string dir = testing::TempDir() + "/shpir_incident_env";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("SHPIR_INCIDENT_DIR", dir.c_str(), /*overwrite=*/1), 0);
  FlightRecorder::Options options;
  options.min_interval_ns = 0;
  FlightRecorder recorder(options);
  ASSERT_EQ(unsetenv("SHPIR_INCIDENT_DIR"), 0);
  EXPECT_EQ(recorder.options().spill_dir, dir);

  const uint64_t id = recorder.Trigger("manual");
  EXPECT_TRUE(std::filesystem::exists(dir + "/incident_" +
                                      std::to_string(id) + ".json"));
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, PublishMetricsExportsSealAndDebounceCounters) {
  MetricsRegistry registry;
  FlightRecorder recorder(FastOptions());
  recorder.PublishMetrics(&registry);
  recorder.Trigger("manual");
  recorder.Poll();
  const MetricsSnapshot snapshot = registry.Snapshot();
  double sealed = -1;
  double polls = -1;
  double stored = -1;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "shpir_incident_sealed_total") {
      sealed = gauge.value;
    }
    if (gauge.name == "shpir_incident_polls_total") {
      polls = gauge.value;
    }
    if (gauge.name == "shpir_incident_stored") {
      stored = gauge.value;
    }
  }
  EXPECT_EQ(sealed, 1.0);
  EXPECT_EQ(polls, 1.0);
  EXPECT_EQ(stored, 1.0);
}

}  // namespace
}  // namespace shpir::obs
