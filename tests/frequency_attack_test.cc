#include "analysis/frequency_attack.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/encrypted_store.h"
#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::analysis {
namespace {

constexpr size_t kPageSize = 16;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
constexpr uint64_t kN = 64;

/// Zipf-ish workload generator with the adversary's matching prior.
struct Workload {
  std::vector<double> popularity;
  crypto::SecureRandom rng;

  explicit Workload(uint64_t seed) : rng(seed) {
    popularity.resize(kN);
    double total = 0;
    for (uint64_t i = 0; i < kN; ++i) {
      popularity[i] = 1.0 / static_cast<double>(i + 1);
      total += popularity[i];
    }
    for (double& p : popularity) {
      p /= total;
    }
  }

  storage::PageId Next() {
    double x = rng.UniformDouble();
    for (uint64_t i = 0; i < kN; ++i) {
      x -= popularity[i];
      if (x <= 0) {
        return i;
      }
    }
    return kN - 1;
  }
};

TEST(FrequencyAttackTest, BreaksStaticEncryptedStore) {
  storage::MemoryDisk disk(kN, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());
  baselines::StaticEncryptedStore::Options options{kN, kPageSize};
  auto store = baselines::StaticEncryptedStore::Create(cpu->get(), options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Initialize({}).ok());

  Workload workload(2);
  std::vector<storage::Location> observed;
  std::vector<storage::PageId> truth;
  for (int i = 0; i < 20000; ++i) {
    const storage::PageId id = workload.Next();
    ASSERT_TRUE((*store)->Retrieve(id).ok());
    observed.push_back((*store)->LocationOf(id));
    truth.push_back(id);
  }
  const FrequencyAttackReport report =
      RunFrequencyAttack(observed, truth, workload.popularity);
  // The paper's claim: encryption alone does not hide the access
  // pattern — the adversary identifies the bulk of the requests.
  EXPECT_GT(report.accuracy(), 0.5);
}

TEST(FrequencyAttackTest, CApproxEngineResists) {
  core::CApproxPir::Options options;
  options.num_pages = kN;
  options.page_size = kPageSize;
  options.cache_pages = 8;
  options.block_size = 8;
  auto slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  storage::AccessTrace trace;
  storage::TracingDisk tracing_disk(&disk, &trace);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &tracing_disk, kPageSize, 3);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options, &trace);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());

  Workload workload(4);
  std::vector<storage::PageId> truth;
  const uint64_t k = (*engine)->block_size();
  size_t cursor = trace.events().size();
  std::vector<storage::Location> observed;
  for (int i = 0; i < 20000; ++i) {
    const storage::PageId id = workload.Next();
    ASSERT_TRUE((*engine)->Retrieve(id).ok());
    truth.push_back(id);
    // The data-dependent access is the (k+1)-th read of the request.
    uint64_t reads = 0;
    for (; cursor < trace.events().size(); ++cursor) {
      const auto& event = trace.events()[cursor];
      if (event.op == storage::AccessEvent::Op::kRead) {
        ++reads;
        if (reads == k + 1) {
          observed.push_back(event.location);
        }
      }
    }
  }
  ASSERT_EQ(observed.size(), truth.size());
  const FrequencyAttackReport report =
      RunFrequencyAttack(observed, truth, workload.popularity);
  // Pages keep relocating, so the rank alignment collapses: accuracy
  // stays close to the single-page chance level.
  EXPECT_LT(report.accuracy(), 0.10);
}

TEST(FrequencyAttackTest, DegenerateInputs) {
  EXPECT_EQ(RunFrequencyAttack({}, {}, {}).requests, 0u);
  EXPECT_DOUBLE_EQ(RunFrequencyAttack({}, {}, {}).accuracy(), 0.0);
  // Mismatched lengths are rejected (empty report).
  EXPECT_EQ(RunFrequencyAttack({1}, {}, {0.5}).requests, 0u);
}

TEST(FrequencyAttackTest, PerfectWhenOneHotPage) {
  // One page gets all requests; its location dominates the histogram.
  std::vector<storage::Location> observed(1000, 7);
  std::vector<storage::PageId> truth(1000, 3);
  std::vector<double> popularity(10, 0.01);
  popularity[3] = 0.91;
  const FrequencyAttackReport report =
      RunFrequencyAttack(observed, truth, popularity);
  EXPECT_DOUBLE_EQ(report.accuracy(), 1.0);
}

}  // namespace
}  // namespace shpir::analysis
