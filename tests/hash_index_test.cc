#include "index/hash_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::index {
namespace {

using storage::Page;

constexpr size_t kPageSize = 128;

/// Serves pages straight from memory (tests index logic in isolation).
class PlainEngine : public core::PirEngine {
 public:
  explicit PlainEngine(std::vector<Page> pages) : pages_(std::move(pages)) {}

  Result<Bytes> Retrieve(storage::PageId id) override {
    if (id >= pages_.size()) {
      return NotFoundError("no such page");
    }
    return pages_[id].data;
  }
  uint64_t num_pages() const override { return pages_.size(); }
  size_t page_size() const override { return kPageSize; }
  const char* name() const override { return "plain"; }

 private:
  std::vector<Page> pages_;
};

std::vector<std::pair<uint64_t, uint64_t>> MakeEntries(uint64_t n) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < n; ++i) {
    entries.emplace_back(i * 1000003 + 17, i + 1);
  }
  return entries;
}

TEST(HashIndexTest, LookupFindsEveryKey) {
  HashIndexBuilder builder(kPageSize);
  const auto entries = MakeEntries(500);
  auto pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok()) << pages.status();
  PlainEngine engine(*pages);
  auto index = HashIndex::Open(&engine);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_keys(), 500u);
  for (const auto& [key, value] : entries) {
    auto found = (*index)->Lookup(key);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value()) << key;
    EXPECT_EQ(**found, value);
  }
}

TEST(HashIndexTest, MissesReturnNullopt) {
  HashIndexBuilder builder(kPageSize);
  auto pages = builder.Build(MakeEntries(100));
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  auto index = HashIndex::Open(&engine);
  ASSERT_TRUE(index.ok());
  for (uint64_t key : {0ull, 1ull, 999999999ull}) {
    auto found = (*index)->Lookup(key);
    ASSERT_TRUE(found.ok());
    EXPECT_FALSE(found->has_value()) << key;
  }
}

TEST(HashIndexTest, FixedProbeCountHitOrMiss) {
  HashIndexBuilder builder(kPageSize, /*probe_width=*/2);
  const auto entries = MakeEntries(200);
  auto pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  auto index = HashIndex::Open(&engine);
  ASSERT_TRUE(index.ok());
  const uint64_t before_hit = (*index)->retrievals();
  ASSERT_TRUE((*index)->Lookup(entries[0].first).ok());
  const uint64_t hit_cost = (*index)->retrievals() - before_hit;
  const uint64_t before_miss = (*index)->retrievals();
  ASSERT_TRUE((*index)->Lookup(424242).ok());
  const uint64_t miss_cost = (*index)->retrievals() - before_miss;
  EXPECT_EQ(hit_cost, 2u);
  EXPECT_EQ(miss_cost, 2u);
}

TEST(HashIndexTest, ProbeWidthOne) {
  HashIndexBuilder builder(kPageSize, /*probe_width=*/1);
  const auto entries = MakeEntries(50);
  auto pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  auto index = HashIndex::Open(&engine);
  ASSERT_TRUE(index.ok());
  for (const auto& [key, value] : entries) {
    EXPECT_EQ(**(*index)->Lookup(key), value);
  }
}

TEST(HashIndexTest, EmptyIndex) {
  HashIndexBuilder builder(kPageSize);
  auto pages = builder.Build({});
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  auto index = HashIndex::Open(&engine);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE((*index)->Lookup(1)->has_value());
}

TEST(HashIndexTest, RejectsDuplicatesAndTinyPages) {
  HashIndexBuilder builder(kPageSize);
  EXPECT_FALSE(builder.Build({{1, 1}, {1, 2}}).ok());
  HashIndexBuilder tiny(8);
  EXPECT_FALSE(tiny.Build({{1, 1}}).ok());
}

TEST(HashIndexTest, OpenRejectsGarbage) {
  std::vector<Page> pages = {Page(0, Bytes(kPageSize, 0x42))};
  PlainEngine engine(std::move(pages));
  EXPECT_FALSE(HashIndex::Open(&engine).ok());
  EXPECT_FALSE(HashIndex::Open(nullptr).ok());
}

TEST(HashIndexTest, WorksOverCApproxPir) {
  HashIndexBuilder builder(kPageSize);
  const auto entries = MakeEntries(300);
  auto pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok());

  core::CApproxPir::Options options;
  options.num_pages = pages->size();
  options.page_size = kPageSize;
  options.cache_pages = 16;
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 13);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize(*pages).ok());

  auto index = HashIndex::Open(engine->get());
  ASSERT_TRUE(index.ok());
  crypto::SecureRandom rng(14);
  for (int i = 0; i < 100; ++i) {
    const auto& [key, value] = entries[rng.UniformInt(entries.size())];
    auto found = (*index)->Lookup(key);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value());
    EXPECT_EQ(**found, value);
  }
}

}  // namespace
}  // namespace shpir::index
