#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"

namespace shpir::crypto {
namespace {

std::string TagHex(const Bytes& key, const Bytes& data) {
  HmacSha256 mac(key);
  const HmacSha256::Tag tag = mac.Compute(data);
  return HexEncode(ByteSpan(tag.data(), tag.size()));
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  const Bytes data(msg.begin(), msg.end());
  EXPECT_EQ(TagHex(key, data),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  const std::string key_str = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const Bytes key(key_str.begin(), key_str.end());
  const Bytes data(msg.begin(), msg.end());
  EXPECT_EQ(TagHex(key, data),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa key, 0xdd data).
TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(TagHex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key larger than block size.
TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Bytes data(msg.begin(), msg.end());
  EXPECT_EQ(TagHex(key, data),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyAcceptsCorrectTag) {
  const Bytes key(32, 0x01);
  const Bytes data = {1, 2, 3, 4};
  HmacSha256 mac(key);
  const HmacSha256::Tag tag = mac.Compute(data);
  EXPECT_TRUE(mac.Verify(data, ByteSpan(tag.data(), tag.size())));
}

TEST(HmacTest, VerifyRejectsTamperedData) {
  const Bytes key(32, 0x01);
  Bytes data = {1, 2, 3, 4};
  HmacSha256 mac(key);
  const HmacSha256::Tag tag = mac.Compute(data);
  data[0] ^= 1;
  EXPECT_FALSE(mac.Verify(data, ByteSpan(tag.data(), tag.size())));
}

TEST(HmacTest, VerifyRejectsTamperedTag) {
  const Bytes key(32, 0x01);
  const Bytes data = {1, 2, 3, 4};
  HmacSha256 mac(key);
  HmacSha256::Tag tag = mac.Compute(data);
  tag[31] ^= 0x80;
  EXPECT_FALSE(mac.Verify(data, ByteSpan(tag.data(), tag.size())));
}

TEST(HmacTest, VerifyRejectsTruncatedTag) {
  const Bytes key(32, 0x01);
  const Bytes data = {1, 2, 3, 4};
  HmacSha256 mac(key);
  const HmacSha256::Tag tag = mac.Compute(data);
  EXPECT_FALSE(mac.Verify(data, ByteSpan(tag.data(), tag.size() - 1)));
}

TEST(HmacTest, DifferentKeysGiveDifferentTags) {
  const Bytes data = {9, 9, 9};
  EXPECT_NE(TagHex(Bytes(16, 0x01), data), TagHex(Bytes(16, 0x02), data));
}

}  // namespace
}  // namespace shpir::crypto
