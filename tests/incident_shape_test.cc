// The paired-rig shape proof for the incident-observability layer: two
// identical serving rigs that differ ONLY in which page the client
// actually wants must emit byte-identical event shapes and
// shape-identical incident bundles. This is the observable form of the
// trust-boundary rule in docs/OBSERVABILITY.md — if any surface let the
// secret target leak into an event name, field set, or bundle digest,
// these comparisons would break.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "net/wire.h"
#include "obs/eventlog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "shard/sharded_engine.h"

namespace shpir::obs {
namespace {

constexpr uint64_t kPages = 64;

/// One fully instrumented serving rig. Everything about its
/// construction is deterministic and identical across instances; only
/// the queries driven through it differ.
struct Rig {
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<EventLog> log;
  std::unique_ptr<FlightRecorder> recorder;
  std::unique_ptr<shard::ShardedPirEngine> engine;

  static Rig Make() {
    Rig rig;
    rig.metrics = std::make_unique<MetricsRegistry>();

    EventLog::Options log_options;
    log_options.min_level = EventLevel::kDebug;
    rig.log = std::make_unique<EventLog>(log_options);

    FlightRecorder::Options rec_options;
    rec_options.min_interval_ns = 0;
    rig.recorder = std::make_unique<FlightRecorder>(rec_options);
    rig.recorder->AttachEventLog(rig.log.get());
    rig.recorder->AttachMetrics(rig.metrics.get());

    shard::ShardedPirEngine::Options options;
    options.num_pages = kPages;
    options.page_size = 32;
    options.cache_pages = 8;
    options.privacy_c = 2.0;
    options.shards = 2;
    options.queue_depth = 64;
    options.seed = 11;
    auto engine = shard::ShardedPirEngine::Create(options);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize({}));
    rig.engine->EnableMetrics(rig.metrics.get());
    rig.engine->EnableEventLog(rig.log.get());
    rig.engine->EnableFlightRecorder(rig.recorder.get());
    return rig;
  }

  void Drive(const std::vector<storage::PageId>& targets) {
    for (const storage::PageId id : targets) {
      SHPIR_CHECK_OK(engine->Retrieve(id).status());
    }
    engine->WaitIdle();
  }
};

TEST(IncidentShape, PairedRigsEmitIdenticalEventShapes) {
  Rig a = Rig::Make();
  Rig b = Rig::Make();
  // Same number of logical queries; disjoint secret targets that even
  // live on different shards (low vs high halves of the id space).
  a.Drive({0, 1, 2, 3, 4, 5, 6, 7});
  b.Drive({63, 62, 61, 60, 59, 58, 57, 56});

  const std::string shape_a = EventShape(a.log->Snapshot());
  const std::string shape_b = EventShape(b.log->Snapshot());
  EXPECT_FALSE(shape_a.empty());
  EXPECT_EQ(shape_a, shape_b);
  // The logs really did record the runtime's events, not nothing.
  EXPECT_NE(shape_a.find("fanout_complete"), std::string::npos) << shape_a;
  EXPECT_NE(shape_a.find("shard_runtime_started"), std::string::npos);
  // And the aggregate counters agree too: same traffic, same recording.
  EXPECT_EQ(a.log->recorded(), b.log->recorded());
  EXPECT_EQ(a.log->emitted(), b.log->emitted());
}

TEST(IncidentShape, PairedRigsSealShapeIdenticalBundles) {
  Rig a = Rig::Make();
  Rig b = Rig::Make();
  a.Drive({3, 9, 27});
  b.Drive({40, 50, 60});

  const uint64_t id_a = a.recorder->Trigger("manual");
  const uint64_t id_b = b.recorder->Trigger("manual");
  const std::vector<FlightRecorder::Incident> inc_a = a.recorder->List();
  const std::vector<FlightRecorder::Incident> inc_b = b.recorder->List();
  ASSERT_EQ(inc_a.size(), 1u);
  ASSERT_EQ(inc_b.size(), 1u);

  // The digest covers the event shapes and the metric-name vocabulary;
  // it must not see which pages were asked for.
  EXPECT_EQ(inc_a[0].shape, inc_b[0].shape);
  EXPECT_NE(inc_a[0].shape.find("reason:manual"), std::string::npos);
  EXPECT_NE(inc_a[0].shape.find("metric:shpir_shard_logical_queries_total"),
            std::string::npos)
      << inc_a[0].shape;

  // Public config fingerprints are equal (same plan, same build).
  EXPECT_EQ(inc_a[0].config_fingerprint, inc_b[0].config_fingerprint);
  EXPECT_EQ(a.engine->ConfigFingerprint(), b.engine->ConfigFingerprint());
  EXPECT_NE(a.recorder->ShowJson(id_a), "");
  EXPECT_NE(b.recorder->ShowJson(id_b), "");
}

TEST(IncidentShape, HealthJsonIsTargetIndependentAndTracksDraining) {
  Rig a = Rig::Make();
  Rig b = Rig::Make();
  a.Drive({1});
  b.Drive({62});

  const std::string health_a = a.engine->HealthJson();
  EXPECT_NE(health_a.find("\"ready\":true"), std::string::npos) << health_a;
  EXPECT_NE(health_a.find("\"role\":\"shard\""), std::string::npos);
  EXPECT_NE(health_a.find("\"dispatcher\":{"), std::string::npos);
  // Byte-identical across secret targets: the whole document is
  // aggregate state and public configuration.
  EXPECT_EQ(health_a, b.engine->HealthJson());

  a.engine->Drain();
  const std::string drained = a.engine->HealthJson();
  EXPECT_NE(drained.find("\"ready\":false"), std::string::npos) << drained;
}

// --- Wire coverage: the new ops round-trip the storage envelope and
// --- are served end to end through the sealed-session hub.

TEST(IncidentShape, NewStorageOpsRoundTripTheWire) {
  for (const net::Op op :
       {net::Op::kEventDump, net::Op::kIncidentDump, net::Op::kHealth}) {
    net::Request request;
    request.op = op;
    request.location = 7;
    request.payload = {1};
    const Result<net::Request> back =
        net::DecodeRequest(net::EncodeRequest(request));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->op, op);
    EXPECT_EQ(back->location, 7u);
  }
}

TEST(IncidentShape, HubServesEventIncidentAndHealthOps) {
  Rig rig = Rig::Make();
  rig.Drive({5});

  const Bytes psk{'t', 'e', 's', 't'};
  EventLog* log = rig.log.get();
  FlightRecorder* recorder = rig.recorder.get();
  shard::ShardedPirEngine* engine = rig.engine.get();
  net::ServiceHub hub(
      rig.engine.get(), psk, /*rng_seed=*/3, /*metrics=*/nullptr,
      /*tracer=*/nullptr, /*profile_dump=*/nullptr, /*slo_status=*/nullptr,
      /*keyword_manifest=*/nullptr,
      /*event_dump=*/
      [log] {
        const std::string json = EventLogJson(*log);
        return Bytes(json.begin(), json.end());
      },
      /*incident_dump=*/
      [recorder](bool show, uint64_t id) -> Result<Bytes> {
        if (show) {
          const std::string json = recorder->ShowJson(id);
          if (json.empty()) {
            return NotFoundError("no such incident in the store");
          }
          return Bytes(json.begin(), json.end());
        }
        const std::string json = recorder->ListJson();
        return Bytes(json.begin(), json.end());
      },
      /*health=*/
      [engine] {
        const std::string json = engine->HealthJson();
        return Bytes(json.begin(), json.end());
      });

  // Handshake, as any tool client would.
  const uint64_t client_id = 5;
  crypto::SecureRandom rng(17);
  Bytes nonce(net::SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> reply =
      hub.HandleFrame(net::ServiceHub::MakeHello(client_id, nonce));
  ASSERT_TRUE(reply.ok()) << reply.status();
  Result<net::SecureSession> session =
      net::ServiceHub::CompleteHandshake(*reply, psk, client_id, nonce);
  ASSERT_TRUE(session.ok()) << session.status();
  net::PirServiceClient client(
      std::move(session).value(), [&hub, client_id](ByteSpan record) {
        return hub.HandleFrame(net::ServiceHub::MakeData(client_id, record));
      });

  const Result<Bytes> events = client.EventDump();
  ASSERT_TRUE(events.ok()) << events.status();
  const std::string events_json(events->begin(), events->end());
  EXPECT_NE(events_json.find("\"events\":["), std::string::npos);
  EXPECT_NE(events_json.find("fanout_complete"), std::string::npos);

  // No incidents yet: list is empty, show is NotFound.
  Result<Bytes> list = client.IncidentList();
  ASSERT_TRUE(list.ok()) << list.status();
  EXPECT_NE(std::string(list->begin(), list->end()).find("\"sealed\":0"),
            std::string::npos);
  EXPECT_FALSE(client.IncidentShow(1).ok());

  const uint64_t incident_id = rig.recorder->Trigger("manual");
  list = client.IncidentList();
  ASSERT_TRUE(list.ok());
  EXPECT_NE(std::string(list->begin(), list->end()).find("\"sealed\":1"),
            std::string::npos);
  const Result<Bytes> show = client.IncidentShow(incident_id);
  ASSERT_TRUE(show.ok()) << show.status();
  const std::string bundle(show->begin(), show->end());
  EXPECT_NE(bundle.find("\"reason\":\"manual\""), std::string::npos);
  EXPECT_NE(bundle.find("\"shape\":\"reason:manual"), std::string::npos);

  const Result<Bytes> health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_NE(std::string(health->begin(), health->end())
                .find("\"ready\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace shpir::obs
