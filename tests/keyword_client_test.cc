#include "keyword/keyword_client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/secret.h"
#include "core/capprox_pir.h"
#include "hardware/coprocessor.h"
#include "keyword/keyword_cuckoo.h"
#include "keyword/keyword_fuse.h"
#include "storage/access_trace.h"
#include "storage/disk.h"
#include "workload/workload.h"

namespace shpir::keyword {
namespace {

using storage::Page;
using storage::PageId;

Bytes B(const std::string& text) { return Bytes(text.begin(), text.end()); }

std::vector<KeyValue> MakeEntries(uint64_t count) {
  std::vector<KeyValue> entries(count);
  for (uint64_t i = 0; i < count; ++i) {
    entries[i].key = workload::KeyForIndex(i);
    entries[i].value = B("value-" + std::to_string(i));
  }
  return entries;
}

/// A keyword store served by a real c-approximate engine behind a
/// tracing disk — the adversary's full view of each lookup.
struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  storage::AccessTrace trace;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;
  std::unique_ptr<KeywordClient> client;

  static Rig Make(const BuiltKeywordStore& store, uint64_t seed = 42) {
    Rig rig;
    core::CApproxPir::Options options;
    options.num_pages = store.map->num_pages();
    options.page_size = store.map->page_size();
    options.cache_pages = 8;
    options.block_size = 8;
    const size_t sealed = 12 + 8 + options.page_size + 32;
    Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, sealed);
    rig.tracing_disk =
        std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.tracing_disk.get(),
        options.page_size, seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto engine =
        core::CApproxPir::Create(rig.cpu.get(), options, &rig.trace);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize(store.pages));
    auto client = KeywordClient::Create(
        store.manifest, KeywordClient::EngineFetch(rig.engine.get()));
    SHPIR_CHECK(client.ok());
    rig.client = std::move(client).value();
    return rig;
  }
};

Result<std::optional<Bytes>> Get(Rig& rig, const Bytes& key) {
  return rig.client->Get(common::Secret<Bytes>(key));
}

void ExpectEndToEnd(const BuiltKeywordStore& store,
                    const std::vector<KeyValue>& entries) {
  Rig rig = Rig::Make(store);
  for (size_t i = 0; i < entries.size(); i += 7) {
    Result<std::optional<Bytes>> value = Get(rig, entries[i].key);
    ASSERT_TRUE(value.ok()) << value.status();
    ASSERT_TRUE(value->has_value()) << "missing key " << i;
    EXPECT_EQ(**value, entries[i].value);
  }
  Result<std::optional<Bytes>> miss = Get(rig, B("no-such-key"));
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->has_value());
}

TEST(KeywordClientTest, CuckooEndToEndOverEngine) {
  const auto entries = MakeEntries(300);
  CuckooOptions options;
  options.page_size = 64;
  options.stash_pages = 2;
  auto store = BuildCuckooStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  ExpectEndToEnd(*store, entries);
}

TEST(KeywordClientTest, FuseEndToEndOverEngine) {
  const auto entries = MakeEntries(300);
  FuseOptions options;
  options.value_size = 16;
  options.page_size = 48;
  auto store = BuildFuseStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  ExpectEndToEnd(*store, entries);
}

TEST(KeywordClientTest, CountersTrackProbeVolume) {
  const auto entries = MakeEntries(100);
  CuckooOptions options;
  options.page_size = 64;
  auto store = BuildCuckooStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  Rig rig = Rig::Make(*store);
  const size_t probes = rig.client->map().probes_per_lookup();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Get(rig, entries[i].key).ok());
  }
  ASSERT_TRUE(Get(rig, B("absent")).ok());
  EXPECT_EQ(rig.client->lookups(), 6u);
  EXPECT_EQ(rig.client->pages_fetched(), 6u * probes);
}

TEST(KeywordClientTest, CreateRejectsBadInputs) {
  const auto entries = MakeEntries(20);
  auto store = BuildCuckooStore(entries, CuckooOptions{});
  ASSERT_TRUE(store.ok());
  // Null fetch.
  EXPECT_FALSE(KeywordClient::Create(store->manifest, nullptr).ok());
  // Truncated manifest.
  auto noop = [](PageId) -> Result<Bytes> { return Bytes(); };
  EXPECT_FALSE(
      KeywordClient::Create(ByteSpan(store->manifest.data(), 4), noop).ok());
}

/// The adversary's transcript of a lookup must not depend on whether the
/// key exists. Two identically-seeded rigs replay the same number of
/// Gets — one all hits, one all misses — and their traces must agree
/// event-for-event in shape: same per-Get access counts, same per-Get
/// PIR query counts. (Slot choices differ — that is the engine's
/// c-approximate indirection at work — but counts and timing may not.)
void ExpectShapeIndistinguishable(const BuiltKeywordStore& store,
                                  const std::vector<KeyValue>& entries) {
  constexpr int kLookups = 24;
  Rig hit_rig = Rig::Make(store, /*seed=*/7);
  Rig miss_rig = Rig::Make(store, /*seed=*/7);
  const size_t probes = hit_rig.client->map().probes_per_lookup();

  std::vector<size_t> hit_events, miss_events;
  std::vector<uint64_t> hit_queries, miss_queries;
  for (int i = 0; i < kLookups; ++i) {
    size_t events_before = hit_rig.trace.events().size();
    uint64_t queries_before = hit_rig.trace.num_requests();
    ASSERT_TRUE(Get(hit_rig, entries[i % entries.size()].key).ok());
    hit_events.push_back(hit_rig.trace.events().size() - events_before);
    hit_queries.push_back(hit_rig.trace.num_requests() - queries_before);

    events_before = miss_rig.trace.events().size();
    queries_before = miss_rig.trace.num_requests();
    ASSERT_TRUE(Get(miss_rig, B("absent-" + std::to_string(i))).ok());
    miss_events.push_back(miss_rig.trace.events().size() - events_before);
    miss_queries.push_back(miss_rig.trace.num_requests() - queries_before);
  }
  // Every Get — hit or miss — issues exactly probes_per_lookup() PIR
  // queries...
  for (int i = 0; i < kLookups; ++i) {
    EXPECT_EQ(hit_queries[i], probes) << "hit lookup " << i;
    EXPECT_EQ(miss_queries[i], probes) << "miss lookup " << i;
  }
  // ...and the per-Get disk access counts line up position by position.
  EXPECT_EQ(hit_events, miss_events);
}

TEST(KeywordClientTest, CuckooHitAndMissTracesShapeIdentical) {
  const auto entries = MakeEntries(200);
  CuckooOptions options;
  options.page_size = 64;
  options.stash_pages = 2;
  auto store = BuildCuckooStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  ExpectShapeIndistinguishable(*store, entries);
}

TEST(KeywordClientTest, FuseHitAndMissTracesShapeIdentical) {
  const auto entries = MakeEntries(200);
  FuseOptions options;
  options.value_size = 16;
  options.page_size = 48;
  auto store = BuildFuseStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  ExpectShapeIndistinguishable(*store, entries);
}

}  // namespace
}  // namespace shpir::keyword
