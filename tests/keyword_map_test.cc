#include "keyword/keyword_map.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "keyword/keyword_cuckoo.h"
#include "keyword/keyword_fuse.h"
#include "workload/workload.h"

namespace shpir::keyword {
namespace {

Bytes B(const std::string& text) { return Bytes(text.begin(), text.end()); }

std::vector<KeyValue> MakeEntries(uint64_t count) {
  std::vector<KeyValue> entries(count);
  for (uint64_t i = 0; i < count; ++i) {
    entries[i].key = workload::KeyForIndex(i);
    entries[i].value = B("value-" + std::to_string(i));
  }
  return entries;
}

/// Resolves a lookup straight against the built pages (no engine).
Result<std::optional<Bytes>> DirectGet(const BuiltKeywordStore& store,
                                       const Bytes& key) {
  const KeywordDigest digest = DigestKey(key, store.map->seed());
  std::vector<Bytes> fetched;
  for (const storage::PageId id : store.map->Probes(digest)) {
    fetched.push_back(store.pages[id].data);
  }
  return store.map->Extract(digest, fetched);
}

void ExpectAllPresent(const BuiltKeywordStore& store,
                      const std::vector<KeyValue>& entries) {
  for (const KeyValue& entry : entries) {
    Result<std::optional<Bytes>> value = DirectGet(store, entry.key);
    ASSERT_TRUE(value.ok()) << value.status();
    ASSERT_TRUE(value->has_value())
        << "missing key " << std::string(entry.key.begin(), entry.key.end());
    EXPECT_EQ(**value, entry.value);
  }
}

// --- Cuckoo -----------------------------------------------------------

TEST(CuckooKeywordTest, BuildsAndLooksUpEveryKey) {
  const auto entries = MakeEntries(5000);
  CuckooOptions options;
  CuckooBuildStats stats;
  auto store = BuildCuckooStore(entries, options, &stats);
  ASSERT_TRUE(store.ok()) << store.status();
  ExpectAllPresent(*store, entries);
  EXPECT_GE(stats.load_factor, 0.8);
  EXPECT_EQ(store->map->num_keys(), entries.size());
  EXPECT_EQ(store->map->probes_per_lookup(), 2u + options.stash_pages);
  EXPECT_EQ(store->pages.size(), store->map->num_pages());
}

TEST(CuckooKeywordTest, MissesReturnNullopt) {
  const auto entries = MakeEntries(500);
  auto store = BuildCuckooStore(entries, CuckooOptions{});
  ASSERT_TRUE(store.ok()) << store.status();
  for (int i = 0; i < 50; ++i) {
    Result<std::optional<Bytes>> value =
        DirectGet(*store, B("absent-" + std::to_string(i)));
    ASSERT_TRUE(value.ok()) << value.status();
    EXPECT_FALSE(value->has_value());
  }
}

TEST(CuckooKeywordTest, ProbesAreTwoDistinctBucketsPlusAllStashPages) {
  const auto entries = MakeEntries(300);
  CuckooOptions options;
  options.stash_pages = 2;
  auto store = BuildCuckooStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  const uint64_t buckets = store->map->num_pages() - options.stash_pages;
  for (const KeyValue& entry : entries) {
    const auto probes =
        store->map->Probes(DigestKey(entry.key, store->map->seed()));
    ASSERT_EQ(probes.size(), store->map->probes_per_lookup());
    EXPECT_NE(probes[0], probes[1]);
    EXPECT_LT(probes[0], buckets);
    EXPECT_LT(probes[1], buckets);
    // Every lookup touches every stash page, at fixed ids.
    EXPECT_EQ(probes[2], buckets);
    EXPECT_EQ(probes[3], buckets + 1);
  }
}

TEST(CuckooKeywordTest, DuplicateKeysRejected) {
  auto entries = MakeEntries(10);
  entries.push_back({entries[3].key, B("other")});
  auto store = BuildCuckooStore(entries, CuckooOptions{});
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kAlreadyExists);
}

TEST(CuckooKeywordTest, OversizedEntryRejected) {
  std::vector<KeyValue> entries = {{B("big"), Bytes(300, 0xAA)}};
  CuckooOptions options;
  options.page_size = 64;
  auto store = BuildCuckooStore(entries, options);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST(CuckooKeywordTest, InsertionCyclesSpillToStash) {
  // Force a table far too small for clean placement: overflow must land
  // in the stash, and stashed keys must still be found (every lookup
  // scans the stash pages).
  const auto entries = MakeEntries(40);
  CuckooOptions options;
  options.page_size = 64;  // 61-byte buckets: 2 entries each.
  options.forced_buckets = 18;
  options.stash_pages = 4;
  options.max_kicks = 50;
  CuckooBuildStats stats;
  auto store = BuildCuckooStore(entries, options, &stats);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_GT(stats.stash_entries, 0u);
  ExpectAllPresent(*store, entries);
}

TEST(CuckooKeywordTest, StashOverflowRebuildsWithNewSeeds) {
  const auto entries = MakeEntries(200);
  CuckooOptions options;
  options.simulate_failed_attempts = 3;
  CuckooBuildStats stats;
  auto store = BuildCuckooStore(entries, options, &stats);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(stats.attempts, 4u);
  // The rebuild derived a fresh seed, so digests differ from attempt 0.
  CuckooOptions clean = options;
  clean.simulate_failed_attempts = 0;
  auto first = BuildCuckooStore(entries, clean);
  ASSERT_TRUE(first.ok());
  EXPECT_NE(store->map->seed(), first->map->seed());
  ExpectAllPresent(*store, entries);
}

TEST(CuckooKeywordTest, PersistentOverflowFailsCleanly) {
  // 2 one-entry buckets + 1 stash page cannot hold 40 keys under any
  // seed: the builder must exhaust its attempts and say so.
  const auto entries = MakeEntries(40);
  CuckooOptions options;
  options.page_size = 32;
  options.forced_buckets = 2;
  options.stash_pages = 1;
  options.max_build_attempts = 4;
  CuckooBuildStats stats;
  auto store = BuildCuckooStore(entries, options, &stats);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stats.attempts, 4u);
}

// --- Fuse -------------------------------------------------------------

TEST(FuseKeywordTest, BuildsAndLooksUpEveryKey) {
  const auto entries = MakeEntries(5000);
  FuseOptions options;
  options.value_size = 16;
  options.page_size = kEntryOverhead + options.value_size;
  FuseBuildStats stats;
  auto store = BuildFuseStore(entries, options, &stats);
  ASSERT_TRUE(store.ok()) << store.status();
  ExpectAllPresent(*store, entries);
  EXPECT_EQ(store->map->probes_per_lookup(), 3u);
  EXPECT_LT(stats.space_overhead, 1.3);
  EXPECT_EQ(store->pages.size(), store->map->num_pages());
}

TEST(FuseKeywordTest, MissesReturnNullopt) {
  const auto entries = MakeEntries(800);
  FuseOptions options;
  options.value_size = 16;
  auto store = BuildFuseStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  for (int i = 0; i < 100; ++i) {
    Result<std::optional<Bytes>> value =
        DirectGet(*store, B("absent-" + std::to_string(i)));
    ASSERT_TRUE(value.ok()) << value.status();
    EXPECT_FALSE(value->has_value());
  }
}

TEST(FuseKeywordTest, ProbesHitThreeDistinctSegments) {
  const auto entries = MakeEntries(600);
  FuseOptions options;
  options.value_size = 16;
  auto store = BuildFuseStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  const uint64_t segment = store->map->num_pages() / 3;
  for (const KeyValue& entry : entries) {
    const auto probes =
        store->map->Probes(DigestKey(entry.key, store->map->seed()));
    ASSERT_EQ(probes.size(), 3u);
    EXPECT_LT(probes[0], segment);
    EXPECT_GE(probes[1], segment);
    EXPECT_LT(probes[1], 2 * segment);
    EXPECT_GE(probes[2], 2 * segment);
    EXPECT_LT(probes[2], 3 * segment);
  }
}

TEST(FuseKeywordTest, ValueTooLargeRejected) {
  std::vector<KeyValue> entries = {{B("k"), Bytes(64, 1)}};
  FuseOptions options;
  options.value_size = 16;
  auto store = BuildFuseStore(entries, options);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST(FuseKeywordTest, DuplicateKeysRejected) {
  auto entries = MakeEntries(10);
  entries.push_back({entries[0].key, B("other")});
  auto store = BuildFuseStore(entries, FuseOptions{});
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kAlreadyExists);
}

// --- Manifest ---------------------------------------------------------

TEST(KeywordManifestTest, CuckooRoundTrips) {
  const auto entries = MakeEntries(200);
  CuckooOptions options;
  options.build_version = 7;
  auto store = BuildCuckooStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  auto parsed = KeywordMap::Deserialize(store->manifest);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->kind(), KeywordMap::Kind::kCuckoo);
  EXPECT_EQ((*parsed)->build_version(), 7u);
  EXPECT_EQ((*parsed)->seed(), store->map->seed());
  EXPECT_EQ((*parsed)->num_pages(), store->map->num_pages());
  EXPECT_EQ((*parsed)->probes_per_lookup(),
            store->map->probes_per_lookup());
  // The reparsed map resolves lookups identically.
  const KeywordDigest digest =
      DigestKey(entries[5].key, (*parsed)->seed());
  EXPECT_EQ((*parsed)->Probes(digest), store->map->Probes(digest));
}

TEST(KeywordManifestTest, FuseRoundTrips) {
  const auto entries = MakeEntries(200);
  FuseOptions options;
  options.value_size = 16;
  options.build_version = 9;
  auto store = BuildFuseStore(entries, options);
  ASSERT_TRUE(store.ok()) << store.status();
  auto parsed = KeywordMap::Deserialize(store->manifest);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->kind(), KeywordMap::Kind::kFuse);
  EXPECT_EQ((*parsed)->build_version(), 9u);
  const KeywordDigest digest =
      DigestKey(entries[0].key, (*parsed)->seed());
  EXPECT_EQ((*parsed)->Probes(digest), store->map->Probes(digest));
}

TEST(KeywordManifestTest, RejectsTruncatedManifest) {
  const auto entries = MakeEntries(50);
  auto store = BuildCuckooStore(entries, CuckooOptions{});
  ASSERT_TRUE(store.ok());
  for (size_t len : {size_t{0}, size_t{5}, kManifestHeaderSize - 1}) {
    auto parsed = KeywordMap::Deserialize(
        ByteSpan(store->manifest.data(), len));
    EXPECT_FALSE(parsed.ok()) << "accepted " << len << " bytes";
  }
  // Truncated body (valid header).
  auto parsed = KeywordMap::Deserialize(
      ByteSpan(store->manifest.data(), store->manifest.size() - 4));
  EXPECT_FALSE(parsed.ok());
}

TEST(KeywordManifestTest, RejectsBadMagicAndUnknownVersionAndKind) {
  const auto entries = MakeEntries(50);
  auto store = BuildCuckooStore(entries, CuckooOptions{});
  ASSERT_TRUE(store.ok());

  Bytes bad_magic = store->manifest;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(KeywordMap::Deserialize(bad_magic).ok());

  Bytes bad_version = store->manifest;
  bad_version[8] = 0xEE;  // format_version lives at offset 8.
  EXPECT_FALSE(KeywordMap::Deserialize(bad_version).ok());

  Bytes bad_kind = store->manifest;
  bad_kind[kManifestHeaderSize - 1] = 0x7F;  // kind byte.
  EXPECT_FALSE(KeywordMap::Deserialize(bad_kind).ok());
}

// --- Bucket page codec ------------------------------------------------

TEST(BucketPageTest, ScanRejectsMalformedPages) {
  const KeywordDigest digest{};
  // Wrong tag.
  Bytes page(64, 0);
  EXPECT_FALSE(ScanBucketPage(page, digest).ok());
  // Entry count overruns the page.
  page[0] = kBucketPageTag;
  page[1] = 0xFF;
  page[2] = 0xFF;
  EXPECT_FALSE(ScanBucketPage(page, digest).ok());
}

TEST(BucketPageTest, EncodeScanRoundTrip) {
  std::vector<BucketEntry> entries(2);
  entries[0].digest.fill(0x11);
  entries[0].value = B("one");
  entries[1].digest.fill(0x22);
  entries[1].value = B("two");
  const Bytes page = EncodeBucketPage(entries, 64);
  ASSERT_EQ(page.size(), 64u);
  auto hit = ScanBucketPage(page, entries[1].digest);
  ASSERT_TRUE(hit.ok()) << hit.status();
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ(**hit, B("two"));
  KeywordDigest absent;
  absent.fill(0x33);
  auto miss = ScanBucketPage(page, absent);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->has_value());
}

}  // namespace
}  // namespace shpir::keyword
