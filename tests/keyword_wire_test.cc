#include "net/wire.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "keyword/keyword_cuckoo.h"
#include "keyword/keyword_map.h"
#include "net/remote_disk.h"
#include "net/service_hub.h"
#include "net/storage_server.h"
#include "storage/disk.h"
#include "workload/workload.h"

namespace shpir::net {
namespace {

/// A real manifest to ship over the wire.
keyword::BuiltKeywordStore MakeStore(uint64_t build_version) {
  std::vector<keyword::KeyValue> entries(64);
  for (uint64_t i = 0; i < entries.size(); ++i) {
    entries[i].key = workload::KeyForIndex(i);
    const std::string value = "value-" + std::to_string(i);
    entries[i].value = Bytes(value.begin(), value.end());
  }
  keyword::CuckooOptions options;
  options.page_size = 64;
  options.build_version = build_version;
  auto store = keyword::BuildCuckooStore(entries, options);
  SHPIR_CHECK(store.ok());
  return std::move(store).value();
}

// --- Shared codec -----------------------------------------------------

TEST(KeywordManifestCodecTest, RequestRoundTrips) {
  const Bytes payload = EncodeKeywordManifestRequest(0xDEADBEEFu);
  ASSERT_EQ(payload.size(), 9u);
  EXPECT_EQ(payload[0], kKeywordManifestRequestVersion);
  Result<uint64_t> cached = DecodeKeywordManifestRequest(payload);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_EQ(*cached, 0xDEADBEEFu);
}

TEST(KeywordManifestCodecTest, RequestRejectsBadSizesAndVersions) {
  EXPECT_FALSE(DecodeKeywordManifestRequest(Bytes{}).ok());
  EXPECT_FALSE(DecodeKeywordManifestRequest(Bytes(8, 0)).ok());
  EXPECT_FALSE(DecodeKeywordManifestRequest(Bytes(10, 0)).ok());
  Bytes unknown_version = EncodeKeywordManifestRequest(1);
  unknown_version[0] = 0xEE;
  EXPECT_FALSE(DecodeKeywordManifestRequest(unknown_version).ok());
}

TEST(KeywordManifestCodecTest, ResponseRoundTripsWithAndWithoutBody) {
  KeywordManifest manifest;
  manifest.manifest = Bytes{1, 2, 3, 4};
  manifest.version = 7;

  Result<KeywordManifest> full = DecodeKeywordManifestResponse(
      EncodeKeywordManifestResponse(manifest, /*include_body=*/true));
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->version, 7u);
  EXPECT_EQ(full->manifest, manifest.manifest);

  Result<KeywordManifest> cached = DecodeKeywordManifestResponse(
      EncodeKeywordManifestResponse(manifest, /*include_body=*/false));
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_EQ(cached->version, 7u);
  EXPECT_TRUE(cached->manifest.empty());
}

TEST(KeywordManifestCodecTest, ResponseRejectsMalformedFrames) {
  // Truncated header.
  EXPECT_FALSE(DecodeKeywordManifestResponse(Bytes{}).ok());
  EXPECT_FALSE(DecodeKeywordManifestResponse(Bytes(8, 0)).ok());
  // Presence flag out of range.
  Bytes bad_flag(9, 0);
  bad_flag[8] = 2;
  EXPECT_FALSE(DecodeKeywordManifestResponse(bad_flag).ok());
  // "Absent body" frames must carry nothing after the flag.
  Bytes trailing(12, 0);
  trailing[8] = 0;
  EXPECT_FALSE(DecodeKeywordManifestResponse(trailing).ok());
}

// --- Storage protocol (owner <-> provider) ----------------------------

struct StorageRig {
  storage::MemoryDisk disk{4, 64};
  StorageServer server{&disk};
  DirectTransport transport{&server};
};

TEST(KeywordManifestStorageTest, UnpublishedManifestIsAnError) {
  StorageRig rig;
  Result<KeywordManifest> fetched = FetchKeywordManifest(rig.transport);
  EXPECT_FALSE(fetched.ok());
  EXPECT_NE(fetched.status().ToString().find("no keyword manifest"),
            std::string::npos);
}

TEST(KeywordManifestStorageTest, FetchCacheAndRepublish) {
  StorageRig rig;
  const keyword::BuiltKeywordStore store = MakeStore(/*build_version=*/3);
  rig.server.PublishKeywordManifest(store.manifest, 3);

  // Cold fetch returns the full body, and the body parses back into a
  // working map.
  Result<KeywordManifest> fetched = FetchKeywordManifest(rig.transport);
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(fetched->version, 3u);
  EXPECT_EQ(fetched->manifest, store.manifest);
  auto map = keyword::KeywordMap::Deserialize(fetched->manifest);
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ((*map)->build_version(), 3u);

  // A current cache gets "not modified": version only, no body.
  Result<KeywordManifest> cached = FetchKeywordManifest(rig.transport, 3);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_EQ(cached->version, 3u);
  EXPECT_TRUE(cached->manifest.empty());

  // A rebuild bumps the version; the stale cache refetches the body.
  const keyword::BuiltKeywordStore rebuilt = MakeStore(/*build_version=*/4);
  rig.server.PublishKeywordManifest(rebuilt.manifest, 4);
  Result<KeywordManifest> stale = FetchKeywordManifest(rig.transport, 3);
  ASSERT_TRUE(stale.ok()) << stale.status();
  EXPECT_EQ(stale->version, 4u);
  EXPECT_EQ(stale->manifest, rebuilt.manifest);
}

TEST(KeywordManifestStorageTest, RejectsMalformedRequestPayloads) {
  StorageRig rig;
  rig.server.PublishKeywordManifest(MakeStore(1).manifest, 1);

  // Truncated payload.
  Request truncated;
  truncated.op = Op::kKeywordManifest;
  truncated.payload = Bytes(5, 0);
  Result<Bytes> reply =
      rig.transport.RoundTrip(EncodeRequest(truncated));
  ASSERT_TRUE(reply.ok());
  Result<Bytes> decoded = DecodeResponse(*reply);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("keyword-manifest"),
            std::string::npos);

  // Unknown request-format version.
  Request unknown = truncated;
  unknown.payload = EncodeKeywordManifestRequest(0);
  unknown.payload[0] = 0x7E;
  reply = rig.transport.RoundTrip(EncodeRequest(unknown));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(DecodeResponse(*reply).ok());

  // A truncated raw frame never reaches the op dispatch.
  reply = rig.transport.RoundTrip(Bytes(3, 0));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(DecodeResponse(*reply).ok());
}

// --- Sealed service protocol (client <-> secure hardware) -------------

constexpr size_t kPageSize = 32;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

struct ServiceRig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;
  std::unique_ptr<ServiceHub> hub;
  Bytes psk = Bytes(32, 0x66);

  static ServiceRig Make(uint64_t seed,
                         PirServiceServer::KeywordManifestProvider provider) {
    core::CApproxPir::Options options;
    options.num_pages = 40;
    options.page_size = kPageSize;
    options.cache_pages = 4;
    options.block_size = 8;
    ServiceRig rig;
    Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.disk.get(), kPageSize,
        seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto engine = core::CApproxPir::Create(rig.cpu.get(), options);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    std::vector<storage::Page> pages;
    for (uint64_t id = 0; id < 40; ++id) {
      pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id + 1)));
    }
    SHPIR_CHECK_OK(rig.engine->Initialize(pages));
    rig.hub = std::make_unique<ServiceHub>(
        rig.engine.get(), rig.psk, seed + 1, nullptr, nullptr, nullptr,
        nullptr, std::move(provider));
    return rig;
  }
};

PirServiceClient MakeClient(ServiceRig& rig, uint64_t client_id,
                            uint64_t seed) {
  crypto::SecureRandom rng(seed);
  Bytes nonce(SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> reply =
      rig.hub->HandleFrame(ServiceHub::MakeHello(client_id, nonce));
  SHPIR_CHECK(reply.ok());
  Result<SecureSession> session =
      ServiceHub::CompleteHandshake(*reply, rig.psk, client_id, nonce);
  SHPIR_CHECK(session.ok());
  ServiceHub* hub = rig.hub.get();
  return PirServiceClient(
      std::move(session).value(), [hub, client_id](ByteSpan record) {
        return hub->HandleFrame(ServiceHub::MakeData(client_id, record));
      });
}

TEST(KeywordManifestServiceTest, FetchAndCacheThroughSealedRecords) {
  const keyword::BuiltKeywordStore store = MakeStore(/*build_version=*/5);
  KeywordManifest published{store.manifest, 5};
  ServiceRig rig =
      ServiceRig::Make(1, [published]() { return published; });
  PirServiceClient client = MakeClient(rig, 101, 2);

  Result<KeywordManifest> fetched = client.FetchKeywordManifest();
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(fetched->version, 5u);
  EXPECT_EQ(fetched->manifest, store.manifest);
  ASSERT_TRUE(keyword::KeywordMap::Deserialize(fetched->manifest).ok());

  Result<KeywordManifest> cached = client.FetchKeywordManifest(5);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_EQ(cached->version, 5u);
  EXPECT_TRUE(cached->manifest.empty());
}

TEST(KeywordManifestServiceTest, NotEnabledIsAnError) {
  ServiceRig rig = ServiceRig::Make(3, nullptr);
  PirServiceClient client = MakeClient(rig, 7, 4);
  Result<KeywordManifest> fetched = client.FetchKeywordManifest();
  EXPECT_FALSE(fetched.ok());
  EXPECT_NE(fetched.status().ToString().find("no keyword manifest"),
            std::string::npos);
}

// Malformed KEYWORD_MANIFEST payloads inside an authenticated session
// must come back as clean in-protocol errors, not crashes or garbage.
TEST(KeywordManifestServiceTest, RejectsMalformedSealedPayloads) {
  const keyword::BuiltKeywordStore store = MakeStore(/*build_version=*/1);
  KeywordManifest published{store.manifest, 1};
  ServiceRig rig = ServiceRig::Make(5, [published]() { return published; });

  // Hand-rolled session pair so we can seal raw request plaintexts.
  crypto::SecureRandom rng(6);
  Bytes client_nonce(SecureSession::kNonceSize);
  Bytes server_nonce(SecureSession::kNonceSize);
  rng.Fill(client_nonce);
  rng.Fill(server_nonce);
  auto client_session =
      SecureSession::Establish(rig.psk, SecureSession::Role::kClient,
                               client_nonce, server_nonce);
  auto server_session =
      SecureSession::Establish(rig.psk, SecureSession::Role::kServer,
                               client_nonce, server_nonce);
  ASSERT_TRUE(client_session.ok());
  ASSERT_TRUE(server_session.ok());
  PirServiceServer server(rig.engine.get(),
                          std::move(server_session).value(), nullptr,
                          nullptr, nullptr, nullptr, nullptr,
                          [published]() { return published; });

  constexpr uint8_t kOpKeywordManifest = 10;
  constexpr uint8_t kStatusError = 1;
  for (const size_t bad_payload_size : {size_t{0}, size_t{5}, size_t{12}}) {
    Bytes plaintext(1 + 8 + bad_payload_size, 0);
    plaintext[0] = kOpKeywordManifest;
    Result<Bytes> record = client_session->Seal(plaintext);
    ASSERT_TRUE(record.ok());
    Result<Bytes> reply = server.HandleRecord(*record);
    ASSERT_TRUE(reply.ok()) << reply.status();
    Result<Bytes> response = client_session->Open(*reply);
    ASSERT_TRUE(response.ok());
    ASSERT_FALSE(response->empty());
    EXPECT_EQ((*response)[0], kStatusError)
        << "payload size " << bad_payload_size << " was accepted";
  }

  // Unknown request-format version, correct size.
  Bytes plaintext(1 + 8 + 9, 0);
  plaintext[0] = kOpKeywordManifest;
  plaintext[9] = 0x7E;  // format byte of the keyword request payload.
  Result<Bytes> record = client_session->Seal(plaintext);
  ASSERT_TRUE(record.ok());
  Result<Bytes> reply = server.HandleRecord(*record);
  ASSERT_TRUE(reply.ok());
  Result<Bytes> response = client_session->Open(*reply);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response->empty());
  EXPECT_EQ((*response)[0], kStatusError);
}

}  // namespace
}  // namespace shpir::net
