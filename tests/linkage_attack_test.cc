#include "analysis/linkage_attack.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::analysis {
namespace {

constexpr size_t kPageSize = 16;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  storage::AccessTrace trace;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;

  static Rig Make(uint64_t n, uint64_t m, uint64_t k, uint64_t seed) {
    core::CApproxPir::Options options;
    options.num_pages = n;
    options.page_size = kPageSize;
    options.cache_pages = m;
    options.block_size = k;
    Rig rig;
    Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    rig.tracing_disk =
        std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.tracing_disk.get(),
        kPageSize, seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto engine = core::CApproxPir::Create(rig.cpu.get(), options,
                                           &rig.trace);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize({}));
    return rig;
  }
};

TEST(LinkageAttackTest, ReportsAreConsistent) {
  Rig rig = Rig::Make(128, 8, 8, 1);
  crypto::SecureRandom workload(2);
  Result<LinkageAttackReport> report = RunLinkageAttack(
      *rig.engine, rig.trace, 2000, [&]() { return workload.UniformInt(128); });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->requests, 2000u);
  EXPECT_LE(report->correct, report->guesses);
  EXPECT_LE(report->guesses, report->requests);
  EXPECT_GE(report->coverage(), 0.0);
  EXPECT_LE(report->coverage(), 1.0);
}

TEST(LinkageAttackTest, AttackNeverReachesCertainty) {
  // Even the strongest linkage heuristic stays far from precision 1 on
  // a uniform workload: the c-approximate smearing works.
  Rig rig = Rig::Make(128, 16, 16, 3);
  crypto::SecureRandom workload(4);
  Result<LinkageAttackReport> report = RunLinkageAttack(
      *rig.engine, rig.trace, 4000,
      [&]() { return workload.UniformInt(128); });
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->guesses, 100u);  // The adversary does try.
  EXPECT_LT(report->precision(), 0.5);
}

TEST(LinkageAttackTest, LargerBlocksWeakenTheAttack) {
  // Larger k (stronger privacy / smaller c... relative to the same T
  // base) rewrites more locations per query, so the adversary's
  // write-time signal gets noisier: precision must not increase.
  double precision_small_k;
  double precision_large_k;
  {
    Rig rig = Rig::Make(256, 8, 8, 5);  // T = 32.
    crypto::SecureRandom workload(6);
    auto report = RunLinkageAttack(*rig.engine, rig.trace, 6000, [&]() {
      return workload.UniformInt(256);
    });
    ASSERT_TRUE(report.ok());
    precision_small_k = report->precision();
  }
  {
    Rig rig = Rig::Make(256, 8, 64, 7);  // T = 4.
    crypto::SecureRandom workload(8);
    auto report = RunLinkageAttack(*rig.engine, rig.trace, 6000, [&]() {
      return workload.UniformInt(256);
    });
    ASSERT_TRUE(report.ok());
    precision_large_k = report->precision();
  }
  EXPECT_LT(precision_large_k, precision_small_k);
}

TEST(LinkageAttackTest, RepeatHeavyWorkloadIsTheWorstCase) {
  // A client that re-requests the same page immediately gives the
  // adversary its best shot; precision should exceed the uniform case.
  double uniform_precision;
  double repeat_precision;
  {
    Rig rig = Rig::Make(128, 8, 8, 9);
    crypto::SecureRandom workload(10);
    auto report = RunLinkageAttack(*rig.engine, rig.trace, 4000, [&]() {
      return workload.UniformInt(128);
    });
    ASSERT_TRUE(report.ok());
    uniform_precision = report->precision();
  }
  {
    Rig rig = Rig::Make(128, 8, 8, 11);
    crypto::SecureRandom workload(12);
    // Ping-pong over two hot pages.
    uint64_t i = 0;
    auto report = RunLinkageAttack(*rig.engine, rig.trace, 4000, [&]() {
      return (i++ / 2) % 2;
    });
    ASSERT_TRUE(report.ok());
    repeat_precision = report->precision();
  }
  EXPECT_GT(repeat_precision, uniform_precision);
}

}  // namespace
}  // namespace shpir::analysis
