// Lint fixture: a suppression without a justification neither
// suppresses nor passes. Expected: one bad-suppression diagnostic AND
// the original secret-branch diagnostic.
#include "common/secret.h"

int Unjustified(shpir::common::Secret<int> key_secret) {
  int key = key_secret.ExposeSecret();
  // shpir-lint-allow-next-line(secret-branch)
  if (key > 0) {
    return 1;
  }
  return 0;
}
