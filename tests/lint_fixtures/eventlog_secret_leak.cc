// Lint fixture: a secret page id formatted into a structured event
// field. Event names and field values must be public aggregates
// (obs/eventlog.h); Emit is a registered call sink, so a tainted value
// flowing into it is exactly the leak the secret-log rule exists to
// catch. Expected: exactly one secret-log diagnostic (the Emit call).
#include <cstdint>

#include "common/secret.h"
#include "obs/eventlog.h"

void RecordQuery(shpir::obs::EventLog* log,
                 shpir::common::Secret<uint64_t> target_page) {
  uint64_t page = target_page.ExposeSecret();
  // BUG: the event field carries the target page id — the one value
  // the whole PIR construction is paid to hide.
  log->Emit(shpir::obs::EventLevel::kInfo, "query_served",
            {{"page_id", page}});
}
