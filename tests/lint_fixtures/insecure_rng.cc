// Lint fixture: a non-cryptographic RNG inside the trust boundary.
// Expected: exactly one insecure-rng diagnostic (the mt19937).
#include <random>

unsigned DrawSlot() {
  std::mt19937 generator(42);
  return generator();
}
