// Lint fixture: a keyword-client lookalike that logs the looked-up key
// on a miss. The key is the secret of the keyword front-end (the map is
// public; see docs/KEYWORD.md) — printing it hands the server exactly
// what the per-candidate PIR queries were paid to hide. Expected:
// exactly one secret-log diagnostic.
#include <cstdio>
#include <string>

#include "common/secret.h"

bool LookupOrLogMiss(shpir::common::Secret<std::string> keyword_query) {
  const std::string& keyword_text = keyword_query.ExposeSecret();
  // BUG: miss-path logging leaks the key to the (untrusted) operator.
  std::printf("keyword miss: %s\n", keyword_text.c_str());
  return false;
}
