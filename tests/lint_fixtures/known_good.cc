// Lint fixture: the approved patterns, all clean. Expected: zero
// diagnostics.
//
//  - Secret index into a container that is itself SHPIR_SECRET
//    (in-enclave secure memory) stays inside the boundary.
//  - Secret byte comparison through crypto::ConstantTimeEquals.
//  - A deliberate secret branch carrying an audited suppression with a
//    justification.
#include "common/secret.h"

namespace shpir {

bool ConstantTimeEquals(const unsigned char* a, const unsigned char* b,
                        unsigned long n);

SHPIR_SECRET extern int page_table[64];

int Lookup(common::Secret<int> index_secret) {
  int index = index_secret.ExposeSecret();
  return page_table[index];
}

bool Verify(const unsigned char* mac, const unsigned char* expected_mac) {
  return ConstantTimeEquals(mac, expected_mac, 16);
}

int Audited(common::Secret<int> key_secret) {
  int key = key_secret.ExposeSecret();
  // shpir-lint-allow-next-line(secret-branch): fixture for an audited in-enclave branch
  if (key > 0) {
    return 1;
  }
  return 0;
}

}  // namespace shpir
