// Lint fixture: a secret-dependent size reaching an allocator. The
// allocation size is observable to the host (paging, heap telemetry).
// Expected: exactly one secret-alloc diagnostic (the resize).
// Never compiled — only scanned by shpir_lint_test.
#include <vector>

#include "common/secret.h"

void Grow(std::vector<unsigned char>& buf,
          shpir::common::Secret<unsigned long> n_secret) {
  unsigned long n = n_secret.ExposeSecret();
  buf.resize(n);
}
