// Lint fixture: interprocedural secret-arg — the secret crosses TWO
// function calls before reaching the sink. Relay() has no sink of its
// own; its summary inherits Emit()'s, and the caller's call site is the
// finding. Expected: exactly one secret-arg diagnostic (the Relay call
// in Handle). Never compiled — only scanned by shpir_lint_test.
#include <cstdio>

#include "common/secret.h"

static void Emit(unsigned long v) { std::printf("v=%lu\n", v); }

static void Relay(unsigned long v) { Emit(v); }

void Handle(shpir::common::Secret<unsigned long> id_secret) {
  unsigned long id = id_secret.ExposeSecret();
  Relay(id);
}
