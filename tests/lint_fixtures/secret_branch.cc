// Lint fixture: branching on a secret-derived value. Expected: exactly
// one secret-branch diagnostic (the `if`). Never compiled — only
// scanned by shpir_lint_test.
#include "common/secret.h"

int CachePolicy(shpir::common::Secret<int> key_secret) {
  int key = key_secret.ExposeSecret();
  if (key > 4) {
    return 1;
  }
  return 0;
}
