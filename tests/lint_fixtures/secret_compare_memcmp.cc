// Lint fixture: the classic early-exit MAC check — memcmp over secret
// bytes. Expected: exactly one secret-compare diagnostic (on the
// memcmp; the == on its public int result is not reported separately).
#include <cstring>

#include "common/secret.h"

bool VerifyTag(const unsigned char* tag) {
  SHPIR_SECRET unsigned char expected_tag[16] = {0};
  return std::memcmp(tag, expected_tag, 16) == 0;
}
