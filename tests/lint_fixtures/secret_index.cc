// Lint fixture: secret-dependent array subscript into a non-secret
// container (the address bus leaks the index). Expected: exactly one
// secret-index diagnostic.
#include "common/secret.h"

extern int lookup_table[64];

int Leaky(shpir::common::Secret<int> index_secret) {
  int index = index_secret.ExposeSecret();
  return lookup_table[index];
}
