// Lint fixture: a secret value reaching a logging sink. Expected:
// exactly one secret-log diagnostic (the printf).
#include <cstdio>

#include "common/secret.h"

void ServePage(shpir::common::Secret<unsigned> page_secret) {
  unsigned page = page_secret.ExposeSecret();
  std::printf("serving page %u\n", page);
}
