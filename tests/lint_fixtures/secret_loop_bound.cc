// Lint fixture: a loop whose iteration count depends on secret data.
// Expected: exactly one secret-loop-bound diagnostic (the `for` bound).
// Never compiled — only scanned by shpir_lint_test.
#include "common/secret.h"

int SumRun(shpir::common::Secret<unsigned> count_secret) {
  unsigned count = count_secret.ExposeSecret();
  int total = 0;
  for (unsigned i = 0; i < count; ++i) {
    total += 1;
  }
  return total;
}
