// Lint fixture: a secret value serialized onto the wire unsealed.
// Expected: exactly one secret-wire diagnostic (the WriteU64).
// Never compiled — only scanned by shpir_lint_test.
#include "common/secret.h"

struct Writer {
  void WriteU64(unsigned long v);
};

void EncodeRequest(Writer& w, shpir::common::Secret<unsigned long> s) {
  unsigned long location = s.ExposeSecret();
  w.WriteU64(location);
}
