// Lint fixture (pair with tu_boundary_caller.cc): the SINK half of a
// cross-translation-unit flow. LogSlot's body lives here; the secret
// that reaches it is exposed in the other file. Scanned together, the
// pair must produce exactly one secret-arg diagnostic — in the CALLER
// file. Alone, this file is clean (the parameter is not secret here).
// Never compiled — only scanned by shpir_lint_test.
#include <cstdio>

void LogSlot(unsigned long slot) { std::printf("slot=%lu\n", slot); }
