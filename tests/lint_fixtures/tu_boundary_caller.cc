// Lint fixture (pair with tu_boundary_callee.cc): the SOURCE half of a
// cross-translation-unit flow. The secret is exposed here and passed to
// LogSlot, whose printf sink lives in the other file; the whole-program
// summary pass must carry the sink across the TU boundary. Expected
// (when scanned with its pair): exactly one secret-arg diagnostic, on
// the LogSlot call below. Never compiled — only scanned by
// shpir_lint_test.
#include "common/secret.h"

void LogSlot(unsigned long slot);

void Audit(shpir::common::Secret<unsigned long> slot_secret) {
  unsigned long slot = slot_secret.ExposeSecret();
  LogSlot(slot);
}
