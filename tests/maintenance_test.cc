#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "core/thread_safe_engine.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::core {
namespace {

using storage::Page;
using storage::PageId;

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

Bytes PayloadFor(PageId id) {
  return Bytes(kPageSize, static_cast<uint8_t>(id * 7 + 1));
}

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<CApproxPir> engine;

  static Rig Make(uint64_t seed, uint64_t reserve = 8) {
    CApproxPir::Options options;
    options.num_pages = 60;
    options.page_size = kPageSize;
    options.cache_pages = 8;
    options.block_size = 8;
    options.insert_reserve = reserve;
    Rig rig;
    Result<uint64_t> slots = CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.disk.get(), kPageSize,
        seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto engine = CApproxPir::Create(rig.cpu.get(), options);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    std::vector<Page> pages;
    for (PageId id = 0; id < 60; ++id) {
      pages.emplace_back(id, PayloadFor(id));
    }
    SHPIR_CHECK_OK(rig.engine->Initialize(pages));
    return rig;
  }
};

TEST(OfflineReshuffleTest, PreservesLivePages) {
  Rig rig = Rig::Make(1);
  crypto::SecureRandom rng(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(rng.UniformInt(60)).ok());
  }
  ASSERT_TRUE(rig.engine->OfflineReshuffle().ok());
  for (PageId id = 0; id < 60; ++id) {
    ASSERT_EQ(*rig.engine->Retrieve(id), PayloadFor(id)) << id;
  }
}

TEST(OfflineReshuffleTest, DestroysDeadContentAndKeepsSparesUsable) {
  Rig rig = Rig::Make(3);
  ASSERT_TRUE(rig.engine->Remove(5).ok());
  ASSERT_TRUE(rig.engine->Remove(6).ok());
  ASSERT_TRUE(rig.engine->OfflineReshuffle().ok());
  EXPECT_FALSE(rig.engine->Retrieve(5).ok());
  // The purged slots can still back future inserts.
  Result<PageId> id = rig.engine->Insert(PayloadFor(99));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*rig.engine->Retrieve(*id), PayloadFor(99));
  // Other pages intact.
  EXPECT_EQ(*rig.engine->Retrieve(7), PayloadFor(7));
}

TEST(OfflineReshuffleTest, MovesPages) {
  Rig rig = Rig::Make(4);
  // Record locations of all uncached pages, reshuffle, compare.
  std::vector<std::pair<PageId, storage::Location>> before;
  for (PageId id = 0; id < 60; ++id) {
    if (!rig.engine->DebugIsCached(id)) {
      before.emplace_back(id, *rig.engine->DebugLocation(id));
    }
  }
  ASSERT_TRUE(rig.engine->OfflineReshuffle().ok());
  int moved = 0;
  for (const auto& [id, loc] : before) {
    if (rig.engine->DebugIsCached(id) ||
        *rig.engine->DebugLocation(id) != loc) {
      ++moved;
    }
  }
  // A fresh uniform permutation leaves pages in place with prob ~1/n.
  EXPECT_GT(moved, static_cast<int>(before.size() * 9 / 10));
}

TEST(OfflineReshuffleTest, ResetsScanCursor) {
  Rig rig = Rig::Make(5);
  ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  ASSERT_TRUE(rig.engine->Retrieve(1).ok());
  ASSERT_TRUE(rig.engine->OfflineReshuffle().ok());
  // Next query scans block 0 again: check via cost/trace-free proxy —
  // the engine still answers correctly for a full scan period.
  for (uint64_t i = 0; i < rig.engine->scan_period() + 1; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(i % 60).ok());
  }
}

TEST(KeyRotationTest, PagesSurviveRotation) {
  Rig rig = Rig::Make(10);
  crypto::SecureRandom rng(11);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(rng.UniformInt(60)).ok());
  }
  ASSERT_TRUE(rig.engine->RotateKeys().ok());
  for (PageId id = 0; id < 60; ++id) {
    ASSERT_EQ(*rig.engine->Retrieve(id), PayloadFor(id)) << id;
  }
}

TEST(KeyRotationTest, OldCiphertextsUnreadableAfterRotation) {
  Rig rig = Rig::Make(12);
  // Keep a pre-rotation sealed slot.
  Bytes old_slot(kSealedSize);
  ASSERT_TRUE(rig.disk->Read(0, old_slot).ok());
  ASSERT_TRUE(rig.engine->RotateKeys().ok());
  // The retained old ciphertext no longer verifies under the new keys.
  Result<Page> opened = rig.cpu->OpenPage(old_slot);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(KeyRotationTest, RotationChangesAllCiphertexts) {
  Rig rig = Rig::Make(13);
  std::vector<Bytes> before(rig.disk->num_slots(), Bytes(kSealedSize));
  for (uint64_t i = 0; i < rig.disk->num_slots(); ++i) {
    ASSERT_TRUE(rig.disk->Read(i, before[i]).ok());
  }
  ASSERT_TRUE(rig.engine->RotateKeys().ok());
  for (uint64_t i = 0; i < rig.disk->num_slots(); ++i) {
    Bytes after(kSealedSize);
    ASSERT_TRUE(rig.disk->Read(i, after).ok());
    EXPECT_NE(after, before[i]) << "slot " << i;
  }
}

TEST(KeyRotationTest, UpdatesComposeWithRotation) {
  Rig rig = Rig::Make(14);
  ASSERT_TRUE(rig.engine->Modify(3, PayloadFor(300)).ok());
  ASSERT_TRUE(rig.engine->RotateKeys().ok());
  EXPECT_EQ(*rig.engine->Retrieve(3), PayloadFor(300));
  ASSERT_TRUE(rig.engine->Remove(4).ok());
  ASSERT_TRUE(rig.engine->RotateKeys().ok());
  EXPECT_FALSE(rig.engine->Retrieve(4).ok());
}

TEST(ThreadSafeEngineTest, ConcurrentRetrievesStayCorrect) {
  Rig rig = Rig::Make(6);
  ThreadSafeEngine safe(rig.engine.get());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      crypto::SecureRandom rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const PageId id = rng.UniformInt(60);
        Result<Bytes> data = safe.Retrieve(id);
        if (!data.ok() || *data != PayloadFor(id)) {
          failures[t]++;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  EXPECT_EQ(rig.engine->stats().queries,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(ThreadSafeEngineTest, ForwardsMetadata) {
  Rig rig = Rig::Make(7);
  ThreadSafeEngine safe(rig.engine.get());
  EXPECT_EQ(safe.num_pages(), rig.engine->num_pages());
  EXPECT_EQ(safe.page_size(), rig.engine->page_size());
  EXPECT_STREQ(safe.name(), rig.engine->name());
}

}  // namespace
}  // namespace shpir::core
