#include "storage/metered_disk.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/disk.h"

namespace shpir::storage {
namespace {

constexpr size_t kSlotSize = 16;

struct Rig {
  MemoryDisk inner{32, kSlotSize};
  obs::MetricsRegistry registry;
  MeteredDisk disk{&inner, &registry};

  uint64_t Counter(const std::string& name) {
    for (const auto& counter : registry.Snapshot().counters) {
      if (counter.name == name) {
        return counter.value;
      }
    }
    return 0;
  }
};

TEST(MeteredDiskTest, ForwardsGeometryAndData) {
  Rig rig;
  EXPECT_EQ(rig.disk.num_slots(), 32u);
  EXPECT_EQ(rig.disk.slot_size(), kSlotSize);
  const Bytes payload(kSlotSize, 0xAB);
  ASSERT_TRUE(rig.disk.Write(5, payload).ok());
  Bytes out(kSlotSize);
  ASSERT_TRUE(rig.disk.Read(5, out).ok());
  EXPECT_EQ(out, payload);
  // The decorator writes through: the inner disk holds the data.
  Bytes inner_out(kSlotSize);
  ASSERT_TRUE(
      rig.inner.Read(5, inner_out)
          .ok());
  EXPECT_EQ(inner_out, payload);
}

TEST(MeteredDiskTest, CountsOperationsAndBytes) {
  Rig rig;
  const Bytes payload(kSlotSize, 1);
  Bytes out(kSlotSize);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.disk.Write(i, payload).ok());
  }
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        rig.disk.Read(i, out).ok());
  }
  EXPECT_EQ(rig.Counter("shpir_disk_writes_total"), 3u);
  EXPECT_EQ(rig.Counter("shpir_disk_reads_total"), 5u);
  EXPECT_EQ(rig.Counter("shpir_disk_write_bytes_total"), 3u * kSlotSize);
  EXPECT_EQ(rig.Counter("shpir_disk_read_bytes_total"), 5u * kSlotSize);
}

TEST(MeteredDiskTest, FirstAccessCountsAsSeek) {
  // The head starts at an unknown position (UINT64_MAX sentinel), so
  // even an access to slot 0 is discontiguous.
  Rig rig;
  Bytes out(kSlotSize);
  ASSERT_TRUE(rig.disk.Read(0, out).ok());
  EXPECT_EQ(rig.Counter("shpir_disk_seeks_total"), 1u);
}

TEST(MeteredDiskTest, SequentialRunsCostOneSeek) {
  Rig rig;
  Bytes out(kSlotSize);
  // 4, 5, 6: one repositioning, then the head stays on track — exactly
  // how the paper's cost model charges t_s once per discontiguity.
  for (uint64_t i = 4; i < 7; ++i) {
    ASSERT_TRUE(
        rig.disk.Read(i, out).ok());
  }
  EXPECT_EQ(rig.Counter("shpir_disk_seeks_total"), 1u);
  // Jump backwards: one more seek.
  ASSERT_TRUE(rig.disk.Read(0, out).ok());
  EXPECT_EQ(rig.Counter("shpir_disk_seeks_total"), 2u);
  // Mixed op types continue the run: a write at slot 1 follows the
  // read at slot 0 sequentially.
  ASSERT_TRUE(rig.disk.Write(1, Bytes(kSlotSize, 2)).ok());
  EXPECT_EQ(rig.Counter("shpir_disk_seeks_total"), 2u);
}

TEST(MeteredDiskTest, RunsAccountAsSingleAccess) {
  Rig rig;
  std::vector<Bytes> slots(4, Bytes(kSlotSize, 7));
  ASSERT_TRUE(rig.disk.WriteRun(8, slots).ok());
  EXPECT_EQ(rig.Counter("shpir_disk_writes_total"), 4u);
  EXPECT_EQ(rig.Counter("shpir_disk_write_bytes_total"), 4u * kSlotSize);
  EXPECT_EQ(rig.Counter("shpir_disk_seeks_total"), 1u);
  std::vector<Bytes> out;
  // Continues right after the run: no new seek.
  ASSERT_TRUE(rig.disk.ReadRun(12, 3, out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Bytes(kSlotSize));  // Untouched slot reads zeros.
  EXPECT_EQ(rig.Counter("shpir_disk_reads_total"), 3u);
  EXPECT_EQ(rig.Counter("shpir_disk_seeks_total"), 1u);
  // A run that starts elsewhere seeks once, regardless of length.
  ASSERT_TRUE(rig.disk.ReadRun(0, 8, out).ok());
  EXPECT_EQ(rig.Counter("shpir_disk_seeks_total"), 2u);
}

TEST(MeteredDiskTest, PropagatesInnerErrors) {
  Rig rig;
  Bytes out(kSlotSize);
  EXPECT_FALSE(
      rig.disk.Read(99, out).ok());
  Bytes wrong_size(kSlotSize - 1, 0);
  EXPECT_FALSE(rig.disk.Write(0, wrong_size).ok());
}

}  // namespace
}  // namespace shpir::storage
