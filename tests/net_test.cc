#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "net/remote_disk.h"
#include "net/storage_server.h"
#include "net/wire.h"
#include "storage/disk.h"

namespace shpir::net {
namespace {

TEST(WireTest, RequestRoundTrip) {
  Request request;
  request.op = Op::kWriteRun;
  request.location = 42;
  request.count = 3;
  request.payload = {1, 2, 3, 4};
  Result<Request> back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, Op::kWriteRun);
  EXPECT_EQ(back->location, 42u);
  EXPECT_EQ(back->count, 3u);
  EXPECT_EQ(back->payload, (Bytes{1, 2, 3, 4}));
}

TEST(WireTest, RejectsMalformedFrames) {
  EXPECT_FALSE(DecodeRequest(Bytes{1, 2}).ok());
  Bytes unknown(17, 0);
  unknown[0] = 99;
  EXPECT_FALSE(DecodeRequest(unknown).ok());
  EXPECT_FALSE(DecodeResponse(Bytes{}).ok());
}

TEST(WireTest, ResponseRoundTrip) {
  Result<Bytes> ok = DecodeResponse(EncodeOkResponse(Bytes{5, 6}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, (Bytes{5, 6}));
  Result<Bytes> err =
      DecodeResponse(EncodeErrorResponse(NotFoundError("gone")));
  EXPECT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("gone"), std::string::npos);
}

TEST(WireTest, ControlRequestRoundTrip) {
  ControlRequest request;
  request.verb = ControlVerb::kSetBounds;
  request.k_min = 32;
  request.k_max = 128;
  Result<ControlRequest> back =
      DecodeControlRequest(EncodeControlRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->verb, ControlVerb::kSetBounds);
  EXPECT_EQ(back->k_min, 32u);
  EXPECT_EQ(back->k_max, 128u);
  for (ControlVerb verb : {ControlVerb::kStatus, ControlVerb::kFreeze,
                           ControlVerb::kUnfreeze}) {
    ControlRequest probe;
    probe.verb = verb;
    Result<ControlRequest> echoed =
        DecodeControlRequest(EncodeControlRequest(probe));
    ASSERT_TRUE(echoed.ok());
    EXPECT_EQ(echoed->verb, verb);
  }
}

TEST(WireTest, ControlRequestRejectsMalformedPayloads) {
  const Bytes good = EncodeControlRequest(ControlRequest{});
  ASSERT_EQ(good.size(), 18u);

  Bytes truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(DecodeControlRequest(truncated).ok());
  Bytes oversize = good;
  oversize.push_back(0);
  EXPECT_FALSE(DecodeControlRequest(oversize).ok());

  Bytes future_version = good;
  future_version[0] = kControlRequestVersion + 1;
  EXPECT_FALSE(DecodeControlRequest(future_version).ok());

  Bytes unknown_verb = good;
  unknown_verb[1] = 99;
  EXPECT_FALSE(DecodeControlRequest(unknown_verb).ok());
}

TEST(StorageControlTest, ControlOpRoutesVerbsToTheProvider) {
  storage::MemoryDisk disk(4, 8);
  StorageServer server(&disk);

  Request request;
  request.op = Op::kControlStatus;
  request.payload = EncodeControlRequest(ControlRequest{});

  // Until a provider is attached the op answers Unimplemented.
  Result<Bytes> unattached =
      DecodeResponse(server.Handle(EncodeRequest(request)));
  EXPECT_FALSE(unattached.ok());
  EXPECT_NE(unattached.status().message().find("no privacy/cost controller"),
            std::string::npos);

  std::vector<ControlRequest> seen;
  server.SetControlProvider(
      [&seen](const ControlRequest& verb) -> Result<std::string> {
        seen.push_back(verb);
        if (verb.verb == ControlVerb::kSetBounds && verb.k_min > verb.k_max) {
          return InvalidArgumentError("no feasible block size");
        }
        return std::string("{\"frozen\":false}");
      });

  Result<Bytes> status = DecodeResponse(server.Handle(EncodeRequest(request)));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(std::string(status->begin(), status->end()),
            "{\"frozen\":false}");

  ControlRequest bounds;
  bounds.verb = ControlVerb::kSetBounds;
  bounds.k_min = 16;
  bounds.k_max = 64;
  request.payload = EncodeControlRequest(bounds);
  ASSERT_TRUE(DecodeResponse(server.Handle(EncodeRequest(request))).ok());

  // A provider rejection surfaces as the wire error, verbatim.
  bounds.k_min = 64;
  bounds.k_max = 16;
  request.payload = EncodeControlRequest(bounds);
  Result<Bytes> rejected =
      DecodeResponse(server.Handle(EncodeRequest(request)));
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("no feasible block size"),
            std::string::npos);

  // A malformed payload is rejected before the provider ever runs.
  request.payload = Bytes{1, 2, 3};
  EXPECT_FALSE(DecodeResponse(server.Handle(EncodeRequest(request))).ok());

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].verb, ControlVerb::kStatus);
  EXPECT_EQ(seen[1].verb, ControlVerb::kSetBounds);
  EXPECT_EQ(seen[1].k_min, 16u);
  EXPECT_EQ(seen[1].k_max, 64u);
  EXPECT_EQ(seen[2].verb, ControlVerb::kSetBounds);
}

TEST(RemoteDiskTest, GeometryAndBasicIo) {
  storage::MemoryDisk disk(16, 32);
  StorageServer server(&disk);
  DirectTransport transport(&server);
  Result<std::unique_ptr<RemoteDisk>> remote = RemoteDisk::Connect(&transport);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ((*remote)->num_slots(), 16u);
  EXPECT_EQ((*remote)->slot_size(), 32u);

  Bytes data(32, 0x7a);
  ASSERT_TRUE((*remote)->Write(5, data).ok());
  Bytes out(32);
  ASSERT_TRUE((*remote)->Read(5, out).ok());
  EXPECT_EQ(out, data);
  // Verify it actually landed on the provider's disk.
  Bytes direct(32);
  ASSERT_TRUE(disk.Read(5, direct).ok());
  EXPECT_EQ(direct, data);
}

TEST(RemoteDiskTest, RunsAreBatchedIntoOneRoundTrip) {
  storage::MemoryDisk disk(16, 8);
  StorageServer server(&disk);
  DirectTransport transport(&server);
  Result<std::unique_ptr<RemoteDisk>> remote = RemoteDisk::Connect(&transport);
  ASSERT_TRUE(remote.ok());
  hardware::CostAccountant cost;
  (*remote)->set_accountant(&cost);

  std::vector<Bytes> slots(4, Bytes(8, 0x11));
  ASSERT_TRUE((*remote)->WriteRun(2, slots).ok());
  EXPECT_EQ(cost.counters().network_round_trips, 1u);
  std::vector<Bytes> out;
  ASSERT_TRUE((*remote)->ReadRun(2, 4, out).ok());
  EXPECT_EQ(cost.counters().network_round_trips, 2u);
  EXPECT_EQ(out, slots);
  // Bytes include sealed payloads both directions.
  EXPECT_GT(cost.counters().network_bytes, 2u * 4u * 8u);
}

TEST(RemoteDiskTest, RemoteErrorsPropagate) {
  storage::MemoryDisk disk(4, 8);
  StorageServer server(&disk);
  DirectTransport transport(&server);
  Result<std::unique_ptr<RemoteDisk>> remote = RemoteDisk::Connect(&transport);
  ASSERT_TRUE(remote.ok());
  Bytes out(8);
  EXPECT_FALSE((*remote)->Read(4, out).ok());  // Out of range remotely.
  std::vector<Bytes> slots(2, Bytes(7, 0));    // Wrong slot size.
  EXPECT_FALSE((*remote)->WriteRun(0, slots).ok());
}

TEST(TwoPartyTest, FullPirStackOverTheWire) {
  // The paper's two-party model: owner-side coprocessor + engine over a
  // RemoteDisk; provider sees only sealed pages.
  constexpr size_t kPageSize = 24;
  constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
  core::CApproxPir::Options options;
  options.num_pages = 40;
  options.page_size = kPageSize;
  options.cache_pages = 6;
  options.block_size = 5;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());

  storage::MemoryDisk provider_disk(*slots, kSealedSize);
  StorageServer server(&provider_disk);
  DirectTransport transport(&server);
  Result<std::unique_ptr<RemoteDisk>> remote = RemoteDisk::Connect(&transport);
  ASSERT_TRUE(remote.ok());

  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(
          hardware::HardwareProfile::TwoPartyOwner(64 * hardware::kMB),
          remote->get(), kPageSize, 9);
  ASSERT_TRUE(cpu.ok());
  (*remote)->set_accountant(&(*cpu)->cost());

  Result<std::unique_ptr<core::CApproxPir>> engine =
      core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  std::vector<storage::Page> pages;
  for (uint64_t id = 0; id < 40; ++id) {
    pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id)));
  }
  ASSERT_TRUE((*engine)->Initialize(pages).ok());

  crypto::SecureRandom rng(10);
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = rng.UniformInt(40);
    Result<Bytes> data = (*engine)->Retrieve(id);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, Bytes(kPageSize, static_cast<uint8_t>(id)));
  }
  // Network counters recorded: 3 round trips per query (block read,
  // extra read + write are single-slot ops... block read, extra read,
  // block write, extra write = 4).
  const auto& counters = (*cpu)->cost().counters();
  EXPECT_GT(counters.network_round_trips, 0u);
  EXPECT_GT(counters.network_bytes, 0u);
  // Simulated time includes the RTT term.
  const double seconds = (*cpu)->ElapsedSeconds();
  EXPECT_GT(seconds, 100 * 4 * 0.050);
}

TEST(TwoPartyTest, PerQueryNetworkCostIsConstant) {
  constexpr size_t kPageSize = 24;
  constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
  core::CApproxPir::Options options;
  options.num_pages = 30;
  options.page_size = kPageSize;
  options.cache_pages = 4;
  options.block_size = 6;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk provider_disk(*slots, kSealedSize);
  StorageServer server(&provider_disk);
  DirectTransport transport(&server);
  Result<std::unique_ptr<RemoteDisk>> remote = RemoteDisk::Connect(&transport);
  ASSERT_TRUE(remote.ok());
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(
          hardware::HardwareProfile::TwoPartyOwner(64 * hardware::kMB),
          remote->get(), kPageSize, 11);
  ASSERT_TRUE(cpu.ok());
  (*remote)->set_accountant(&(*cpu)->cost());
  Result<std::unique_ptr<core::CApproxPir>> engine =
      core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());

  crypto::SecureRandom rng(12);
  auto prev = (*cpu)->cost().Snapshot();
  uint64_t first_rtts = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*engine)->Retrieve(rng.UniformInt(30)).ok());
    const auto delta = (*cpu)->cost().Snapshot() - prev;
    prev = (*cpu)->cost().Snapshot();
    if (i == 0) {
      first_rtts = delta.network_round_trips;
    }
    EXPECT_EQ(delta.network_round_trips, first_rtts) << i;
    EXPECT_EQ(delta.network_round_trips, 4u) << i;
  }
}

}  // namespace
}  // namespace shpir::net
