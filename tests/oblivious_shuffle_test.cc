#include "core/oblivious_shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "crypto/permutation.h"
#include "crypto/secure_random.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace shpir::core {
namespace {

// Applies the Batcher network to an int array.
std::vector<int> SortWithNetwork(std::vector<int> values) {
  BatcherNetwork(values.size(), [&](uint64_t i, uint64_t j) {
    if (values[i] > values[j]) {
      std::swap(values[i], values[j]);
    }
  });
  return values;
}

TEST(BatcherNetworkTest, SortsAllSmallSizes) {
  crypto::SecureRandom rng(11);
  for (uint64_t n = 0; n <= 130; ++n) {
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<int> values(n);
      for (auto& v : values) {
        v = static_cast<int>(rng.UniformInt(50));
      }
      std::vector<int> expected = values;
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(SortWithNetwork(values), expected)
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(BatcherNetworkTest, SortsLargerRandomArrays) {
  crypto::SecureRandom rng(12);
  for (uint64_t n : {1000u, 4096u, 5000u}) {
    std::vector<int> values(n);
    for (auto& v : values) {
      v = static_cast<int>(rng.UniformInt(1u << 30));
    }
    std::vector<int> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(SortWithNetwork(values), expected) << "n=" << n;
  }
}

TEST(BatcherNetworkTest, SortsAdversarialPatterns) {
  for (uint64_t n : {7u, 31u, 33u, 100u}) {
    std::vector<int> descending(n);
    std::iota(descending.rbegin(), descending.rend(), 0);
    std::vector<int> expected = descending;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(SortWithNetwork(descending), expected);

    std::vector<int> equal(n, 42);
    EXPECT_EQ(SortWithNetwork(equal), equal);
  }
}

TEST(BatcherNetworkTest, NetworkDependsOnlyOnSize) {
  // The pair sequence must be a function of n alone (data-obliviousness).
  auto pairs_of = [](uint64_t n) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    BatcherNetwork(n, [&](uint64_t i, uint64_t j) {
      pairs.emplace_back(i, j);
    });
    return pairs;
  };
  for (uint64_t n : {2u, 17u, 64u, 100u}) {
    EXPECT_EQ(pairs_of(n), pairs_of(n)) << n;
  }
}

TEST(BatcherNetworkTest, PairsAreInBoundsAndOrdered) {
  for (uint64_t n : {2u, 3u, 63u, 64u, 65u}) {
    BatcherNetwork(n, [&](uint64_t i, uint64_t j) {
      EXPECT_LT(i, j);
      EXPECT_LT(j, n);
    });
  }
}

class ObliviousShuffleTest : public ::testing::Test {
 protected:
  static constexpr size_t kPageSize = 16;
  static constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

  // Builds a coprocessor over `n` slots, loading page id i into slot i.
  void Setup(uint64_t n, uint64_t seed) {
    disk_ = std::make_unique<storage::MemoryDisk>(n, kSealedSize);
    tracing_ = std::make_unique<storage::TracingDisk>(disk_.get(), &trace_);
    trace_.BeginRequest();
    Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
        hardware::SecureCoprocessor::Create(hardware::HardwareProfile(),
                                            tracing_.get(), kPageSize, seed);
    SHPIR_CHECK(cpu.ok());
    cpu_ = std::move(cpu).value();
    for (uint64_t i = 0; i < n; ++i) {
      storage::Page page(i, Bytes(kPageSize, static_cast<uint8_t>(i)));
      Result<Bytes> sealed = cpu_->SealPage(page);
      SHPIR_CHECK(sealed.ok());
      SHPIR_CHECK_OK(cpu_->WriteSlot(i, *sealed));
    }
    trace_.Clear();
    trace_.BeginRequest();
  }

  // Reads the page id stored at each slot.
  std::vector<uint64_t> SlotIds(uint64_t n) {
    std::vector<uint64_t> ids(n);
    for (uint64_t i = 0; i < n; ++i) {
      Result<Bytes> sealed = cpu_->ReadSlot(i);
      SHPIR_CHECK(sealed.ok());
      Result<storage::Page> page = cpu_->OpenPage(*sealed);
      SHPIR_CHECK(page.ok());
      ids[i] = page->id;
    }
    return ids;
  }

  storage::AccessTrace trace_;
  std::unique_ptr<storage::MemoryDisk> disk_;
  std::unique_ptr<storage::TracingDisk> tracing_;
  std::unique_ptr<hardware::SecureCoprocessor> cpu_;
};

TEST_F(ObliviousShuffleTest, ProducesReportedPermutation) {
  constexpr uint64_t kN = 37;
  Setup(kN, 5);
  Result<std::vector<uint64_t>> perm = ObliviousShuffle(*cpu_, kN);
  ASSERT_TRUE(perm.ok()) << perm.status();
  ASSERT_TRUE(crypto::IsPermutation(*perm));
  const std::vector<uint64_t> ids = SlotIds(kN);
  // Page originally in slot i (id i) must now be at slot (*perm)[i].
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(ids[(*perm)[i]], i) << i;
  }
}

TEST_F(ObliviousShuffleTest, PreservesAllPages) {
  constexpr uint64_t kN = 64;
  Setup(kN, 6);
  ASSERT_TRUE(ObliviousShuffle(*cpu_, kN).ok());
  std::vector<uint64_t> ids = SlotIds(kN);
  std::sort(ids.begin(), ids.end());
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(ids[i], i);
  }
}

TEST_F(ObliviousShuffleTest, AccessPatternIndependentOfPermutation) {
  // Two devices with different RNG seeds (hence different permutations)
  // must produce byte-for-byte identical access traces.
  constexpr uint64_t kN = 33;
  Setup(kN, 100);
  ASSERT_TRUE(ObliviousShuffle(*cpu_, kN).ok());
  const std::vector<storage::AccessEvent> trace_a = trace_.events();

  Setup(kN, 200);
  ASSERT_TRUE(ObliviousShuffle(*cpu_, kN).ok());
  const std::vector<storage::AccessEvent> trace_b = trace_.events();

  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(trace_a.empty());
}

TEST_F(ObliviousShuffleTest, DifferentSeedsGiveDifferentPermutations) {
  constexpr uint64_t kN = 40;
  Setup(kN, 1);
  Result<std::vector<uint64_t>> a = ObliviousShuffle(*cpu_, kN);
  Setup(kN, 2);
  Result<std::vector<uint64_t>> b = ObliviousShuffle(*cpu_, kN);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST_F(ObliviousShuffleTest, RejectsOversizedRange) {
  Setup(8, 3);
  EXPECT_FALSE(ObliviousShuffle(*cpu_, 9).ok());
}

TEST_F(ObliviousShuffleTest, UniformOverSmallDomain) {
  // n = 3: all 6 permutations should occur with roughly equal frequency.
  std::map<std::vector<uint64_t>, int> counts;
  constexpr int kTrials = 600;
  for (int t = 0; t < kTrials; ++t) {
    Setup(3, 1000 + static_cast<uint64_t>(t));
    Result<std::vector<uint64_t>> perm = ObliviousShuffle(*cpu_, 3);
    ASSERT_TRUE(perm.ok());
    counts[*perm]++;
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_GT(count, 60);
    EXPECT_LT(count, 140);
  }
}

}  // namespace
}  // namespace shpir::core
