#include "obs/export.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace shpir::obs {
namespace {

// --- Label-value escaping: the full escape set the Prometheus /
// --- OpenMetrics exposition formats define.

TEST(PrometheusEscaping, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(EscapePrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(EscapePrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapePrometheusLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapePrometheusLabelValue("line1\nline2"), "line1\\nline2");
  // A hostile compiler string exercising all three at once.
  EXPECT_EQ(EscapePrometheusLabelValue("g++ -D'X=\"a\\b\n\"'"),
            "g++ -D'X=\\\"a\\\\b\\n\\\"'");
  EXPECT_EQ(EscapePrometheusLabelValue(""), "");
}

TEST(PrometheusEscaping, LeavesOtherControlAndUnicodeBytesAlone) {
  // The exposition format only defines the three escapes; everything
  // else passes through byte-for-byte (UTF-8 label values are legal).
  EXPECT_EQ(EscapePrometheusLabelValue("tab\there"), "tab\there");
  EXPECT_EQ(EscapePrometheusLabelValue("\xc3\xa9"), "\xc3\xa9");
}

// --- Info metrics: value-1 gauges with escaped labels in both formats.

TEST(InfoExport, PrometheusRendersInfoAsValueOneGaugeWithLabels) {
  MetricsSnapshot snapshot;
  SnapshotInfo info;
  info.name = "shpir_build_info";
  info.labels = {{"version", "0.8.0"}, {"compiler", "g++ \"13\"\n"}};
  snapshot.infos.push_back(info);
  const std::string text = ToPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE shpir_build_info gauge\n"), std::string::npos)
      << text;
  EXPECT_NE(
      text.find("shpir_build_info{version=\"0.8.0\","
                "compiler=\"g++ \\\"13\\\"\\n\"} 1\n"),
      std::string::npos)
      << text;
}

TEST(InfoExport, BuildInfoPublishesOntoRegistryAndBothExporters) {
  MetricsRegistry registry;
  PublishBuildInfo(&registry);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.infos.size(), 1u);
  EXPECT_EQ(snapshot.infos[0].name, "shpir_build_info");
  bool has_version = false;
  bool has_sha = false;
  for (const auto& [key, value] : snapshot.infos[0].labels) {
    has_version |= key == "version" && !value.empty();
    has_sha |= key == "git_sha" && !value.empty();
  }
  EXPECT_TRUE(has_version);
  EXPECT_TRUE(has_sha);

  EXPECT_NE(ToPrometheusText(snapshot).find("shpir_build_info{"),
            std::string::npos);
  EXPECT_NE(ToJson(snapshot).find("\"name\":\"shpir_build_info\""),
            std::string::npos);
  // And the human one-liner has the same identity.
  EXPECT_EQ(BuildInfoSummary().rfind("shpir ", 0), 0u);
}

// --- Exemplars: OpenMetrics syntax on the _count sample, JSON key only
// --- when present, and lossless round-trip through the parser.

MetricsSnapshot SnapshotWithExemplar() {
  MetricsSnapshot snapshot;
  SnapshotHistogram h;
  h.name = "shpir_fanout_latency_ns";
  h.count = 3;
  h.sum = 600;
  h.min = 100;
  h.max = 400;
  h.p50 = 150;
  h.p95 = 390;
  h.p99 = 399;
  h.exemplars.push_back({/*value=*/120, /*trace_id=*/0xabcULL,
                         /*ts_ns=*/1500000000ULL});
  h.exemplars.push_back({/*value=*/400, /*trace_id=*/0xdeadbeefULL,
                         /*ts_ns=*/2750000000ULL});
  snapshot.histograms.push_back(std::move(h));
  return snapshot;
}

TEST(ExemplarExport, OpenMetricsSyntaxRidesTheCountSample) {
  const std::string text = ToPrometheusText(SnapshotWithExemplar());
  // The highest-value exemplar is attached; timestamp is in seconds.
  EXPECT_NE(text.find("shpir_fanout_latency_ns_count 3 "
                      "# {trace_id=\"00000000deadbeef\"} 400 2.750\n"),
            std::string::npos)
      << text;
}

TEST(ExemplarExport, NoExemplarsMeansPlainCountSample) {
  MetricsSnapshot snapshot = SnapshotWithExemplar();
  snapshot.histograms[0].exemplars.clear();
  const std::string text = ToPrometheusText(snapshot);
  EXPECT_NE(text.find("shpir_fanout_latency_ns_count 3\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find(" # {"), std::string::npos);
}

TEST(ExemplarExport, JsonRoundTripsExemplarsThroughTheParser) {
  const std::string json = ToJson(SnapshotWithExemplar());
  EXPECT_NE(json.find("\"exemplars\":[{\"value\":120,"
                      "\"trace_id\":\"0000000000000abc\","
                      "\"ts_ns\":1500000000}"),
            std::string::npos)
      << json;

  const Result<MetricsSnapshot> parsed = ParseJsonSnapshot(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->histograms.size(), 1u);
  const SnapshotHistogram& h = parsed->histograms[0];
  ASSERT_EQ(h.exemplars.size(), 2u);
  EXPECT_EQ(h.exemplars[0].value, 120u);
  EXPECT_EQ(h.exemplars[0].trace_id, 0xabcULL);
  EXPECT_EQ(h.exemplars[0].ts_ns, 1500000000ULL);
  EXPECT_EQ(h.exemplars[1].trace_id, 0xdeadbeefULL);
}

TEST(ExemplarExport, JsonOmitsTheKeyWhenThereAreNoExemplars) {
  MetricsSnapshot snapshot = SnapshotWithExemplar();
  snapshot.histograms[0].exemplars.clear();
  const std::string json = ToJson(snapshot);
  EXPECT_EQ(json.find("exemplars"), std::string::npos) << json;
  ASSERT_TRUE(ParseJsonSnapshot(json).ok());
}

TEST(InfoExport, JsonRoundTripsInfosThroughTheParser) {
  MetricsSnapshot snapshot;
  SnapshotInfo info;
  info.name = "shpir_build_info";
  info.labels = {{"version", "0.8.0"}, {"flags", "-O2 \"x\""}};
  snapshot.infos.push_back(std::move(info));
  const Result<MetricsSnapshot> parsed =
      ParseJsonSnapshot(ToJson(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->infos.size(), 1u);
  EXPECT_EQ(parsed->infos[0].name, "shpir_build_info");
  ASSERT_EQ(parsed->infos[0].labels.size(), 2u);
  EXPECT_EQ(parsed->infos[0].labels[1].second, "-O2 \"x\"");
}

// Wire compatibility: snapshots from peers predating exemplars/infos
// (no such keys) must keep parsing — STATS is a cross-version surface.
TEST(SnapshotParser, AcceptsLegacyPayloadWithoutOptionalKeys) {
  const std::string legacy =
      "{\"counters\":[{\"name\":\"shpir_requests_total\",\"value\":7}],"
      "\"gauges\":[],"
      "\"histograms\":[{\"name\":\"shpir_wait_ns\",\"count\":1,"
      "\"sum\":5,\"min\":5,\"max\":5,\"p50\":5,\"p95\":5,\"p99\":5}]}";
  const Result<MetricsSnapshot> parsed = ParseJsonSnapshot(legacy);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->counters[0].value, 7u);
  EXPECT_TRUE(parsed->histograms[0].exemplars.empty());
  EXPECT_TRUE(parsed->infos.empty());
}

TEST(SnapshotParser, RejectsMalformedExemplarTraceIds) {
  const std::string bad =
      "{\"counters\":[],\"gauges\":[],"
      "\"histograms\":[{\"name\":\"h\",\"count\":1,\"sum\":1,\"min\":1,"
      "\"max\":1,\"p50\":1,\"p95\":1,\"p99\":1,"
      "\"exemplars\":[{\"value\":1,\"trace_id\":\"XYZ\",\"ts_ns\":1}]}]}";
  EXPECT_FALSE(ParseJsonSnapshot(bad).ok());
}

// --- RecordWithExemplar: slot retention semantics on the live
// --- histogram, end to end through Snapshot().

TEST(HistogramExemplars, RetainsTracedObservationsPerBucketZone) {
  MetricsRegistry registry;
  Histogram* h = registry.FindOrCreateHistogram("shpir_latency_ns");
  h->Record(50);  // Untraced: never becomes an exemplar.
  h->RecordWithExemplar(10, /*trace_id=*/0x1ULL);
  // Same zone: overwrites the previous slot holder.
  h->RecordWithExemplar(12, /*trace_id=*/0x2ULL);
  // A far-outlier lands in a different slot and coexists.
  h->RecordWithExemplar(uint64_t{1} << 50, /*trace_id=*/0x3ULL);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const SnapshotHistogram& hs = snapshot.histograms[0];
  EXPECT_EQ(hs.count, 4u);
  ASSERT_EQ(hs.exemplars.size(), 2u);  // Ascending by value.
  EXPECT_EQ(hs.exemplars[0].value, 12u);
  EXPECT_EQ(hs.exemplars[0].trace_id, 0x2ULL);
  EXPECT_EQ(hs.exemplars[1].value, uint64_t{1} << 50);
  EXPECT_EQ(hs.exemplars[1].trace_id, 0x3ULL);
}

}  // namespace
}  // namespace shpir::obs
