#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/span.h"

// Global allocation counter for the zero-allocation tests. Counting
// operator new is process-wide, so the disabled-tracing tests measure a
// delta over a region that performs no other work.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace shpir::obs {
namespace {

TEST(Counter, ConcurrentIncrementsLandExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.FindOrCreateCounter("test_events_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(Counter, FindOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.FindOrCreateCounter("test_total");
  Counter* b = registry.FindOrCreateCounter("test_total");
  EXPECT_EQ(a, b);
  a->Increment(5);
  EXPECT_EQ(b->Value(), 5u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.FindOrCreateGauge("test_level");
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(2.5);
  EXPECT_EQ(gauge->Value(), 2.5);
  gauge->Add(1.25);
  EXPECT_EQ(gauge->Value(), 3.75);
  gauge->Add(-4.0);
  EXPECT_EQ(gauge->Value(), -0.25);
}

TEST(Gauge, ConcurrentAddsLandExactly) {
  MetricsRegistry registry;
  Gauge* gauge = registry.FindOrCreateGauge("test_level");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge->Add(1.0);  // Integers below 2^53 add exactly in double.
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(gauge->Value(), static_cast<double>(kThreads * kPerThread));
}

TEST(Histogram, BucketGeometry) {
  // Linear range: exact buckets.
  for (uint64_t v = 0; v < 16; ++v) {
    const int index = Histogram::BucketIndex(v);
    EXPECT_EQ(index, static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(index), v);
  }
  // Every bucket contains its own bounds, buckets tile the value space.
  for (int index = 0; index < Histogram::kNumBuckets; ++index) {
    const uint64_t lower = Histogram::BucketLowerBound(index);
    EXPECT_EQ(Histogram::BucketIndex(lower), index) << "lower of " << index;
    const uint64_t upper = Histogram::BucketUpperBound(index);
    if (upper != UINT64_MAX) {
      EXPECT_EQ(Histogram::BucketIndex(upper + 1), index + 1)
          << "upper of " << index;
    }
    EXPECT_GE(upper, lower);
  }
  // Relative bucket width stays within the documented 25%.
  for (uint64_t v : {17ull, 100ull, 12345ull, 999999ull, 1ull << 40}) {
    const int index = Histogram::BucketIndex(v);
    const uint64_t lower = Histogram::BucketLowerBound(index);
    const uint64_t upper = Histogram::BucketUpperBound(index);
    EXPECT_LE(lower, v);
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - lower),
              0.25 * static_cast<double>(lower) + 1.0);
  }
}

TEST(Histogram, CountSumMinMax) {
  MetricsRegistry registry;
  Histogram* histogram = registry.FindOrCreateHistogram("test_latency_ns");
  EXPECT_EQ(histogram->Count(), 0u);
  EXPECT_EQ(histogram->Min(), 0u);
  EXPECT_EQ(histogram->Max(), 0u);
  histogram->Record(10);
  histogram->Record(500);
  histogram->Record(3);
  EXPECT_EQ(histogram->Count(), 3u);
  EXPECT_EQ(histogram->Sum(), 513u);
  EXPECT_EQ(histogram->Min(), 3u);
  EXPECT_EQ(histogram->Max(), 500u);
}

TEST(Histogram, QuantileWithinOneBucketOfExact) {
  MetricsRegistry registry;
  Histogram* histogram = registry.FindOrCreateHistogram("test_latency_ns");
  // Deterministic pseudo-uniform values over [1, 100000].
  std::vector<uint64_t> values;
  uint64_t state = 12345;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    values.push_back(1 + (state >> 33) % 100000);
  }
  for (uint64_t v : values) {
    histogram->Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.95, 0.99}) {
    const uint64_t exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const double estimate = histogram->Quantile(q);
    // The estimate must fall inside (or adjacent to) the exact value's
    // bucket: within one bucket width, i.e. <= 25% relative error plus
    // the one-unit linear slack.
    const double tolerance = 0.25 * static_cast<double>(exact) + 1.0;
    EXPECT_NEAR(estimate, static_cast<double>(exact), tolerance)
        << "q=" << q;
  }
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  Histogram* histogram = registry.FindOrCreateHistogram("test_latency_ns");
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(histogram->Quantile(q), 0.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileOfSingleSampleIsExact) {
  // With one sample the [Min, Max] clamp collapses the bucket midpoint
  // to the recorded value, for every q — including one far into the
  // exponential range where the raw midpoint would be off by ~12%.
  for (uint64_t value : {0ull, 5ull, 37ull, 1000000ull}) {
    MetricsRegistry registry;
    Histogram* histogram = registry.FindOrCreateHistogram("test_latency_ns");
    histogram->Record(value);
    for (double q : {0.0, 0.5, 1.0}) {
      EXPECT_EQ(histogram->Quantile(q), static_cast<double>(value))
          << "value=" << value << " q=" << q;
    }
  }
}

TEST(Histogram, QuantileAtBucketEdges) {
  MetricsRegistry registry;
  Histogram* histogram = registry.FindOrCreateHistogram("test_latency_ns");
  // 15 is the last exact linear bucket; 16 starts the exponential
  // range (bucket [16, 19]). The estimate for each must stay inside
  // the recorded value's own bucket.
  for (int i = 0; i < 100; ++i) {
    histogram->Record(15);
  }
  EXPECT_EQ(histogram->Quantile(0.5), 15.0);
  for (int i = 0; i < 300; ++i) {
    histogram->Record(16);
  }
  // Median now falls in the [16, 19] bucket; the midpoint 17.5 is
  // within the documented one-bucket error of the exact value 16.
  const double median = histogram->Quantile(0.5);
  EXPECT_GE(median, 16.0);
  EXPECT_LE(median, 19.0);
}

TEST(Histogram, QuantileExtremesReturnMinAndMax) {
  MetricsRegistry registry;
  Histogram* histogram = registry.FindOrCreateHistogram("test_latency_ns");
  // Values in the linear range have exact single-value buckets, so the
  // extremes are exact, and out-of-range q must clamp, not crash.
  histogram->Record(10);
  histogram->Record(12);
  EXPECT_EQ(histogram->Quantile(0.0), 10.0);
  EXPECT_EQ(histogram->Quantile(1.0), 12.0);
  EXPECT_EQ(histogram->Quantile(-1.0), 10.0);
  EXPECT_EQ(histogram->Quantile(2.0), 12.0);
}

TEST(Histogram, ConcurrentRecordsLandExactly) {
  MetricsRegistry registry;
  Histogram* histogram = registry.FindOrCreateHistogram("test_latency_ns");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram->Record(static_cast<uint64_t>(t) * 1000 + i % 100);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("zeta_total")->Increment(3);
  registry.FindOrCreateCounter("alpha_total")->Increment(1);
  registry.FindOrCreateGauge("beta_level")->Set(1.5);
  registry.FindOrCreateHistogram("gamma_ns")->Record(42);
  registry.RegisterCallbackGauge("delta_level", [] { return 7.0; });
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha_total");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "zeta_total");
  EXPECT_EQ(snapshot.counters[1].value, 3u);
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_EQ(snapshot.gauges[0].name, "beta_level");
  EXPECT_EQ(snapshot.gauges[1].name, "delta_level");
  EXPECT_EQ(snapshot.gauges[1].value, 7.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "gamma_ns");
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  EXPECT_EQ(snapshot.histograms[0].sum, 42u);
}

TEST(Registry, ConcurrentFindOrCreateIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::array<Counter*, kThreads> seen = {};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      for (int i = 0; i < 1000; ++i) {
        seen[static_cast<size_t>(t)] =
            registry.FindOrCreateCounter("shared_total");
        seen[static_cast<size_t>(t)]->Increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(seen[0]->Value(), 8000u);
}

TEST(Registry, IsValidName) {
  EXPECT_TRUE(MetricsRegistry::IsValidName("shpir_engine_queries_total"));
  EXPECT_TRUE(MetricsRegistry::IsValidName("a"));
  EXPECT_TRUE(MetricsRegistry::IsValidName("x1_y2"));
  EXPECT_FALSE(MetricsRegistry::IsValidName(""));
  EXPECT_FALSE(MetricsRegistry::IsValidName("1abc"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("_abc"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("Upper"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("has-dash"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("has space"));
  // Per-request identifier vocabulary is structurally banned: a metric
  // named after a page id or request index would be a side channel.
  EXPECT_FALSE(MetricsRegistry::IsValidName("shpir_page_id_7"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("request_index_total"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("per_client_id_bytes"));
  EXPECT_FALSE(MetricsRegistry::IsValidName(std::string(200, 'a')));
}

TEST(Export, PrometheusTextRoundTripsAParseCheck) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("shpir_test_events_total")->Increment(12);
  registry.FindOrCreateGauge("shpir_test_level")->Set(0.5);
  Histogram* histogram =
      registry.FindOrCreateHistogram("shpir_test_latency_ns");
  for (uint64_t v = 1; v <= 100; ++v) {
    histogram->Record(v);
  }
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE shpir_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("shpir_test_events_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE shpir_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE shpir_test_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("shpir_test_latency_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("shpir_test_latency_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("shpir_test_latency_ns_sum 5050"), std::string::npos);
  EXPECT_NE(text.find("shpir_test_latency_ns_count 100"),
            std::string::npos);
  // Structural parse check: every non-comment line is `name[{labels}]
  // value` with a numeric value.
  size_t pos = 0;
  int samples = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "non-numeric sample value: " << line;
    ++samples;
  }
  EXPECT_EQ(samples, 2 + 5);  // counter + gauge + 3 quantiles + sum + count.
}

TEST(Export, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("shpir_test_events_total")->Increment(7);
  registry.FindOrCreateGauge("shpir_test_ratio")->Set(0.125);
  Histogram* histogram =
      registry.FindOrCreateHistogram("shpir_test_latency_ns");
  histogram->Record(100);
  histogram->Record(200);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json = ToJson(snapshot);
  Result<MetricsSnapshot> parsed = ParseJsonSnapshot(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].name, "shpir_test_events_total");
  EXPECT_EQ(parsed->counters[0].value, 7u);
  ASSERT_EQ(parsed->gauges.size(), 1u);
  EXPECT_EQ(parsed->gauges[0].name, "shpir_test_ratio");
  EXPECT_EQ(parsed->gauges[0].value, 0.125);
  ASSERT_EQ(parsed->histograms.size(), 1u);
  EXPECT_EQ(parsed->histograms[0].name, "shpir_test_latency_ns");
  EXPECT_EQ(parsed->histograms[0].count, 2u);
  EXPECT_EQ(parsed->histograms[0].sum, 300u);
  EXPECT_EQ(parsed->histograms[0].min, 100u);
  EXPECT_EQ(parsed->histograms[0].max, 200u);
  // Round-trip again: parse(emit(parse(x))) == parse(x).
  const std::string json2 = ToJson(*parsed);
  EXPECT_EQ(json, json2);
}

TEST(Export, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseJsonSnapshot("").ok());
  EXPECT_FALSE(ParseJsonSnapshot("{}").ok());
  EXPECT_FALSE(ParseJsonSnapshot("not json at all").ok());
  EXPECT_FALSE(
      ParseJsonSnapshot(
          "{\"counters\":[],\"gauges\":[],\"histograms\":[]} trailing")
          .ok());
  // Well-formed empty snapshot parses.
  EXPECT_TRUE(
      ParseJsonSnapshot("{\"counters\":[],\"gauges\":[],\"histograms\":[]}")
          .ok());
}

TEST(Export, RenderTableMentionsEveryMetric) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("shpir_test_events_total")->Increment(3);
  registry.FindOrCreateGauge("shpir_test_level")->Set(9.0);
  registry.FindOrCreateHistogram("shpir_test_latency_ns")->Record(5);
  const std::string table = RenderTable(registry.Snapshot());
  EXPECT_NE(table.find("shpir_test_events_total"), std::string::npos);
  EXPECT_NE(table.find("shpir_test_level"), std::string::npos);
  EXPECT_NE(table.find("shpir_test_latency_ns"), std::string::npos);
}

TEST(Span, DisabledTraceMakesZeroAllocations) {
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    QueryTrace trace(nullptr);
    Span a(trace, Phase::kBlockRead);
    Span b(trace, Phase::kDecrypt);
    ScopedLatencyTimer timer(nullptr);
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

TEST(Span, EnabledTraceMakesZeroAllocationsPerQuery) {
  MetricsRegistry registry;
  PhaseHistograms phases{};
  for (int i = 0; i < kNumPhases; ++i) {
    phases[static_cast<size_t>(i)] = registry.FindOrCreateHistogram(
        std::string("phase_") + PhaseName(static_cast<Phase>(i)) + "_ns");
  }
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    QueryTrace trace(&phases);
    Span a(trace, Phase::kBlockRead);
    Span b(trace, Phase::kReencrypt);
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

TEST(Span, AggregatesPhaseTimeIntoHistograms) {
  MetricsRegistry registry;
  PhaseHistograms phases{};
  phases[static_cast<size_t>(Phase::kDecrypt)] =
      registry.FindOrCreateHistogram("phase_decrypt_ns");
  {
    QueryTrace trace(&phases);
    trace.Add(Phase::kDecrypt, 100);
    trace.Add(Phase::kDecrypt, 50);
    trace.Add(Phase::kBlockRead, 999);  // No histogram: dropped silently.
  }
  Histogram* decrypt = registry.FindOrCreateHistogram("phase_decrypt_ns");
  EXPECT_EQ(decrypt->Count(), 1u);  // One aggregated sample per query.
  EXPECT_EQ(decrypt->Sum(), 150u);
}

TEST(Span, PhaseNamesAreStable) {
  EXPECT_STREQ(PhaseName(Phase::kPageMapLookup), "pagemap");
  EXPECT_STREQ(PhaseName(Phase::kBlockRead), "block_read");
  EXPECT_STREQ(PhaseName(Phase::kDecrypt), "decrypt");
  EXPECT_STREQ(PhaseName(Phase::kCacheEvict), "evict");
  EXPECT_STREQ(PhaseName(Phase::kReencrypt), "reencrypt");
  EXPECT_STREQ(PhaseName(Phase::kWriteBack), "writeback");
}

}  // namespace
}  // namespace shpir::obs
