#include "storage/page_cipher.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace shpir::storage {
namespace {

PageCipher MakeCipher(size_t page_size) {
  Result<PageCipher> cipher =
      PageCipher::Create(Bytes(32, 0x01), Bytes(32, 0x02), page_size);
  SHPIR_CHECK(cipher.ok());
  return std::move(cipher).value();
}

TEST(PageCipherTest, SealOpenRoundTrip) {
  PageCipher cipher = MakeCipher(64);
  crypto::SecureRandom rng(1);
  Page page(42, Bytes(64, 0x99));
  Result<Bytes> sealed = cipher.Seal(page, rng);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->size(), cipher.sealed_size());
  Result<Page> back = cipher.Open(*sealed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, page);
}

TEST(PageCipherTest, SealedSizeLayout) {
  PageCipher cipher = MakeCipher(100);
  // nonce (12) + id (8) + payload (100) + tag (32).
  EXPECT_EQ(cipher.sealed_size(), 152u);
}

TEST(PageCipherTest, ResealingIsUnlinkable) {
  // The same page sealed twice must give completely different ciphertexts
  // (fresh nonce) — this is what hides which of the k+1 rewritten pages
  // actually changed.
  PageCipher cipher = MakeCipher(32);
  crypto::SecureRandom rng(2);
  Page page(7, Bytes(32, 0x55));
  Result<Bytes> a = cipher.Seal(page, rng);
  Result<Bytes> b = cipher.Seal(page, rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  // Both decrypt to the same page.
  EXPECT_EQ(*cipher.Open(*a), page);
  EXPECT_EQ(*cipher.Open(*b), page);
}

TEST(PageCipherTest, TamperedCiphertextRejected) {
  PageCipher cipher = MakeCipher(32);
  crypto::SecureRandom rng(3);
  Page page(1, Bytes(32, 0x11));
  Bytes sealed = *cipher.Seal(page, rng);
  for (size_t pos : {size_t{0}, size_t{12}, size_t{30}, sealed.size() - 1}) {
    Bytes tampered = sealed;
    tampered[pos] ^= 0x01;
    Result<Page> result = cipher.Open(tampered);
    EXPECT_FALSE(result.ok()) << "tamper at " << pos;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
}

TEST(PageCipherTest, WrongSizeRejected) {
  PageCipher cipher = MakeCipher(32);
  Bytes wrong(cipher.sealed_size() - 1, 0);
  EXPECT_EQ(cipher.Open(wrong).status().code(), StatusCode::kInvalidArgument);
}

TEST(PageCipherTest, DifferentKeysCannotOpen) {
  crypto::SecureRandom rng(4);
  PageCipher a = MakeCipher(16);
  Result<PageCipher> b =
      PageCipher::Create(Bytes(32, 0x0a), Bytes(32, 0x0b), 16);
  ASSERT_TRUE(b.ok());
  Page page(3, Bytes(16, 0x33));
  Bytes sealed = *a.Seal(page, rng);
  EXPECT_FALSE(b->Open(sealed).ok());
}

TEST(PageCipherTest, CiphertextHidesPlaintextStructure) {
  // An all-zeros page must not produce an all-zeros ciphertext body.
  PageCipher cipher = MakeCipher(64);
  crypto::SecureRandom rng(5);
  Page page(0, Bytes(64, 0x00));
  Bytes sealed = *cipher.Seal(page, rng);
  int zeros = 0;
  for (size_t i = PageCipher::kNonceSize; i < sealed.size(); ++i) {
    if (sealed[i] == 0) {
      ++zeros;
    }
  }
  EXPECT_LT(zeros, 16);  // Random-looking: expect ~ (size/256) zeros.
}

TEST(PageCipherTest, RejectsZeroPageSize) {
  EXPECT_FALSE(PageCipher::Create(Bytes(32, 0), Bytes(32, 0), 0).ok());
}

TEST(PageCipherTest, RejectsBadKey) {
  EXPECT_FALSE(PageCipher::Create(Bytes(10, 0), Bytes(32, 0), 16).ok());
}

}  // namespace
}  // namespace shpir::storage
