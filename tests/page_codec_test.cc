#include "storage/page_codec.h"

#include <gtest/gtest.h>

namespace shpir::storage {
namespace {

TEST(PageCodecTest, RoundTrip) {
  PageCodec codec(64);
  Page page(7, Bytes(64, 0xab));
  Bytes buf(codec.serialized_size());
  ASSERT_TRUE(codec.Serialize(page, buf).ok());
  Result<Page> back = codec.Deserialize(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, page);
}

TEST(PageCodecTest, SerializedSizeIsHeaderPlusPayload) {
  PageCodec codec(100);
  EXPECT_EQ(codec.serialized_size(), 108u);
  EXPECT_EQ(codec.page_size(), 100u);
}

TEST(PageCodecTest, ShortPayloadIsZeroPadded) {
  PageCodec codec(16);
  Page page(1, Bytes{1, 2, 3});
  Bytes buf(codec.serialized_size(), 0xff);
  ASSERT_TRUE(codec.Serialize(page, buf).ok());
  Result<Page> back = codec.Deserialize(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, 1u);
  ASSERT_EQ(back->data.size(), 16u);
  EXPECT_EQ(back->data[0], 1);
  EXPECT_EQ(back->data[2], 3);
  for (size_t i = 3; i < 16; ++i) {
    EXPECT_EQ(back->data[i], 0) << i;
  }
}

TEST(PageCodecTest, OversizedPayloadRejected) {
  PageCodec codec(8);
  Page page(1, Bytes(9, 0));
  Bytes buf(codec.serialized_size());
  EXPECT_EQ(codec.Serialize(page, buf).code(), StatusCode::kInvalidArgument);
}

TEST(PageCodecTest, WrongBufferSizesRejected) {
  PageCodec codec(8);
  Page page(1, Bytes(8, 0));
  Bytes small(codec.serialized_size() - 1);
  EXPECT_FALSE(codec.Serialize(page, small).ok());
  EXPECT_FALSE(codec.Deserialize(small).ok());
}

TEST(PageCodecTest, DummyPageIdSurvives) {
  PageCodec codec(4);
  Page dummy(kDummyPageId, Bytes(4, 0));
  EXPECT_TRUE(dummy.is_dummy());
  Bytes buf(codec.serialized_size());
  ASSERT_TRUE(codec.Serialize(dummy, buf).ok());
  Result<Page> back = codec.Deserialize(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_dummy());
}

TEST(PageCodecTest, LargeIdsRoundTrip) {
  PageCodec codec(4);
  for (PageId id : {0ull, 1ull, 1ull << 32, (1ull << 63) + 5}) {
    Page page(id, Bytes(4, 1));
    Bytes buf(codec.serialized_size());
    ASSERT_TRUE(codec.Serialize(page, buf).ok());
    EXPECT_EQ(codec.Deserialize(buf)->id, id);
  }
}

}  // namespace
}  // namespace shpir::storage
