#include "core/page_map.h"

#include <gtest/gtest.h>

namespace shpir::core {
namespace {

TEST(PageMapTest, DiskLocations) {
  PageMap map(10);
  map.SetDiskLocation(3, 77);
  EXPECT_FALSE(map.IsCached(3));
  EXPECT_EQ(map.DiskLocation(3), 77u);
}

TEST(PageMapTest, CacheIndices) {
  PageMap map(10);
  map.SetCacheIndex(5, 2);
  EXPECT_TRUE(map.IsCached(5));
  EXPECT_EQ(map.CacheIndex(5), 2u);
}

TEST(PageMapTest, TransitionsBetweenStates) {
  PageMap map(4);
  map.SetDiskLocation(0, 9);
  map.SetCacheIndex(0, 1);
  EXPECT_TRUE(map.IsCached(0));
  EXPECT_EQ(map.CacheIndex(0), 1u);
  map.SetDiskLocation(0, 3);
  EXPECT_FALSE(map.IsCached(0));
  EXPECT_EQ(map.DiskLocation(0), 3u);
}

TEST(PageMapTest, SizeReported) {
  PageMap map(123);
  EXPECT_EQ(map.size(), 123u);
}

TEST(PageMapTest, StorageBytesMatchesEq7) {
  // n * (log2(n) + 1) bits. For n = 1e6: 1e6 * 21 bits = 2.625 MB.
  EXPECT_EQ(PageMap::StorageBytes(1000000), 2625000u);
  // For n = 1e9: 1e9 * 31 bits = 3.875 GB.
  EXPECT_EQ(PageMap::StorageBytes(1000000000), 3875000000u);
  EXPECT_EQ(PageMap::StorageBytes(0), 0u);
  // Exact power of two: log2(1024) = 10, 1024 * 11 / 8 = 1408.
  EXPECT_EQ(PageMap::StorageBytes(1024), 1408u);
}

}  // namespace
}  // namespace shpir::core
