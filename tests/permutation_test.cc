#include "crypto/permutation.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace shpir::crypto {
namespace {

TEST(PermutationTest, IsValidPermutation) {
  SecureRandom rng(1);
  for (uint64_t n : {0ull, 1ull, 2ull, 10ull, 1000ull}) {
    const std::vector<uint64_t> perm = RandomPermutation(n, rng);
    ASSERT_EQ(perm.size(), n);
    EXPECT_TRUE(IsPermutation(perm)) << "n=" << n;
  }
}

TEST(PermutationTest, InverseComposesToIdentity) {
  SecureRandom rng(2);
  const std::vector<uint64_t> perm = RandomPermutation(500, rng);
  const std::vector<uint64_t> inv = InvertPermutation(perm);
  for (uint64_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[perm[i]], i);
    EXPECT_EQ(perm[inv[i]], i);
  }
}

TEST(PermutationTest, IsPermutationRejectsNonPermutations) {
  EXPECT_FALSE(IsPermutation({0, 0}));
  EXPECT_FALSE(IsPermutation({1, 2}));
  EXPECT_FALSE(IsPermutation({0, 1, 3}));
  EXPECT_TRUE(IsPermutation({}));
  EXPECT_TRUE(IsPermutation({2, 0, 1}));
}

TEST(PermutationTest, ShuffleIsUniformOverSmallDomain) {
  // All 6 permutations of 3 elements should appear with equal frequency.
  SecureRandom rng(3);
  std::map<std::vector<int>, int> counts;
  constexpr int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> v = {0, 1, 2};
    Shuffle(v, rng);
    counts[v]++;
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_GT(count, 9200);
    EXPECT_LT(count, 10800);
  }
}

TEST(PermutationTest, EachElementEquallyLikelyInEachSlot) {
  SecureRandom rng(4);
  constexpr uint64_t kN = 8;
  constexpr int kTrials = 40000;
  std::vector<std::vector<int>> slot_counts(kN, std::vector<int>(kN, 0));
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<uint64_t> perm = RandomPermutation(kN, rng);
    for (uint64_t i = 0; i < kN; ++i) {
      slot_counts[i][perm[i]]++;
    }
  }
  const double expected = static_cast<double>(kTrials) / kN;
  for (uint64_t i = 0; i < kN; ++i) {
    for (uint64_t j = 0; j < kN; ++j) {
      EXPECT_GT(slot_counts[i][j], expected * 0.85);
      EXPECT_LT(slot_counts[i][j], expected * 1.15);
    }
  }
}

TEST(PermutationTest, DeterministicWithSeed) {
  SecureRandom a(99), b(99);
  EXPECT_EQ(RandomPermutation(100, a), RandomPermutation(100, b));
}

}  // namespace
}  // namespace shpir::crypto
