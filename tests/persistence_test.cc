#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/blob_cipher.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"
#include "storage/file_disk.h"

namespace shpir::core {
namespace {

using storage::Page;
using storage::PageId;

constexpr size_t kPageSize = 32;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
constexpr uint64_t kDeviceSeed = 777;

CApproxPir::Options MakeOptions() {
  CApproxPir::Options options;
  options.num_pages = 40;
  options.page_size = kPageSize;
  options.cache_pages = 6;
  options.block_size = 8;
  options.insert_reserve = 4;
  return options;
}

Bytes PayloadFor(PageId id) { return Bytes(kPageSize, static_cast<uint8_t>(id + 1)); }

TEST(PersistenceTest, StateRoundTripsAcrossEngineInstances) {
  const CApproxPir::Options options = MakeOptions();
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);

  Bytes state;
  {
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, kDeviceSeed);
    ASSERT_TRUE(cpu.ok());
    auto engine = CApproxPir::Create(cpu->get(), options);
    ASSERT_TRUE(engine.ok());
    std::vector<Page> pages;
    for (PageId id = 0; id < options.num_pages; ++id) {
      pages.emplace_back(id, PayloadFor(id));
    }
    ASSERT_TRUE((*engine)->Initialize(pages).ok());
    // Churn, plus an update and a delete so the state is non-trivial.
    crypto::SecureRandom rng(1);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*engine)->Retrieve(rng.UniformInt(40)).ok());
    }
    ASSERT_TRUE((*engine)->Modify(5, PayloadFor(99)).ok());
    ASSERT_TRUE((*engine)->Remove(6).ok());
    Result<Bytes> serialized = (*engine)->SerializeState();
    ASSERT_TRUE(serialized.ok());
    state = *serialized;
  }

  // New session: same disk contents, same device seed (same keys).
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, kDeviceSeed);
  ASSERT_TRUE(cpu.ok());
  auto engine = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RestoreState(state).ok());

  EXPECT_EQ(*(*engine)->Retrieve(5), PayloadFor(99));
  EXPECT_FALSE((*engine)->Retrieve(6).ok());
  crypto::SecureRandom rng(2);
  for (int i = 0; i < 200; ++i) {
    PageId id = rng.UniformInt(40);
    if (id == 6) {
      continue;
    }
    const Bytes expected = id == 5 ? PayloadFor(99) : PayloadFor(id);
    ASSERT_EQ(*(*engine)->Retrieve(id), expected) << "id " << id;
  }
  // Stats carried over (200 queries before + the sweep here).
  EXPECT_GT((*engine)->stats().queries, 200u);
}

TEST(PersistenceTest, SurvivesFileDiskReopen) {
  const std::string path = ::testing::TempDir() + "/shpir_persist.bin";
  std::remove(path.c_str());
  const CApproxPir::Options options = MakeOptions();
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());

  Bytes state;
  {
    auto disk = storage::FileDisk::Create(path, *slots, kSealedSize);
    ASSERT_TRUE(disk.ok());
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), disk->get(), kPageSize,
        kDeviceSeed);
    ASSERT_TRUE(cpu.ok());
    auto engine = CApproxPir::Create(cpu->get(), options);
    ASSERT_TRUE(engine.ok());
    std::vector<Page> pages;
    for (PageId id = 0; id < options.num_pages; ++id) {
      pages.emplace_back(id, PayloadFor(id));
    }
    ASSERT_TRUE((*engine)->Initialize(pages).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*engine)->Retrieve(static_cast<PageId>(i % 40)).ok());
    }
    state = *(*engine)->SerializeState();
  }

  {
    auto disk = storage::FileDisk::Open(path, *slots, kSealedSize);
    ASSERT_TRUE(disk.ok());
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), disk->get(), kPageSize,
        kDeviceSeed);
    ASSERT_TRUE(cpu.ok());
    auto engine = CApproxPir::Create(cpu->get(), options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->RestoreState(state).ok());
    for (PageId id = 0; id < 40; ++id) {
      ASSERT_EQ(*(*engine)->Retrieve(id), PayloadFor(id)) << id;
    }
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, SealedStateBlobRoundTrip) {
  // The snapshot wrapped with BlobCipher, as a deployment would store it.
  const CApproxPir::Options options = MakeOptions();
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, kDeviceSeed);
  ASSERT_TRUE(cpu.ok());
  auto engine = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());
  const Bytes state = *(*engine)->SerializeState();

  auto cipher = crypto::BlobCipher::FromPassphrase("device escrow");
  ASSERT_TRUE(cipher.ok());
  crypto::SecureRandom rng(9);
  const Bytes sealed = *cipher->Seal(state, rng);
  EXPECT_EQ(*cipher->Open(sealed), state);
}

TEST(PersistenceTest, GeometryMismatchRejected) {
  CApproxPir::Options options = MakeOptions();
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());
  auto engine = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());
  Bytes state = *(*engine)->SerializeState();

  // Different cache size -> geometry check must fire.
  CApproxPir::Options other = options;
  other.cache_pages = 8;
  Result<uint64_t> slots2 = CApproxPir::DiskSlots(other);
  ASSERT_TRUE(slots2.ok());
  storage::MemoryDisk disk2(*slots2, kSealedSize);
  auto cpu2 = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk2, kPageSize, 1);
  ASSERT_TRUE(cpu2.ok());
  auto engine2 = CApproxPir::Create(cpu2->get(), other);
  ASSERT_TRUE(engine2.ok());
  EXPECT_EQ((*engine2)->RestoreState(state).code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, CorruptStateRejected) {
  const CApproxPir::Options options = MakeOptions();
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());
  auto engine = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());
  Bytes state = *(*engine)->SerializeState();

  auto restore_into_fresh = [&](const Bytes& blob) -> Status {
    storage::MemoryDisk d(*slots, kSealedSize);
    auto c = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), &d, kPageSize, 1);
    SHPIR_CHECK(c.ok());
    auto e = CApproxPir::Create(c->get(), options);
    SHPIR_CHECK(e.ok());
    return (*e)->RestoreState(blob);
  };

  // Truncated.
  Bytes truncated(state.begin(), state.begin() + 40);
  EXPECT_FALSE(restore_into_fresh(truncated).ok());
  // Bad magic.
  Bytes bad_magic = state;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(restore_into_fresh(bad_magic).ok());
  // Trailing garbage.
  Bytes trailing = state;
  trailing.push_back(0);
  EXPECT_FALSE(restore_into_fresh(trailing).ok());
  // The pristine blob still restores.
  EXPECT_TRUE(restore_into_fresh(state).ok());
}

TEST(PersistenceTest, SerializeRequiresInitialized) {
  const CApproxPir::Options options = MakeOptions();
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());
  auto engine = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->SerializeState().ok());
}

}  // namespace
}  // namespace shpir::core
