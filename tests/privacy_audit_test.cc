#include "analysis/privacy_audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/relocation_analyzer.h"
#include "common/check.h"
#include "core/capprox_pir.h"
#include "core/security_parameter.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::analysis {
namespace {

constexpr size_t kPageSize = 16;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  storage::AccessTrace trace;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;

  static Rig Make(uint64_t n, uint64_t m, uint64_t k, uint64_t seed,
                  core::CApproxPir::Options base = {}) {
    core::CApproxPir::Options options = base;
    options.num_pages = n;
    options.page_size = kPageSize;
    options.cache_pages = m;
    options.block_size = k;
    Rig rig;
    Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    rig.tracing_disk =
        std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
    Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
        hardware::SecureCoprocessor::Create(
            hardware::HardwareProfile::Ibm4764(), rig.tracing_disk.get(),
            kPageSize, seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    Result<std::unique_ptr<core::CApproxPir>> engine =
        core::CApproxPir::Create(rig.cpu.get(), options, &rig.trace);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize({}));
    return rig;
  }
};

TEST(RelocationAnalyzerTest, TracksDelaysModuloScanPeriod) {
  RelocationAnalyzer analyzer(/*scan_period=*/4, /*block_size=*/2);
  analyzer.OnCacheEntry(1, 10);
  analyzer.OnRelocation(1, 0, 11);  // Delay 1 -> offset 0.
  analyzer.OnCacheEntry(2, 10);
  analyzer.OnRelocation(2, 1, 14);  // Delay 4 -> offset 3.
  analyzer.OnCacheEntry(3, 10);
  analyzer.OnRelocation(3, 2, 15);  // Delay 5 -> offset 0 (wraps).
  EXPECT_EQ(analyzer.samples(), 3u);
  const std::vector<double> dist = analyzer.MeasuredBlockDistribution();
  EXPECT_NEAR(dist[0], 2.0 / 3, 1e-9);
  EXPECT_NEAR(dist[3], 1.0 / 3, 1e-9);
}

TEST(RelocationAnalyzerTest, IgnoresUnknownPages) {
  RelocationAnalyzer analyzer(4, 2);
  analyzer.OnRelocation(99, 0, 5);  // Never entered the cache.
  EXPECT_EQ(analyzer.samples(), 0u);
}

TEST(RelocationAnalyzerTest, MeasuredPrivacyNeedsFullCoverage) {
  RelocationAnalyzer analyzer(3, 2);
  analyzer.OnCacheEntry(1, 0);
  analyzer.OnRelocation(1, 0, 1);
  EXPECT_FALSE(analyzer.MeasuredPrivacy().ok());
}

TEST(EntropyTest, UniformCountsGiveFullEntropy) {
  EXPECT_NEAR(ShannonEntropyBits({10, 10, 10, 10}), 2.0, 1e-9);
  EXPECT_NEAR(NormalizedEntropy({10, 10, 10, 10}), 1.0, 1e-9);
}

TEST(EntropyTest, DegenerateCountsGiveZeroEntropy) {
  EXPECT_NEAR(ShannonEntropyBits({40, 0, 0, 0}), 0.0, 1e-9);
  EXPECT_NEAR(NormalizedEntropy({40, 0, 0, 0}), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(ShannonEntropyBits({}), 0.0);
}

TEST(PrivacyAuditTest, MeasuredPrivacyConvergesToAnalytic) {
  // Small geometry so every scan offset gets plenty of samples:
  // n=64 slots, k=16, T=4, m=8 -> analytic c = (1-1/8)^-3 = 1.49.
  Rig rig = Rig::Make(/*n=*/64, /*m=*/8, /*k=*/16, /*seed=*/1);
  ASSERT_EQ(rig.engine->scan_period(), 4u);
  crypto::SecureRandom workload(2);
  Result<PrivacyReport> report = RunPrivacyAudit(
      *rig.engine, /*num_requests=*/40000,
      [&]() { return workload.UniformInt(64); });
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->requests, 40000u);
  EXPECT_GT(report->relocations, 30000u);
  const double analytic = report->analytic_c;
  EXPECT_NEAR(analytic, std::pow(1.0 - 1.0 / 8, -3.0), 1e-9);
  // Empirical ratio within 10% of the analytic c.
  EXPECT_NEAR(report->measured_c, analytic, analytic * 0.10);
  // Distribution shape matches Eqs. 2-4 within 10% per bin.
  EXPECT_LT(report->max_relative_deviation, 0.10);
  // Within-block slot choice is uniform.
  EXPECT_GT(report->slot_entropy, 0.999);
}

TEST(PrivacyAuditTest, SkewedWorkloadStillMatchesModel) {
  // The relocation distribution is a property of the mechanism, not the
  // workload: a heavily skewed request stream must yield the same c.
  Rig rig = Rig::Make(64, 8, 16, 3);
  crypto::SecureRandom workload(4);
  Result<PrivacyReport> report =
      RunPrivacyAudit(*rig.engine, 40000, [&]() -> storage::PageId {
        // 90% of requests hit 4 hot pages.
        return workload.UniformInt(10) < 9
                   ? workload.UniformInt(4)
                   : workload.UniformInt(64);
      });
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->measured_c, report->analytic_c,
              report->analytic_c * 0.12);
}

TEST(PrivacyAuditTest, SmallerCacheMeansWeakerPrivacy) {
  Rig tight = Rig::Make(64, 4, 16, 5);
  Rig loose = Rig::Make(64, 16, 16, 6);
  crypto::SecureRandom w1(7), w2(8);
  Result<PrivacyReport> tight_report = RunPrivacyAudit(
      *tight.engine, 30000, [&]() { return w1.UniformInt(64); });
  Result<PrivacyReport> loose_report = RunPrivacyAudit(
      *loose.engine, 30000, [&]() { return w2.UniformInt(64); });
  ASSERT_TRUE(tight_report.ok());
  ASSERT_TRUE(loose_report.ok());
  EXPECT_GT(tight_report->measured_c, loose_report->measured_c);
  EXPECT_GT(tight_report->analytic_c, loose_report->analytic_c);
}

TEST(PrivacyAuditTest, AblationSkipUniformSwapBreaksSlotUniformity) {
  core::CApproxPir::Options ablated;
  ablated.ablation_skip_uniform_swap = true;
  Rig rig = Rig::Make(64, 8, 16, 20, ablated);
  crypto::SecureRandom workload(21);
  Result<PrivacyReport> report = RunPrivacyAudit(
      *rig.engine, 20000, [&]() { return workload.UniformInt(64); });
  ASSERT_TRUE(report.ok());
  // Evicted pages pile into slot 0 of each block: the within-block
  // distribution collapses (healthy runs measure > 0.999).
  EXPECT_LT(report->slot_entropy, 0.5);
}

TEST(PrivacyAuditTest, AblationRoundRobinEvictionBreaksModel) {
  core::CApproxPir::Options ablated;
  ablated.ablation_round_robin_eviction = true;
  Rig rig = Rig::Make(64, 8, 16, 22, ablated);
  crypto::SecureRandom workload(23);
  Result<PrivacyReport> report = RunPrivacyAudit(
      *rig.engine, 20000, [&]() { return workload.UniformInt(64); });
  ASSERT_TRUE(report.ok());
  // Residency time becomes deterministic (exactly m requests), so most
  // scan offsets never receive a relocation: either the measured ratio
  // is unavailable (0) or the distribution deviates wildly.
  EXPECT_TRUE(report->measured_c == 0.0 ||
              report->max_relative_deviation > 0.5)
      << "measured_c=" << report->measured_c
      << " dev=" << report->max_relative_deviation;
}

TEST(TraceStatisticsTest, WritesSpreadUniformly) {
  Rig rig = Rig::Make(64, 8, 16, 9);
  rig.trace.Clear();  // Drop the bulk-load writes.
  crypto::SecureRandom workload(10);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(workload.UniformInt(64)).ok());
  }
  const TraceStatistics stats =
      AnalyzeTrace(rig.trace, rig.engine->block_size(),
                   rig.engine->disk_slots());
  EXPECT_EQ(stats.reads, stats.writes);
  // Round-robin writes cover the disk almost uniformly.
  EXPECT_GT(stats.write_location_entropy, 0.99);
  // Extra reads must not concentrate despite a uniform workload.
  EXPECT_GT(stats.extra_read_entropy, 0.95);
}

TEST(TraceStatisticsTest, AblationLruEvictionWouldBreakUniformity) {
  // Sanity-check the metric itself: a degenerate trace that always
  // rewrites the same slot has near-zero entropy.
  storage::AccessTrace trace;
  for (int i = 0; i < 100; ++i) {
    trace.BeginRequest();
    trace.RecordRead(0);
    trace.RecordWrite(3);
  }
  const TraceStatistics stats = AnalyzeTrace(trace, 1, 64);
  EXPECT_LT(stats.write_location_entropy, 0.01);
}

}  // namespace
}  // namespace shpir::analysis
