#include "obs/privacy_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/privacy_audit.h"
#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "obs/metrics.h"
#include "shard/sharded_engine.h"
#include "storage/disk.h"
#include "workload/workload.h"

namespace shpir::obs {
namespace {

PrivacyMonitor::Options MakeOptions(uint64_t scan_period, uint64_t window,
                                    double configured_c = 0.0,
                                    uint64_t check_interval = 1) {
  PrivacyMonitor::Options options;
  options.scan_period = scan_period;
  options.window = window;
  options.configured_c = configured_c;
  options.check_interval = check_interval;
  return options;
}

/// Feeds one relocation with residency delay `delay` (entered at
/// `start`, evicted at `start + delay`).
void Feed(PrivacyMonitor& monitor, uint64_t id, uint64_t start,
          uint64_t delay) {
  monitor.OnCacheEntry(id, start);
  monitor.OnRelocation(id, start + delay);
}

TEST(PrivacyMonitorTest, BinsDelaysModuloScanPeriod) {
  PrivacyMonitor monitor(MakeOptions(/*scan_period=*/4, /*window=*/64));
  Feed(monitor, 1, 10, 1);  // Offset 0.
  Feed(monitor, 2, 10, 4);  // Offset 3.
  Feed(monitor, 3, 10, 5);  // Offset 0 (wraps).
  Feed(monitor, 4, 10, 2);  // Offset 1.
  Feed(monitor, 5, 10, 3);  // Offset 2.
  EXPECT_EQ(monitor.relocations(), 5u);
  Result<double> estimate = monitor.Estimate();
  ASSERT_TRUE(estimate.ok()) << estimate.status();
  EXPECT_DOUBLE_EQ(*estimate, 2.0);  // Bins {2, 1, 1, 1}.
}

TEST(PrivacyMonitorTest, EstimateNeedsFullBinCoverage) {
  PrivacyMonitor monitor(MakeOptions(3, 64));
  Feed(monitor, 1, 0, 1);
  const Result<double> estimate = monitor.Estimate();
  EXPECT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_DOUBLE_EQ(monitor.EstimateOrZero(), 0.0);
}

TEST(PrivacyMonitorTest, SameRequestEvictionIsSkipped) {
  PrivacyMonitor monitor(MakeOptions(2, 64));
  Feed(monitor, 1, 5, 0);  // Entered and evicted in the same request.
  EXPECT_EQ(monitor.relocations(), 0u);
}

TEST(PrivacyMonitorTest, UnknownPageIsIgnored) {
  PrivacyMonitor monitor(MakeOptions(2, 64));
  monitor.OnRelocation(99, 7);  // Never entered while monitored.
  EXPECT_EQ(monitor.relocations(), 0u);
}

TEST(PrivacyMonitorTest, WindowEvictsOldestSamples) {
  PrivacyMonitor monitor(MakeOptions(/*scan_period=*/2, /*window=*/4));
  // Fill the window with balanced offsets: bins {2, 2}.
  Feed(monitor, 1, 0, 1);  // Offset 0.
  Feed(monitor, 2, 0, 2);  // Offset 1.
  Feed(monitor, 3, 0, 1);  // Offset 0.
  Feed(monitor, 4, 0, 2);  // Offset 1.
  ASSERT_TRUE(monitor.Estimate().ok());
  EXPECT_DOUBLE_EQ(*monitor.Estimate(), 1.0);
  // Two more offset-1 samples push out the two oldest (offsets 0, 1):
  // bins become {1, 3}.
  Feed(monitor, 5, 0, 2);
  Feed(monitor, 6, 0, 2);
  EXPECT_DOUBLE_EQ(*monitor.Estimate(), 3.0);
  // The window never grows past its size.
  EXPECT_EQ(monitor.relocations(), 6u);
}

TEST(PrivacyMonitorTest, BreachCountingIsEdgeTriggered) {
  // configured_c = 1.5, check every relocation.
  PrivacyMonitor monitor(MakeOptions(2, 64, /*configured_c=*/1.5));
  Feed(monitor, 1, 0, 1);
  Feed(monitor, 2, 0, 2);  // Bins {1, 1}: estimate 1.0, no breach.
  EXPECT_EQ(monitor.breaches(), 0u);
  Feed(monitor, 3, 0, 1);  // Bins {2, 1}: estimate 2.0 > 1.5 — breach.
  Feed(monitor, 4, 0, 1);  // Bins {3, 1}: still in breach, no new edge.
  EXPECT_EQ(monitor.breaches(), 1u);
  // Recover: {3, 2} -> 1.5 (not above c), {3, 3} -> 1.0.
  Feed(monitor, 5, 0, 2);
  Feed(monitor, 6, 0, 2);
  EXPECT_EQ(monitor.breaches(), 1u);
  // Breach again: {4, 3} -> 1.33, then {5, 3} -> 1.67 — a second edge.
  Feed(monitor, 7, 0, 1);
  Feed(monitor, 8, 0, 1);
  EXPECT_EQ(monitor.breaches(), 2u);
}

TEST(PrivacyMonitorTest, PublishesGaugeAndCounters) {
  MetricsRegistry registry;
  PrivacyMonitor monitor(MakeOptions(2, 64, /*configured_c=*/1.1));
  monitor.EnableMetrics(&registry);
  Feed(monitor, 1, 0, 1);
  Feed(monitor, 2, 0, 1);
  Feed(monitor, 3, 0, 2);  // Bins {2, 1}: estimate 2.0 > 1.1.
  monitor.PublishNow();
  const MetricsSnapshot snapshot = registry.Snapshot();
  double gauge = -1;
  for (const auto& g : snapshot.gauges) {
    if (g.name == "shpir_privacy_c_estimate") {
      gauge = g.value;
    }
  }
  EXPECT_DOUBLE_EQ(gauge, 2.0);
  uint64_t relocations = 0, breaches = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name == "shpir_privacy_relocations_total") {
      relocations = c.value;
    }
    if (c.name == "shpir_privacy_breaches_total") {
      breaches = c.value;
    }
  }
  EXPECT_EQ(relocations, 3u);
  EXPECT_EQ(breaches, 1u);
}

// --- Agreement with the offline audit -------------------------------------

constexpr size_t kPageSize = 16;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  storage::AccessTrace trace;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;

  static Rig Make(uint64_t n, uint64_t m, uint64_t k, uint64_t seed) {
    core::CApproxPir::Options options;
    options.num_pages = n;
    options.page_size = kPageSize;
    options.cache_pages = m;
    options.block_size = k;
    Rig rig;
    Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    rig.tracing_disk =
        std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.tracing_disk.get(),
        kPageSize, seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto engine =
        core::CApproxPir::Create(rig.cpu.get(), options, &rig.trace);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize({}));
    return rig;
  }
};

TEST(PrivacyMonitorTest, OnlineEstimateMatchesOfflineAuditWithinTenPercent) {
  // Same geometry as the offline audit's convergence test: n=64, k=16,
  // T=4, m=8. The monitor rides the engine's internal hooks while
  // RunPrivacyAudit drives its own observers — two independent
  // measurements of one run.
  Rig rig = Rig::Make(/*n=*/64, /*m=*/8, /*k=*/16, /*seed=*/101);
  ASSERT_EQ(rig.engine->scan_period(), 4u);
  // Alert threshold sits 50% above the privacy target, as an operator
  // would deploy it: the estimate converges TO the target, so a
  // threshold at the target itself would alert on sampling noise.
  PrivacyMonitor monitor(
      MakeOptions(rig.engine->scan_period(), /*window=*/1 << 16,
                  rig.engine->achieved_privacy() * 1.5,
                  /*check_interval=*/256));
  rig.engine->AttachPrivacyMonitor(&monitor);

  crypto::SecureRandom workload(102);
  Result<analysis::PrivacyReport> report = analysis::RunPrivacyAudit(
      *rig.engine, /*num_requests=*/40000,
      [&]() { return workload.UniformInt(64); });
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->measured_c, 0.0);

  Result<double> online = monitor.Estimate();
  ASSERT_TRUE(online.ok()) << online.status();
  // Online window vs offline full-run tally of the same relocation
  // stream: within 10% of each other and of the analytic c.
  EXPECT_NEAR(*online, report->measured_c, report->measured_c * 0.10);
  EXPECT_NEAR(*online, report->analytic_c, report->analytic_c * 0.10);
  // The monitor saw (at least) every relocation the audit counted; the
  // delta is same-request evictions, which the analyzer also skips.
  EXPECT_GE(monitor.relocations(), report->relocations);
  // A healthy run never breaches its configured c.
  EXPECT_EQ(monitor.breaches(), 0u);
}

TEST(ShardedPrivacyMonitorTest, PerShardMonitorsPublishEstimates) {
  shard::ShardedPirEngine::Options options;
  options.num_pages = 256;
  options.page_size = 32;
  options.cache_pages = 8;
  options.privacy_c = 2.0;
  options.shards = 2;
  options.queue_depth = 1024;
  options.seed = 13;
  auto engine = shard::ShardedPirEngine::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());

  MetricsRegistry registry;
  (*engine)->EnablePrivacyMonitor(&registry, /*window=*/1 << 16);
  workload::UniformWorkload wl(options.num_pages, 77);
  for (int i = 0; i < 6000; ++i) {
    ASSERT_TRUE((*engine)->Retrieve(wl.Next()).ok());
  }
  (*engine)->WaitIdle();
  (*engine)->PublishPrivacyEstimates();

  // Every shard converged to a sane window estimate at/below ~c (cover
  // traffic keeps each shard's stream uniform, so the window estimate
  // sits near the analytic value; allow generous sampling slack).
  for (uint64_t s = 0; s < options.shards; ++s) {
    PrivacyMonitor* monitor = (*engine)->shard_monitor(s);
    ASSERT_NE(monitor, nullptr);
    Result<double> estimate = monitor->Estimate();
    ASSERT_TRUE(estimate.ok()) << "shard " << s << ": "
                               << estimate.status();
    EXPECT_GE(*estimate, 1.0);
    EXPECT_LT(*estimate, (*engine)->plan().worst_c() * 1.3);
  }

  // The shared gauge and fleet counters surfaced in the registry.
  const MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_gauge = false;
  for (const auto& g : snapshot.gauges) {
    if (g.name == "shpir_privacy_c_estimate") {
      saw_gauge = true;
      EXPECT_GT(g.value, 0.0);
    }
  }
  EXPECT_TRUE(saw_gauge);
  uint64_t relocations = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name == "shpir_privacy_relocations_total") {
      relocations = c.value;
    }
  }
  EXPECT_GT(relocations, 0u);
  (*engine)->Drain();
}

TEST(PrivacyMonitorTest, MidWindowBlockSizeChangeRebasesCleanly) {
  // An online retune changes the scan period mid-window: the monitor
  // must discard the old-period samples (no stale estimate), start a
  // fresh window under the new period, and never manufacture a breach
  // out of the transition itself.
  Rig rig = Rig::Make(/*n=*/64, /*m=*/8, /*k=*/16, /*seed=*/31);
  ASSERT_EQ(rig.engine->scan_period(), 4u);
  // The bound sits above the analytic c of BOTH periods (k=16 -> 1.49,
  // k=8 -> 2.55): any breach counted in this test is spurious.
  PrivacyMonitor monitor(
      MakeOptions(rig.engine->scan_period(), /*window=*/1 << 14,
                  /*configured_c=*/4.0, /*check_interval=*/64));
  rig.engine->AttachPrivacyMonitor(&monitor);

  crypto::SecureRandom workload(32);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(workload.UniformInt(64)).ok());
  }
  Result<double> before = monitor.Estimate();
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_NEAR(*before, std::pow(8.0 / 7.0, 3), *before * 0.25);
  EXPECT_EQ(monitor.breaches(), 0u);

  // Retune 16 -> 8 and drive it across the scan-period boundary.
  ASSERT_TRUE(rig.engine->RequestBlockSize(8).ok());
  for (int i = 0; rig.engine->block_size_transitions() == 0 && i < 64;
       ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(workload.UniformInt(64)).ok());
  }
  ASSERT_EQ(rig.engine->block_size_transitions(), 1u);

  // The monitor rebased with the engine: new period, window discarded.
  EXPECT_EQ(monitor.scan_period(), 8u);
  EXPECT_EQ(monitor.rebases(), 1u);
  // No stale window: the estimate is unavailable again until every
  // new-period bin has samples — old-period data cannot leak through.
  EXPECT_FALSE(monitor.Estimate().ok());
  EXPECT_EQ(monitor.breaches(), 0u);

  // Refill under the new period: the estimate converges to the k=8
  // analytic value, and the transition never latched a breach.
  for (int i = 0; i < 8000; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(workload.UniformInt(64)).ok());
  }
  Result<double> after = monitor.Estimate();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NEAR(*after, std::pow(8.0 / 7.0, 7), *after * 0.25);
  EXPECT_EQ(monitor.breaches(), 0u);
  EXPECT_EQ(monitor.rebases(), 1u);
}

TEST(PrivacyMonitorTest, RebaseToSamePeriodIsANoOp) {
  PrivacyMonitor monitor(MakeOptions(/*scan_period=*/4, /*window=*/64));
  Feed(monitor, 1, 0, 1);
  Feed(monitor, 2, 0, 2);
  monitor.OnScanPeriodChange(4);
  EXPECT_EQ(monitor.rebases(), 0u);
  EXPECT_EQ(monitor.relocations(), 2u);
}

}  // namespace
}  // namespace shpir::obs
