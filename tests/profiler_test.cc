#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "hardware/coprocessor.h"
#include "obs/metrics.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace shpir::obs {
namespace {

using storage::Page;
using storage::PageId;

Profiler::Options SteadyClockOptions(uint64_t sample_every = 1) {
  Profiler::Options options;
  options.sample_every = sample_every;
  // Deterministic backend: tests must not depend on whether the host
  // grants perf_event_open.
  options.use_hw_counters = false;
  return options;
}

TEST(ProfilerTest, HeadSamplingIsExactlyOneInN) {
  Profiler profiler(SteadyClockOptions(4));
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    if (profiler.SampleQuery()) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 25);
  EXPECT_EQ(profiler.queries(), 100u);
  EXPECT_EQ(profiler.sampled(), 25u);
}

TEST(ProfilerTest, SampleEveryZeroDisablesSampling) {
  Profiler profiler(SteadyClockOptions(0));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(profiler.SampleQuery());
  }
  EXPECT_EQ(profiler.queries(), 50u);
  EXPECT_EQ(profiler.sampled(), 0u);
}

TEST(ProfilerTest, NestedFramesAggregateByPath) {
  Profiler profiler(SteadyClockOptions());
  profiler.Push("round");
  profiler.Push("decrypt");
  profiler.Pop();
  profiler.Push("reencrypt");
  profiler.Pop();
  profiler.Pop();
  profiler.Push("round");
  profiler.Push("decrypt");
  profiler.Pop();
  profiler.Pop();

  const std::vector<Profiler::StackSample> stacks = profiler.Snapshot();
  ASSERT_EQ(stacks.size(), 3u);
  // Snapshot() sorts shallow-first, then by frame pointer — both
  // leaves share the "round" prefix and precede nothing shallower.
  EXPECT_EQ(stacks[0].stack, "round");
  EXPECT_EQ(stacks[0].samples, 2u);
  uint64_t decrypt_samples = 0;
  uint64_t reencrypt_samples = 0;
  for (const Profiler::StackSample& sample : stacks) {
    if (sample.stack == "round;decrypt") {
      decrypt_samples = sample.samples;
    } else if (sample.stack == "round;reencrypt") {
      reencrypt_samples = sample.samples;
    }
  }
  EXPECT_EQ(decrypt_samples, 2u);
  EXPECT_EQ(reencrypt_samples, 1u);
}

TEST(ProfilerTest, FramesBeyondMaxDepthFoldIntoAncestor) {
  Profiler profiler(SteadyClockOptions());
  static const char* kFrames[] = {"f0", "f1", "f2", "f3", "f4",
                                  "f5", "f6", "f7", "f8", "f9"};
  for (const char* frame : kFrames) {
    profiler.Push(frame);
  }
  for (size_t i = 0; i < std::size(kFrames); ++i) {
    profiler.Pop();
  }
  // Over-deep pushes pair with their pops but never mint a path deeper
  // than kMaxDepth.
  size_t max_depth = 0;
  for (const Profiler::StackSample& sample : profiler.Snapshot()) {
    size_t depth = 1;
    for (char c : sample.stack) {
      if (c == ';') {
        ++depth;
      }
    }
    max_depth = std::max(max_depth, depth);
  }
  EXPECT_LE(max_depth, Profiler::kMaxDepth);
}

TEST(ProfilerTest, OverDeepPushesCountAsDroppedFramesAndExport) {
  Profiler profiler(SteadyClockOptions());
  MetricsRegistry registry;
  profiler.PublishMetrics(&registry);
  constexpr size_t kDepth = Profiler::kMaxDepth + 4;
  for (size_t i = 0; i < kDepth; ++i) {
    profiler.Push("deep");
  }
  for (size_t i = 0; i < kDepth; ++i) {
    profiler.Pop();
  }
  // Exactly the frames beyond the stack bound were dropped, and the
  // loss is visible on the metrics surface without a PROFILE_DUMP.
  EXPECT_EQ(profiler.frames_dropped(), 4u);
  double exported = -1;
  for (const SnapshotGauge& gauge : registry.Snapshot().gauges) {
    if (gauge.name == "shpir_profile_frames_dropped_total") {
      exported = gauge.value;
    }
  }
  EXPECT_EQ(exported, 4.0);
}

TEST(ProfilerTest, ExternalSamplesFoldIntoProfile) {
  Profiler profiler(SteadyClockOptions());
  profiler.AddExternalSample({"dispatch", "queue_wait"}, 1234);
  profiler.AddExternalSample({"dispatch", "queue_wait"}, 766);
  const std::vector<Profiler::StackSample> stacks = profiler.Snapshot();
  bool found = false;
  for (const Profiler::StackSample& sample : stacks) {
    if (sample.stack == "dispatch;queue_wait") {
      found = true;
      EXPECT_EQ(sample.samples, 2u);
      EXPECT_EQ(sample.wall_ns, 2000u);
      EXPECT_EQ(sample.cycles, 0u);  // Wall time only across threads.
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProfilerTest, CollapsedOutputIsFlameGraphCompatible) {
  Profiler profiler(SteadyClockOptions());
  profiler.AddExternalSample({"root", "leaf"}, 500);
  const std::string folded = profiler.ToCollapsed();
  EXPECT_NE(folded.find("root;leaf 500\n"), std::string::npos) << folded;
}

TEST(ProfilerTest, SteadyClockFallbackReportsBackend) {
  Profiler profiler(SteadyClockOptions());
  EXPECT_STREQ(profiler.backend(), "unattempted");
  profiler.Push("frame");
  profiler.Pop();
  EXPECT_STREQ(profiler.backend(), "steady_clock");
}

TEST(ProfilerTest, JsonDumpCarriesConfigAndStacks) {
  Profiler profiler(SteadyClockOptions(16));
  profiler.AddExternalSample({"root"}, 42);
  const std::string json = profiler.ToJson();
  EXPECT_NE(json.find("\"sample_every\":16"), std::string::npos) << json;
  EXPECT_NE(json.find("\"backend\":"), std::string::npos);
  EXPECT_NE(json.find("\"stack\":\"root\""), std::string::npos) << json;
}

TEST(ProfilerTest, PublishMetricsRegistersGauges) {
  Profiler profiler(SteadyClockOptions());
  MetricsRegistry registry;
  profiler.PublishMetrics(&registry);
  for (int i = 0; i < 10; ++i) {
    profiler.SampleQuery();
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_queries = false;
  for (const SnapshotGauge& gauge : snapshot.gauges) {
    if (gauge.name == "shpir_profile_queries_total") {
      saw_queries = true;
      EXPECT_EQ(gauge.value, 10.0);
    }
  }
  EXPECT_TRUE(saw_queries);
}

TEST(ProfilerTest, NullProfileScopeIsNoOp) {
  ProfileScope scope(nullptr, "frame");
  EXPECT_FALSE(scope.active());
}

TEST(ProfilerTest, ClearDropsStacksKeepsCounters) {
  Profiler profiler(SteadyClockOptions());
  profiler.SampleQuery();
  profiler.AddExternalSample({"root"}, 1);
  profiler.Clear();
  EXPECT_TRUE(profiler.Snapshot().empty());
  EXPECT_EQ(profiler.queries(), 1u);
}

// ---------------------------------------------------------------------------
// Trust boundary: the engine's profile SHAPE (stacks + sample counts,
// no timing) must be byte-identical whatever secret pages a query
// sequence targets — the Fig. 3 round runs the same span sequence for
// every request, and the head-sampling decision is counter-based.
// ---------------------------------------------------------------------------

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

Bytes PayloadFor(PageId id) {
  Bytes data(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>(id * 31 + i * 7 + 1);
  }
  return data;
}

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  storage::AccessTrace trace;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;
  std::unique_ptr<Profiler> profiler;
};

Rig MakeProfiledRig(uint64_t seed) {
  core::CApproxPir::Options options;
  options.num_pages = 50;
  options.page_size = kPageSize;
  options.cache_pages = 8;
  options.block_size = 8;

  Rig rig;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
  rig.tracing_disk =
      std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(hardware::HardwareProfile::Ibm4764(),
                                          rig.tracing_disk.get(),
                                          options.page_size, seed);
  SHPIR_CHECK(cpu.ok());
  rig.cpu = std::move(cpu).value();
  Result<std::unique_ptr<core::CApproxPir>> engine =
      core::CApproxPir::Create(rig.cpu.get(), options, &rig.trace);
  SHPIR_CHECK(engine.ok());
  rig.engine = std::move(engine).value();
  std::vector<Page> pages;
  for (PageId id = 0; id < options.num_pages; ++id) {
    pages.emplace_back(id, PayloadFor(id));
  }
  SHPIR_CHECK_OK(rig.engine->Initialize(pages));
  rig.profiler = std::make_unique<Profiler>(SteadyClockOptions(1));
  rig.engine->EnableProfiling(rig.profiler.get());
  return rig;
}

TEST(ProfilerTrustBoundary, ShapeIsByteIdenticalAcrossSecretTargets) {
  Rig hot = MakeProfiledRig(/*seed=*/7);
  Rig scan = MakeProfiledRig(/*seed=*/7);

  constexpr int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    // One owner hammers a single secret page; the other scans.
    Result<Bytes> a = hot.engine->Retrieve(3);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    Result<Bytes> b = scan.engine->Retrieve(static_cast<PageId>(i % 50));
    ASSERT_TRUE(b.ok()) << b.status().ToString();
  }

  const std::string hot_shape = hot.profiler->ToCollapsedShape();
  const std::string scan_shape = scan.profiler->ToCollapsedShape();
  ASSERT_FALSE(hot_shape.empty());
  EXPECT_EQ(hot_shape, scan_shape);

  // The timing-free shape never leaks wall time either: every weight
  // in it is a sample count bounded by the query count.
  EXPECT_EQ(hot.profiler->queries(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(hot.profiler->sampled(), static_cast<uint64_t>(kQueries));
}

}  // namespace
}  // namespace shpir::obs
