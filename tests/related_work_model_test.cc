#include "model/related_work_model.h"

#include <gtest/gtest.h>

namespace shpir::model {
namespace {

const SchemeCost* Find(const std::vector<SchemeCost>& schemes,
                       const std::string& name) {
  for (const auto& scheme : schemes) {
    if (scheme.name == name) {
      return &scheme;
    }
  }
  return nullptr;
}

TEST(RelatedWorkModelTest, AllFamiliesPresent) {
  const auto schemes = CompareSchemes(1000000, 10000, 145);
  EXPECT_EQ(schemes.size(), 5u);
  for (const char* name :
       {"trivial", "wang06", "sqrt-oram", "pyramid-oram", "c-approx"}) {
    EXPECT_NE(Find(schemes, name), nullptr) << name;
  }
}

TEST(RelatedWorkModelTest, CApproxWorstEqualsAmortized) {
  const auto schemes = CompareSchemes(1000000, 10000, 145);
  const SchemeCost* capprox = Find(schemes, "c-approx");
  ASSERT_NE(capprox, nullptr);
  EXPECT_DOUBLE_EQ(capprox->worst_case_pages, capprox->amortized_pages);
  EXPECT_DOUBLE_EQ(capprox->amortized_pages, 2.0 * 146);
  EXPECT_FALSE(capprox->perfect_privacy);
}

TEST(RelatedWorkModelTest, PerfectPrivacySchemesHaveLinearWorstCase) {
  const uint64_t n = 1000000;
  const auto schemes = CompareSchemes(n, 10000, 145);
  for (const char* name : {"wang06", "sqrt-oram", "pyramid-oram"}) {
    const SchemeCost* scheme = Find(schemes, name);
    ASSERT_NE(scheme, nullptr);
    EXPECT_TRUE(scheme->perfect_privacy);
    EXPECT_GE(scheme->worst_case_pages, static_cast<double>(n)) << name;
    EXPECT_LT(scheme->amortized_pages, static_cast<double>(n)) << name;
  }
}

TEST(RelatedWorkModelTest, WangAmortizedMatchesFormula) {
  // 1 page/query + 2n-page reshuffle every m queries.
  const auto schemes = CompareSchemes(1000, 100, 10);
  const SchemeCost* wang = Find(schemes, "wang06");
  ASSERT_NE(wang, nullptr);
  EXPECT_DOUBLE_EQ(wang->amortized_pages, 1.0 + 2.0 * 1000 / 100);
}

TEST(RelatedWorkModelTest, PagesToSecondsStructure) {
  hardware::HardwareProfile profile = hardware::HardwareProfile::Ibm4764();
  // 1 page of 1KB with 0 seeks: transfer + link + crypto terms.
  const double seconds = PagesToSeconds(1.0, 1000, 0, profile);
  EXPECT_NEAR(seconds, 1000.0 * (1 / 100e6 + 1 / 80e6 + 1 / 10e6), 1e-12);
  // Seeks add linearly.
  EXPECT_NEAR(PagesToSeconds(1.0, 1000, 4, profile) - seconds, 0.02,
              1e-12);
}

TEST(RelatedWorkModelTest, BiggerDatabasesWidenTheGap) {
  const auto small = CompareSchemes(1000000, 10000, 145);
  const auto big = CompareSchemes(100000000, 1000000, 145);
  const double small_gap =
      Find(small, "pyramid-oram")->worst_case_pages /
      Find(small, "c-approx")->worst_case_pages;
  const double big_gap = Find(big, "pyramid-oram")->worst_case_pages /
                         Find(big, "c-approx")->worst_case_pages;
  EXPECT_GT(big_gap, small_gap);
}

}  // namespace
}  // namespace shpir::model
