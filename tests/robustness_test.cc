// Decode-robustness: every parser in the library must reject random or
// mutated inputs with an error — never crash, never accept garbage.

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/blob_cipher.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"
#include "net/secure_channel.h"
#include "net/wire.h"
#include "storage/disk.h"
#include "storage/page_cipher.h"

namespace shpir {
namespace {

constexpr int kFuzzIterations = 500;

TEST(RobustnessTest, WireDecodeSurvivesRandomFrames) {
  crypto::SecureRandom rng(1);
  for (int i = 0; i < kFuzzIterations; ++i) {
    Bytes frame(rng.UniformInt(64));
    rng.Fill(frame);
    // Must not crash; may succeed only with a valid op byte.
    (void)net::DecodeRequest(frame);
    (void)net::DecodeResponse(frame);
  }
}

TEST(RobustnessTest, PageCipherRejectsRandomBlobs) {
  auto cipher = storage::PageCipher::Create(Bytes(32, 1), Bytes(32, 2), 64);
  ASSERT_TRUE(cipher.ok());
  crypto::SecureRandom rng(2);
  for (int i = 0; i < kFuzzIterations; ++i) {
    Bytes blob(cipher->sealed_size());
    rng.Fill(blob);
    EXPECT_FALSE(cipher->Open(blob).ok()) << i;
  }
}

TEST(RobustnessTest, BlobCipherRejectsRandomBlobs) {
  auto cipher = crypto::BlobCipher::Create(Bytes(32, 1), Bytes(32, 2));
  ASSERT_TRUE(cipher.ok());
  crypto::SecureRandom rng(3);
  for (int i = 0; i < kFuzzIterations; ++i) {
    Bytes blob(crypto::BlobCipher::kOverhead + rng.UniformInt(100));
    rng.Fill(blob);
    EXPECT_FALSE(cipher->Open(blob).ok()) << i;
  }
}

TEST(RobustnessTest, SecureSessionRejectsRandomRecords) {
  auto session = net::SecureSession::Establish(
      Bytes(32, 1), net::SecureSession::Role::kServer, Bytes(16, 2),
      Bytes(16, 3));
  ASSERT_TRUE(session.ok());
  crypto::SecureRandom rng(4);
  for (int i = 0; i < kFuzzIterations; ++i) {
    Bytes record(rng.UniformInt(128));
    rng.Fill(record);
    EXPECT_FALSE(session->Open(record).ok()) << i;
  }
}

TEST(RobustnessTest, StateRestoreSurvivesMutations) {
  constexpr size_t kPageSize = 16;
  constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
  core::CApproxPir::Options options;
  options.num_pages = 20;
  options.page_size = kPageSize;
  options.cache_pages = 3;
  options.block_size = 4;
  auto slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());

  // Produce a valid state blob.
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 5);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());
  const Bytes state = *(*engine)->SerializeState();

  crypto::SecureRandom rng(6);
  for (int i = 0; i < 200; ++i) {
    Bytes mutated = state;
    // Flip 1-4 random bytes (never leaves the blob well-formed unless
    // it hits a don't-care bit; either outcome must be handled without
    // crashing or corrupting later restores).
    const int flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] ^=
          static_cast<uint8_t>(1 + rng.UniformInt(255));
    }
    storage::MemoryDisk d(*slots, kSealedSize);
    auto c = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), &d, kPageSize, 5);
    SHPIR_CHECK(c.ok());
    auto e = core::CApproxPir::Create(c->get(), options);
    SHPIR_CHECK(e.ok());
    (void)(*e)->RestoreState(mutated);  // Must not crash.
  }
}

TEST(RobustnessTest, IndexesRejectCorruptedMetaPages) {
  constexpr size_t kPageSize = 128;
  class OnePageEngine : public core::PirEngine {
   public:
    explicit OnePageEngine(Bytes data) : data_(std::move(data)) {}
    Result<Bytes> Retrieve(storage::PageId id) override {
      if (id != 0) {
        return NotFoundError("only page 0");
      }
      return data_;
    }
    uint64_t num_pages() const override { return 1; }
    size_t page_size() const override { return kPageSize; }
    const char* name() const override { return "one"; }

   private:
    Bytes data_;
  };

  crypto::SecureRandom rng(7);
  for (int i = 0; i < 100; ++i) {
    Bytes meta(kPageSize);
    rng.Fill(meta);
    OnePageEngine engine(meta);
    EXPECT_FALSE(index::BPlusTree::Open(&engine).ok());
    EXPECT_FALSE(index::HashIndex::Open(&engine).ok());
  }
}

TEST(RobustnessTest, HexDecodeSurvivesRandomStrings) {
  crypto::SecureRandom rng(8);
  for (int i = 0; i < kFuzzIterations; ++i) {
    std::string s;
    const uint64_t len = rng.UniformInt(32);
    for (uint64_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.UniformInt(256)));
    }
    (void)HexDecode(s);  // Must not crash.
  }
}

}  // namespace
}  // namespace shpir
