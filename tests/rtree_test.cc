#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::index {
namespace {

using storage::Page;

constexpr size_t kPageSize = 256;

class PlainEngine : public core::PirEngine {
 public:
  explicit PlainEngine(std::vector<Page> pages) : pages_(std::move(pages)) {}
  Result<Bytes> Retrieve(storage::PageId id) override {
    if (id >= pages_.size()) {
      return NotFoundError("no such page");
    }
    return pages_[id].data;
  }
  uint64_t num_pages() const override { return pages_.size(); }
  size_t page_size() const override { return kPageSize; }
  const char* name() const override { return "plain"; }

 private:
  std::vector<Page> pages_;
};

std::vector<SpatialEntry> RandomPoints(uint64_t n, uint64_t seed,
                                       uint32_t extent = 10000) {
  crypto::SecureRandom rng(seed);
  std::vector<SpatialEntry> points(n);
  for (uint64_t i = 0; i < n; ++i) {
    points[i] = SpatialEntry{static_cast<uint32_t>(rng.UniformInt(extent)),
                             static_cast<uint32_t>(rng.UniformInt(extent)),
                             i};
  }
  return points;
}

std::unique_ptr<RTree> BuildTree(const std::vector<SpatialEntry>& points,
                                 std::unique_ptr<PlainEngine>& engine_out) {
  RTreeBuilder builder(kPageSize);
  auto pages = builder.Build(points);
  SHPIR_CHECK(pages.ok());
  engine_out = std::make_unique<PlainEngine>(std::move(pages).value());
  auto tree = RTree::Open(engine_out.get());
  SHPIR_CHECK(tree.ok());
  return std::move(tree).value();
}

TEST(RTreeTest, RangeSearchMatchesBruteForce) {
  const auto points = RandomPoints(2000, 1);
  std::unique_ptr<PlainEngine> engine;
  auto tree = BuildTree(points, engine);
  EXPECT_EQ(tree->num_entries(), 2000u);
  crypto::SecureRandom rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t x1 = rng.UniformInt(10000), x2 = rng.UniformInt(10000);
    const uint32_t y1 = rng.UniformInt(10000), y2 = rng.UniformInt(10000);
    const Rect window{std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                      std::max(y1, y2)};
    auto found = tree->RangeSearch(window);
    ASSERT_TRUE(found.ok());
    std::vector<uint64_t> got;
    for (const auto& e : *found) {
      got.push_back(e.value);
    }
    std::vector<uint64_t> expected;
    for (const auto& p : points) {
      if (window.Contains(p.x, p.y)) {
        expected.push_back(p.value);
      }
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(RTreeTest, NearestNeighborsMatchBruteForce) {
  const auto points = RandomPoints(1500, 3);
  std::unique_ptr<PlainEngine> engine;
  auto tree = BuildTree(points, engine);
  crypto::SecureRandom rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t qx = rng.UniformInt(10000);
    const uint32_t qy = rng.UniformInt(10000);
    const size_t k = 1 + rng.UniformInt(10);
    auto found = tree->NearestNeighbors(qx, qy, k);
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(found->size(), k);
    // Brute-force distances.
    auto dist2 = [&](const SpatialEntry& p) {
      const double dx = static_cast<double>(p.x) - qx;
      const double dy = static_cast<double>(p.y) - qy;
      return dx * dx + dy * dy;
    };
    std::vector<double> all;
    for (const auto& p : points) {
      all.push_back(dist2(p));
    }
    std::sort(all.begin(), all.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(dist2((*found)[i]), all[i])
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(RTreeTest, NearestNeighborVisitsFewPages) {
  const auto points = RandomPoints(5000, 5);
  std::unique_ptr<PlainEngine> engine;
  auto tree = BuildTree(points, engine);
  const uint64_t before = tree->retrievals();
  ASSERT_TRUE(tree->NearestNeighbors(5000, 5000, 5).ok());
  const uint64_t fetched = tree->retrievals() - before;
  // Branch-and-bound should touch a tiny fraction of the index.
  EXPECT_LT(fetched, 30u);
  EXPECT_GE(fetched, tree->height());
}

TEST(RTreeTest, DegenerateCases) {
  std::unique_ptr<PlainEngine> engine;
  // Empty.
  auto empty = BuildTree({}, engine);
  EXPECT_EQ(empty->num_entries(), 0u);
  EXPECT_TRUE(empty->RangeSearch(Rect{0, 0, 100, 100})->empty());
  EXPECT_TRUE(empty->NearestNeighbors(1, 1, 3)->empty());
  // Single point.
  std::unique_ptr<PlainEngine> engine2;
  auto one = BuildTree({SpatialEntry{7, 9, 42}}, engine2);
  auto nn = one->NearestNeighbors(0, 0, 1);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->size(), 1u);
  EXPECT_EQ((*nn)[0].value, 42u);
  // Duplicate coordinates.
  std::unique_ptr<PlainEngine> engine3;
  auto dup = BuildTree(
      {SpatialEntry{5, 5, 1}, SpatialEntry{5, 5, 2}, SpatialEntry{5, 5, 3}},
      engine3);
  EXPECT_EQ(dup->RangeSearch(Rect{5, 5, 5, 5})->size(), 3u);
}

TEST(RTreeTest, ExtremeCoordinates) {
  std::vector<SpatialEntry> points = {
      SpatialEntry{0, 0, 1},
      SpatialEntry{UINT32_MAX, UINT32_MAX, 2},
      SpatialEntry{0, UINT32_MAX, 3},
      SpatialEntry{UINT32_MAX, 0, 4},
  };
  std::unique_ptr<PlainEngine> engine;
  auto tree = BuildTree(points, engine);
  auto nn = tree->NearestNeighbors(UINT32_MAX, UINT32_MAX, 1);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ((*nn)[0].value, 2u);
  EXPECT_EQ(tree->RangeSearch(Rect{0, 0, UINT32_MAX, UINT32_MAX})->size(),
            4u);
}

TEST(RTreeTest, OpenRejectsGarbage) {
  std::vector<Page> pages = {Page(0, Bytes(kPageSize, 0x9a))};
  PlainEngine engine(std::move(pages));
  EXPECT_FALSE(RTree::Open(&engine).ok());
  EXPECT_FALSE(RTree::Open(nullptr).ok());
}

TEST(RTreeTest, WorksOverCApproxPir) {
  const auto points = RandomPoints(800, 6);
  RTreeBuilder builder(kPageSize);
  auto pages = builder.Build(points);
  ASSERT_TRUE(pages.ok());

  core::CApproxPir::Options options;
  options.num_pages = pages->size();
  options.page_size = kPageSize;
  options.cache_pages = 16;
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 7);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize(*pages).ok());

  auto tree = RTree::Open(engine->get());
  ASSERT_TRUE(tree.ok());
  auto nn = (*tree)->NearestNeighbors(4000, 4000, 3);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->size(), 3u);
  auto range = (*tree)->RangeSearch(Rect{0, 0, 2000, 2000});
  ASSERT_TRUE(range.ok());
  // Spot-verify against brute force.
  size_t expected = 0;
  for (const auto& p : points) {
    if (p.x <= 2000 && p.y <= 2000) {
      ++expected;
    }
  }
  EXPECT_EQ(range->size(), expected);
}

}  // namespace
}  // namespace shpir::index
