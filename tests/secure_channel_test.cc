#include "net/secure_channel.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "net/pir_service.h"
#include "storage/disk.h"

namespace shpir::net {
namespace {

struct SessionPair {
  SecureSession client;
  SecureSession server;
};

SessionPair MakePair(const Bytes& psk = Bytes(32, 0x42)) {
  crypto::SecureRandom rng(1);
  Bytes client_nonce(SecureSession::kNonceSize);
  Bytes server_nonce(SecureSession::kNonceSize);
  rng.Fill(client_nonce);
  rng.Fill(server_nonce);
  Result<SecureSession> client = SecureSession::Establish(
      psk, SecureSession::Role::kClient, client_nonce, server_nonce);
  Result<SecureSession> server = SecureSession::Establish(
      psk, SecureSession::Role::kServer, client_nonce, server_nonce);
  SHPIR_CHECK(client.ok());
  SHPIR_CHECK(server.ok());
  return SessionPair{std::move(client).value(), std::move(server).value()};
}

TEST(SecureSessionTest, BidirectionalRoundTrip) {
  SessionPair pair = MakePair();
  const Bytes request = {1, 2, 3, 4, 5};
  Result<Bytes> sealed = pair.client.Seal(request);
  ASSERT_TRUE(sealed.ok());
  Result<Bytes> opened = pair.server.Open(*sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, request);

  const Bytes response = {9, 8, 7};
  Result<Bytes> sealed_back = pair.server.Seal(response);
  ASSERT_TRUE(sealed_back.ok());
  Result<Bytes> opened_back = pair.client.Open(*sealed_back);
  ASSERT_TRUE(opened_back.ok());
  EXPECT_EQ(*opened_back, response);
}

TEST(SecureSessionTest, ManyMessagesKeepSequence) {
  SessionPair pair = MakePair();
  for (int i = 0; i < 100; ++i) {
    Bytes msg(10, static_cast<uint8_t>(i));
    Result<Bytes> sealed = pair.client.Seal(msg);
    ASSERT_TRUE(sealed.ok());
    Result<Bytes> opened = pair.server.Open(*sealed);
    ASSERT_TRUE(opened.ok()) << i << ": " << opened.status();
    EXPECT_EQ(*opened, msg);
  }
  EXPECT_EQ(pair.client.send_sequence(), 100u);
  EXPECT_EQ(pair.server.recv_sequence(), 100u);
}

TEST(SecureSessionTest, ReplayRejected) {
  SessionPair pair = MakePair();
  Bytes sealed = *pair.client.Seal(Bytes{1});
  ASSERT_TRUE(pair.server.Open(sealed).ok());
  Result<Bytes> replayed = pair.server.Open(sealed);
  EXPECT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
}

TEST(SecureSessionTest, ReorderingRejected) {
  SessionPair pair = MakePair();
  Bytes first = *pair.client.Seal(Bytes{1});
  Bytes second = *pair.client.Seal(Bytes{2});
  EXPECT_FALSE(pair.server.Open(second).ok());
  // The in-order record still works.
  EXPECT_TRUE(pair.server.Open(first).ok());
}

TEST(SecureSessionTest, TamperingRejected) {
  SessionPair pair = MakePair();
  Bytes sealed = *pair.client.Seal(Bytes(32, 0x11));
  for (size_t pos : {size_t{0}, size_t{10}, sealed.size() - 1}) {
    Bytes tampered = sealed;
    tampered[pos] ^= 1;
    EXPECT_FALSE(pair.server.Open(tampered).ok()) << pos;
  }
}

TEST(SecureSessionTest, WrongPskCannotTalk) {
  crypto::SecureRandom rng(2);
  Bytes cn(16), sn(16);
  rng.Fill(cn);
  rng.Fill(sn);
  auto client = SecureSession::Establish(Bytes(32, 0x01),
                                         SecureSession::Role::kClient, cn, sn);
  auto server = SecureSession::Establish(Bytes(32, 0x02),
                                         SecureSession::Role::kServer, cn, sn);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(server.ok());
  Bytes sealed = *client->Seal(Bytes{1, 2, 3});
  EXPECT_FALSE(server->Open(sealed).ok());
}

TEST(SecureSessionTest, DirectionsUseDistinctKeys) {
  SessionPair pair = MakePair();
  // A record sealed by the client must not open as a server record on
  // the client itself (directional keys differ).
  Bytes sealed = *pair.client.Seal(Bytes{5});
  EXPECT_FALSE(pair.client.Open(sealed).ok());
}

TEST(SecureSessionTest, Validation) {
  EXPECT_FALSE(SecureSession::Establish(Bytes{}, SecureSession::Role::kClient,
                                        Bytes(16, 0), Bytes(16, 0))
                   .ok());
  EXPECT_FALSE(SecureSession::Establish(Bytes(32, 1),
                                        SecureSession::Role::kClient,
                                        Bytes(15, 0), Bytes(16, 0))
                   .ok());
}

TEST(PirServiceTest, EndToEndThreePartyModel) {
  // Full Fig. 1: client <-> (relay) <-> secure hardware hosting the
  // engine. The relay (this test) sees only sealed records.
  constexpr size_t kPageSize = 32;
  core::CApproxPir::Options options;
  options.num_pages = 30;
  options.page_size = kPageSize;
  options.cache_pages = 4;
  options.block_size = 5;
  options.insert_reserve = 4;
  auto slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 3);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  std::vector<storage::Page> pages;
  for (uint64_t id = 0; id < 30; ++id) {
    pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id + 1)));
  }
  ASSERT_TRUE((*engine)->Initialize(pages).ok());

  SessionPair sessions = MakePair();
  PirServiceServer server(engine->get(), std::move(sessions.server));
  PirServiceClient client(
      std::move(sessions.client),
      [&server](ByteSpan record) { return server.HandleRecord(record); });

  // Retrieve.
  Result<Bytes> data = client.Retrieve(7);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, Bytes(kPageSize, 8));
  // Modify.
  ASSERT_TRUE(client.Modify(7, Bytes(kPageSize, 0xEE)).ok());
  EXPECT_EQ(*client.Retrieve(7), Bytes(kPageSize, 0xEE));
  // Insert.
  Result<storage::PageId> id = client.Insert(Bytes(kPageSize, 0xAB));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*client.Retrieve(*id), Bytes(kPageSize, 0xAB));
  // Remove.
  ASSERT_TRUE(client.Remove(3).ok());
  Result<Bytes> gone = client.Retrieve(3);
  EXPECT_FALSE(gone.ok());
  EXPECT_NE(gone.status().message().find("NOT_FOUND"), std::string::npos);
}

TEST(PirServiceTest, MalformedRecordsRejected) {
  constexpr size_t kPageSize = 32;
  core::CApproxPir::Options options;
  options.num_pages = 10;
  options.page_size = kPageSize;
  options.cache_pages = 2;
  options.block_size = 2;
  auto slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 4);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());

  SessionPair sessions = MakePair();
  PirServiceServer server(engine->get(), std::move(sessions.server));
  // Garbage that is not even a valid record.
  EXPECT_FALSE(server.HandleRecord(Bytes(3, 0)).ok());
  EXPECT_FALSE(server.HandleRecord(Bytes(100, 0x55)).ok());
}

}  // namespace
}  // namespace shpir::net
