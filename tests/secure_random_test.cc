#include "crypto/secure_random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/bytes.h"

namespace shpir::crypto {
namespace {

TEST(SecureRandomTest, DeterministicSeedsReproduce) {
  SecureRandom a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SecureRandomTest, DifferentSeedsDiffer) {
  SecureRandom a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(SecureRandomTest, FillCoversArbitraryLengths) {
  SecureRandom rng(3);
  // Fill in odd-sized chunks must match one big fill from the same seed.
  Bytes big(257);
  SecureRandom rng2(3);
  rng2.Fill(big);
  Bytes pieced;
  for (size_t chunk : {1u, 7u, 64u, 63u, 122u}) {
    Bytes piece(chunk);
    rng.Fill(piece);
    pieced.insert(pieced.end(), piece.begin(), piece.end());
  }
  ASSERT_EQ(pieced.size(), big.size());
  EXPECT_EQ(pieced, big);
}

TEST(SecureRandomTest, UniformIntStaysInRange) {
  SecureRandom rng(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 100ull, 1ull << 33}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(SecureRandomTest, UniformIntBoundOneIsAlwaysZero) {
  SecureRandom rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.UniformInt(1), 0u);
  }
}

TEST(SecureRandomTest, UniformIntIsRoughlyUniform) {
  SecureRandom rng(17);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.UniformInt(kBound)]++;
  }
  ASSERT_EQ(counts.size(), kBound);
  // Each bucket expects 10000; allow 10% deviation (well beyond 5 sigma).
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 9000) << "value " << value;
    EXPECT_LT(count, 11000) << "value " << value;
  }
}

TEST(SecureRandomTest, UniformDoubleInUnitInterval) {
  SecureRandom rng(23);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(SecureRandomTest, EntropySeededInstancesDiffer) {
  SecureRandom a, b;
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(SecureRandomTest, ByteValuesCoverFullRange) {
  SecureRandom rng(31);
  Bytes data(65536);
  rng.Fill(data);
  std::set<uint8_t> seen(data.begin(), data.end());
  EXPECT_EQ(seen.size(), 256u);
}

}  // namespace
}  // namespace shpir::crypto
