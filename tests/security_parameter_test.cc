#include "core/security_parameter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace shpir::core {
namespace {

TEST(SecurityParameterTest, PaperSpotCheck1GB) {
  // §5: 1GB database (n = 1e6), m = 50000, c = 2 gives k ~= 29
  // (log(1/2)/log(1-1/50000) + 1 = 34658.3; 1e6 / 34658.3 = 28.85).
  Result<uint64_t> k = SecurityParameter::BlockSize(1000000, 50000, 2.0);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 29u);
}

TEST(SecurityParameterTest, PaperSpotCheck10GB) {
  // §5: 10GB (n = 1e7) with m = 20000 gives k ~= 722, producing the
  // quoted 197ms with one coprocessor.
  Result<uint64_t> k = SecurityParameter::BlockSize(10000000, 20000, 2.0);
  ASSERT_TRUE(k.ok());
  EXPECT_NEAR(static_cast<double>(*k), 722.0, 2.0);
}

TEST(SecurityParameterTest, CEqualsOneMeansWholeDatabase) {
  Result<uint64_t> k = SecurityParameter::BlockSize(1000, 10, 1.0);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 1000u);
}

TEST(SecurityParameterTest, LargerCacheMeansSmallerBlocks) {
  uint64_t prev = UINT64_MAX;
  for (uint64_t m : {100u, 1000u, 10000u, 100000u}) {
    Result<uint64_t> k = SecurityParameter::BlockSize(1000000, m, 2.0);
    ASSERT_TRUE(k.ok());
    EXPECT_LT(*k, prev) << "m=" << m;
    prev = *k;
  }
}

TEST(SecurityParameterTest, StricterPrivacyMeansLargerBlocks) {
  uint64_t prev = 0;
  for (double c : {2.0, 1.5, 1.1, 1.05, 1.01}) {
    Result<uint64_t> k = SecurityParameter::BlockSize(1000000, 50000, c);
    ASSERT_TRUE(k.ok());
    EXPECT_GT(*k, prev) << "c=" << c;
    prev = *k;
  }
}

TEST(SecurityParameterTest, PrivacyOfInvertsBlockSize) {
  // The c actually achieved by the k from Eq. 6 must be at most the
  // requested c (k was rounded up).
  for (double c : {1.05, 1.1, 1.5, 2.0, 4.0}) {
    for (uint64_t m : {1000u, 50000u}) {
      const uint64_t n = 1000000;
      Result<uint64_t> k = SecurityParameter::BlockSize(n, m, c);
      ASSERT_TRUE(k.ok());
      Result<double> achieved = SecurityParameter::PrivacyOf(n, m, *k);
      ASSERT_TRUE(achieved.ok());
      EXPECT_LE(*achieved, c * 1.0001) << "c=" << c << " m=" << m;
      EXPECT_GT(*achieved, 1.0);
    }
  }
}

TEST(SecurityParameterTest, InvalidInputsRejected) {
  EXPECT_FALSE(SecurityParameter::BlockSize(1, 10, 2.0).ok());
  EXPECT_FALSE(SecurityParameter::BlockSize(100, 1, 2.0).ok());
  EXPECT_FALSE(SecurityParameter::BlockSize(100, 10, 0.5).ok());
  EXPECT_FALSE(SecurityParameter::PrivacyOf(100, 10, 0).ok());
  EXPECT_FALSE(SecurityParameter::PrivacyOf(100, 10, 101).ok());
  EXPECT_FALSE(SecurityParameter::PrivacyOf(100, 1, 10).ok());
}

TEST(SecurityParameterTest, ScanPeriod) {
  EXPECT_EQ(SecurityParameter::ScanPeriod(100, 10), 10u);
  EXPECT_EQ(SecurityParameter::ScanPeriod(101, 10), 11u);
  EXPECT_EQ(SecurityParameter::ScanPeriod(10, 10), 1u);
}

TEST(SecurityParameterTest, EvictionProbabilitySumsToOne) {
  // Eq. 1 is a geometric distribution; partial sums approach 1.
  const uint64_t m = 50;
  double sum = 0;
  for (uint64_t t = 1; t <= 5000; ++t) {
    sum += SecurityParameter::EvictionProbability(m, t);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SecurityParameterTest, EvictionProbabilityDecreasesInT) {
  const uint64_t m = 10;
  double prev = 1.0;
  for (uint64_t t = 1; t <= 20; ++t) {
    const double p = SecurityParameter::EvictionProbability(m, t);
    EXPECT_LT(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(SecurityParameter::EvictionProbability(m, 1), 0.1);
}

TEST(SecurityParameterTest, BlockDistributionSumsToOne) {
  for (uint64_t m : {10u, 100u}) {
    for (uint64_t T : {2u, 10u, 50u}) {
      const std::vector<double> dist =
          SecurityParameter::BlockDistribution(m, 7, T);
      ASSERT_EQ(dist.size(), T);
      double sum = 0;
      for (double p : dist) {
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "m=" << m << " T=" << T;
    }
  }
}

TEST(SecurityParameterTest, LocationProbabilityRatioEqualsC) {
  // Definition 1: the max/min location-probability ratio is exactly the
  // c from Eq. 5.
  const uint64_t n = 10000, m = 100, k = 250;
  const uint64_t T = SecurityParameter::ScanPeriod(n, k);
  const double hi = SecurityParameter::LocationProbability(m, k, T, 1);
  const double lo = SecurityParameter::LocationProbability(m, k, T, T);
  Result<double> c = SecurityParameter::PrivacyOf(n, m, k);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(hi / lo, *c, 1e-9);
}

TEST(SecurityParameterTest, LocationProbabilityMonotoneDecreasing) {
  const uint64_t m = 50, k = 10, T = 20;
  double prev = 1.0;
  for (uint64_t b = 1; b <= T; ++b) {
    const double p = SecurityParameter::LocationProbability(m, k, T, b);
    EXPECT_LT(p, prev) << "b=" << b;
    prev = p;
  }
}

TEST(SecurityParameterTest, LocationProbabilityOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(SecurityParameter::LocationProbability(10, 5, 8, 0), 0.0);
  EXPECT_DOUBLE_EQ(SecurityParameter::LocationProbability(10, 5, 8, 9), 0.0);
}

class BlockSizeSweepTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t, double>> {
};

TEST_P(BlockSizeSweepTest, AchievedPrivacyNeverWorseThanRequested) {
  const auto [n, m, c] = GetParam();
  Result<uint64_t> k = SecurityParameter::BlockSize(n, m, c);
  ASSERT_TRUE(k.ok());
  EXPECT_GE(*k, 1u);
  EXPECT_LE(*k, n);
  if (*k < n) {
    Result<double> achieved = SecurityParameter::PrivacyOf(n, m, *k);
    ASSERT_TRUE(achieved.ok());
    EXPECT_LE(*achieved, c * 1.0001);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockSizeSweepTest,
    ::testing::Combine(::testing::Values(100ull, 10000ull, 1000000ull,
                                         100000000ull),
                       ::testing::Values(10ull, 1000ull, 100000ull),
                       ::testing::Values(1.01, 1.1, 1.5, 2.0, 10.0)));

}  // namespace
}  // namespace shpir::core
