#include "net/service_hub.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "net/tcp_transport.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "storage/disk.h"

namespace shpir::net {
namespace {

constexpr size_t kPageSize = 32;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;
  std::unique_ptr<ServiceHub> hub;
  Bytes psk = Bytes(32, 0x66);

  static Rig Make(uint64_t seed, obs::MetricsRegistry* metrics = nullptr) {
    core::CApproxPir::Options options;
    options.num_pages = 40;
    options.page_size = kPageSize;
    options.cache_pages = 4;
    options.block_size = 8;
    Rig rig;
    Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.disk.get(), kPageSize,
        seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto engine = core::CApproxPir::Create(rig.cpu.get(), options);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    std::vector<storage::Page> pages;
    for (uint64_t id = 0; id < 40; ++id) {
      pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id + 1)));
    }
    SHPIR_CHECK_OK(rig.engine->Initialize(pages));
    if (metrics != nullptr) {
      rig.cpu->AttachMetrics(metrics);
      rig.engine->EnableMetrics(metrics);
    }
    rig.hub = std::make_unique<ServiceHub>(rig.engine.get(), rig.psk,
                                           seed + 1, metrics);
    return rig;
  }
};

/// Connects a client through the hub's handshake.
PirServiceClient MakeClient(Rig& rig, uint64_t client_id, uint64_t seed) {
  crypto::SecureRandom rng(seed);
  Bytes nonce(SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> reply =
      rig.hub->HandleFrame(ServiceHub::MakeHello(client_id, nonce));
  SHPIR_CHECK(reply.ok());
  Result<SecureSession> session =
      ServiceHub::CompleteHandshake(*reply, rig.psk, client_id, nonce);
  SHPIR_CHECK(session.ok());
  ServiceHub* hub = rig.hub.get();
  return PirServiceClient(
      std::move(session).value(), [hub, client_id](ByteSpan record) {
        return hub->HandleFrame(ServiceHub::MakeData(client_id, record));
      });
}

TEST(ServiceHubTest, SingleClientRoundTrip) {
  Rig rig = Rig::Make(1);
  PirServiceClient client = MakeClient(rig, 101, 2);
  Result<Bytes> data = client.Retrieve(7);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, Bytes(kPageSize, 8));
  EXPECT_EQ(rig.hub->sessions(), 1u);
}

TEST(ServiceHubTest, MultipleClientsInterleave) {
  Rig rig = Rig::Make(3);
  PirServiceClient alice = MakeClient(rig, 1, 4);
  PirServiceClient bob = MakeClient(rig, 2, 5);
  EXPECT_EQ(rig.hub->sessions(), 2u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*alice.Retrieve(static_cast<uint64_t>(i)),
              Bytes(kPageSize, static_cast<uint8_t>(i + 1)));
    EXPECT_EQ(*bob.Retrieve(static_cast<uint64_t>(39 - i)),
              Bytes(kPageSize, static_cast<uint8_t>(40 - i)));
  }
}

TEST(ServiceHubTest, UnknownClientRejected) {
  Rig rig = Rig::Make(6);
  Result<Bytes> reply =
      rig.hub->HandleFrame(ServiceHub::MakeData(999, Bytes(50, 0)));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceHubTest, WrongPskClientCannotOperate) {
  Rig rig = Rig::Make(7);
  crypto::SecureRandom rng(8);
  Bytes nonce(SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> reply =
      rig.hub->HandleFrame(ServiceHub::MakeHello(55, nonce));
  ASSERT_TRUE(reply.ok());
  // Client derives its session from the WRONG psk.
  Result<SecureSession> session = ServiceHub::CompleteHandshake(
      *reply, Bytes(32, 0xBA), 55, nonce);
  ASSERT_TRUE(session.ok());
  PirServiceClient client(
      std::move(session).value(), [&](ByteSpan record) {
        return rig.hub->HandleFrame(ServiceHub::MakeData(55, record));
      });
  EXPECT_FALSE(client.Retrieve(0).ok());
}

TEST(ServiceHubTest, ClientsCannotCrossStreams) {
  Rig rig = Rig::Make(9);
  PirServiceClient alice = MakeClient(rig, 1, 10);
  ASSERT_TRUE(alice.Retrieve(0).ok());
  // Bob replays Alice's style of frame under his id without a
  // handshake-derived key for it.
  crypto::SecureRandom rng(11);
  Bytes nonce(SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> reply =
      rig.hub->HandleFrame(ServiceHub::MakeHello(2, nonce));
  ASSERT_TRUE(reply.ok());
  // Bob (id 2) tries to decrypt/forge using Alice's client key (id 1).
  Result<SecureSession> forged = ServiceHub::CompleteHandshake(
      *reply, rig.psk, /*client_id=*/1, nonce);  // Wrong id in KDF.
  ASSERT_TRUE(forged.ok());
  PirServiceClient bob(
      std::move(forged).value(), [&](ByteSpan record) {
        return rig.hub->HandleFrame(ServiceHub::MakeData(2, record));
      });
  EXPECT_FALSE(bob.Retrieve(0).ok());
}

TEST(ServiceHubTest, MalformedFramesRejected) {
  Rig rig = Rig::Make(12);
  EXPECT_FALSE(rig.hub->HandleFrame(Bytes{}).ok());
  EXPECT_FALSE(rig.hub->HandleFrame(Bytes(5, 0)).ok());
  Bytes bad_tag(20, 0);
  bad_tag[0] = 'X';
  EXPECT_FALSE(rig.hub->HandleFrame(bad_tag).ok());
  Bytes short_hello(10, 0);
  short_hello[0] = 'H';
  EXPECT_FALSE(rig.hub->HandleFrame(short_hello).ok());
}

TEST(ServiceHubTest, FullThreePartyStackOverTcp) {
  // Fig. 1 over a real socket: the relay is a TcpFrameListener feeding
  // hub frames to the coprocessor-side ServiceHub.
  Rig rig = Rig::Make(20);
  ServiceHub* hub = rig.hub.get();
  auto listener = TcpFrameListener::Listen(
      [hub](ByteSpan frame) { return hub->HandleFrame(frame); }, 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  std::thread server_thread([&] { (*listener)->Run(); });

  {
    auto transport = TcpTransport::Connect("127.0.0.1", (*listener)->port());
    ASSERT_TRUE(transport.ok()) << transport.status();
    crypto::SecureRandom rng(21);
    Bytes nonce(SecureSession::kNonceSize);
    rng.Fill(nonce);
    Result<Bytes> reply =
        (*transport)->RoundTrip(ServiceHub::MakeHello(77, nonce));
    ASSERT_TRUE(reply.ok());
    Result<SecureSession> session =
        ServiceHub::CompleteHandshake(*reply, rig.psk, 77, nonce);
    ASSERT_TRUE(session.ok());
    Transport* wire = transport->get();
    PirServiceClient client(
        std::move(session).value(), [wire](ByteSpan record) {
          return wire->RoundTrip(ServiceHub::MakeData(77, record));
        });
    for (uint64_t id = 0; id < 10; ++id) {
      Result<Bytes> data = client.Retrieve(id);
      ASSERT_TRUE(data.ok()) << data.status();
      EXPECT_EQ(*data, Bytes(kPageSize, static_cast<uint8_t>(id + 1)));
    }
  }
  (*listener)->Stop();
  server_thread.join();
}

TEST(ServiceHubTest, RehandshakeReplacesSession) {
  Rig rig = Rig::Make(13);
  PirServiceClient first = MakeClient(rig, 7, 14);
  ASSERT_TRUE(first.Retrieve(0).ok());
  PirServiceClient second = MakeClient(rig, 7, 15);
  EXPECT_EQ(rig.hub->sessions(), 1u);
  EXPECT_TRUE(second.Retrieve(1).ok());
  // The first session's keys are gone.
  EXPECT_FALSE(first.Retrieve(2).ok());
}

TEST(ServiceHubTest, StatsOpReturnsParseableSnapshot) {
  obs::MetricsRegistry metrics;
  Rig rig = Rig::Make(30, &metrics);
  PirServiceClient client = MakeClient(rig, 44, 31);
  for (uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(client.Retrieve(id).ok());
  }
  Result<Bytes> payload = client.Stats();
  ASSERT_TRUE(payload.ok()) << payload.status();
  Result<obs::MetricsSnapshot> snapshot = obs::ParseJsonSnapshot(
      std::string(payload->begin(), payload->end()));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& c : snapshot->counters) {
      if (c.name == name) {
        return c.value;
      }
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("shpir_engine_queries_total"), 5u);
  EXPECT_EQ(counter("shpir_engine_evictions_total"), 5u);
  EXPECT_GE(counter("shpir_hw_seeks_total"), 5u * 4);
  EXPECT_GE(counter("shpir_net_data_frames_total"), 5u);
  EXPECT_EQ(counter("shpir_net_hellos_total"), 1u);

  bool found_latency = false;
  for (const auto& h : snapshot->histograms) {
    if (h.name == "shpir_engine_query_latency_ns") {
      found_latency = true;
      EXPECT_EQ(h.count, 5u);
      EXPECT_GT(h.p50, 0.0);
      EXPECT_GE(h.p99, h.p50);
    }
  }
  EXPECT_TRUE(found_latency);
}

TEST(ServiceHubTest, StatsWithoutRegistryIsAnError) {
  Rig rig = Rig::Make(33);  // No metrics registry attached.
  PirServiceClient client = MakeClient(rig, 9, 34);
  EXPECT_FALSE(client.Stats().ok());
}

// Trust-boundary assertion (docs/OBSERVABILITY.md): everything that
// crosses the STATS surface is an aggregate from a known namespace —
// no per-request page ids, request indices, or client ids can appear,
// in names or as high-cardinality name suffixes.
TEST(ServiceHubTest, StatsPayloadStaysInsideTrustBoundary) {
  obs::MetricsRegistry metrics;
  Rig rig = Rig::Make(40, &metrics);
  PirServiceClient client = MakeClient(rig, 5, 41);
  ASSERT_TRUE(client.Retrieve(1).ok());
  ASSERT_TRUE(client.Modify(2, Bytes(4, 0xAA)).ok());
  Result<Bytes> payload = client.Stats();
  ASSERT_TRUE(payload.ok()) << payload.status();
  Result<obs::MetricsSnapshot> snapshot = obs::ParseJsonSnapshot(
      std::string(payload->begin(), payload->end()));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  const std::vector<std::string> allowed_prefixes = {
      "shpir_engine_", "shpir_hw_",       "shpir_net_",  "shpir_disk_",
      "shpir_provider_", "shpir_tcp_", "shpir_shard_", "shpir_privacy_"};
  const std::vector<std::string> forbidden = {"page_id", "request_index",
                                              "client_id"};
  std::vector<std::string> names;
  for (const auto& c : snapshot->counters) {
    names.push_back(c.name);
  }
  for (const auto& g : snapshot->gauges) {
    names.push_back(g.name);
  }
  for (const auto& h : snapshot->histograms) {
    names.push_back(h.name);
  }
  EXPECT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_TRUE(obs::MetricsRegistry::IsValidName(name)) << name;
    bool prefixed = false;
    for (const std::string& prefix : allowed_prefixes) {
      if (name.rfind(prefix, 0) == 0) {
        prefixed = true;
      }
    }
    EXPECT_TRUE(prefixed) << "metric outside known namespaces: " << name;
    for (const std::string& bad : forbidden) {
      EXPECT_EQ(name.find(bad), std::string::npos)
          << "per-request identifier in metric name: " << name;
    }
  }
}

TEST(ServiceHubTest, ControlVerbsRideTheSealedSession) {
  Rig rig = Rig::Make(77);
  std::vector<ControlRequest> seen;
  rig.hub = std::make_unique<ServiceHub>(
      rig.engine.get(), rig.psk, /*rng_seed=*/78, /*metrics=*/nullptr,
      /*tracer=*/nullptr, /*profile_dump=*/nullptr, /*slo_status=*/nullptr,
      /*keyword_manifest=*/nullptr, /*event_dump=*/nullptr,
      /*incident_dump=*/nullptr, /*health=*/nullptr,
      [&seen](const ControlRequest& request) -> Result<Bytes> {
        seen.push_back(request);
        const std::string json = request.verb == ControlVerb::kFreeze
                                     ? "{\"frozen\":true}"
                                     : "{\"frozen\":false}";
        return Bytes(json.begin(), json.end());
      });
  PirServiceClient client = MakeClient(rig, 1, 900);

  Result<Bytes> status = client.ControlStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(std::string(status->begin(), status->end()),
            "{\"frozen\":false}");
  Result<Bytes> frozen = client.ControlFreeze();
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(std::string(frozen->begin(), frozen->end()),
            "{\"frozen\":true}");
  ASSERT_TRUE(client.ControlUnfreeze().ok());
  ASSERT_TRUE(client.ControlSetBounds(32, 128).ok());

  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].verb, ControlVerb::kStatus);
  EXPECT_EQ(seen[1].verb, ControlVerb::kFreeze);
  EXPECT_EQ(seen[2].verb, ControlVerb::kUnfreeze);
  EXPECT_EQ(seen[3].verb, ControlVerb::kSetBounds);
  EXPECT_EQ(seen[3].k_min, 32u);
  EXPECT_EQ(seen[3].k_max, 128u);
}

TEST(ServiceHubTest, ControlWithoutControllerIsAnError) {
  Rig rig = Rig::Make(79);
  PirServiceClient client = MakeClient(rig, 1, 901);
  Result<Bytes> status = client.ControlStatus();
  EXPECT_FALSE(status.ok());
}

// The sessions() accessor must synchronize with handshakes mutating the
// session map (it used to read without the mutex). Run under TSan.
TEST(ServiceHubTest, SessionsIsSafeAgainstConcurrentHandshakes) {
  Rig rig = Rig::Make(50);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    size_t last = 0;
    while (!done.load()) {
      const size_t now = rig.hub->sessions();
      EXPECT_GE(now, last);
      last = now;
    }
  });
  crypto::SecureRandom rng(51);
  Bytes nonce(SecureSession::kNonceSize);
  for (uint64_t client_id = 0; client_id < 64; ++client_id) {
    rng.Fill(nonce);
    ASSERT_TRUE(
        rig.hub->HandleFrame(ServiceHub::MakeHello(client_id, nonce)).ok());
  }
  done.store(true);
  reader.join();
  EXPECT_EQ(rig.hub->sessions(), 64u);
}

}  // namespace
}  // namespace shpir::net
