#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"

namespace shpir::crypto {
namespace {

std::string HashHex(const std::string& input) {
  const Sha256::Digest d =
      Sha256::Hash(ByteSpan(reinterpret_cast<const uint8_t*>(input.data()),
                            input.size()));
  return HexEncode(ByteSpan(d.data(), d.size()));
}

struct ShaVector {
  std::string name;
  std::string input;
  std::string digest_hex;
};

class Sha256KnownAnswerTest : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256KnownAnswerTest, Digest) {
  EXPECT_EQ(HashHex(GetParam().input), GetParam().digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha256KnownAnswerTest,
    ::testing::Values(
        ShaVector{"Empty", "",
                  "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b78"
                  "52b855"},
        ShaVector{"Abc", "abc",
                  "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2"
                  "0015ad"},
        ShaVector{"TwoBlocks",
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419"
                  "db06c1"},
        ShaVector{"Exactly55Bytes",
                  std::string(55, 'a'),
                  "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f"
                  "734318"},
        ShaVector{"Exactly56Bytes",
                  std::string(56, 'a'),
                  "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686e"
                  "c6738a"},
        ShaVector{"Exactly64Bytes",
                  std::string(64, 'a'),
                  "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df15"
                  "4668eb"}),
    [](const ::testing::TestParamInfo<ShaVector>& info) {
      return info.param.name;
    });

TEST(Sha256Test, MillionAs) {
  // FIPS 180-4 long-message vector.
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(ByteSpan(reinterpret_cast<const uint8_t*>(chunk.data()),
                      chunk.size()));
  }
  const Sha256::Digest d = h.Finalize();
  EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string input =
      "the quick brown fox jumps over the lazy dog and keeps running";
  // Split the input at every possible position; digests must agree.
  for (size_t split = 0; split <= input.size(); ++split) {
    Sha256 h;
    h.Update(ByteSpan(reinterpret_cast<const uint8_t*>(input.data()), split));
    h.Update(ByteSpan(reinterpret_cast<const uint8_t*>(input.data()) + split,
                      input.size() - split));
    const Sha256::Digest d = h.Finalize();
    EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())), HashHex(input))
        << "split at " << split;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 h;
  h.Update(ByteSpan(reinterpret_cast<const uint8_t*>("junk"), 4));
  h.Reset();
  h.Update(ByteSpan(reinterpret_cast<const uint8_t*>("abc"), 3));
  const Sha256::Digest d = h.Finalize();
  EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())), HashHex("abc"));
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(HashHex("abc"), HashHex("abd"));
  EXPECT_NE(HashHex(""), HashHex(std::string(1, '\0')));
}

}  // namespace
}  // namespace shpir::crypto
