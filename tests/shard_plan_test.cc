#include "shard/shard_plan.h"

#include <gtest/gtest.h>

#include "core/security_parameter.h"

namespace shpir::shard {
namespace {

TEST(ShardPlanTest, SingleShardMatchesUnshardedGeometry) {
  auto plan = ShardPlan::Compute(16384, 64, 2.0, 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->shards(), 1u);
  EXPECT_EQ(plan->spec(0).num_pages, 16384u);
  EXPECT_EQ(plan->spec(0).cache_pages, 64u);
  auto k = core::SecurityParameter::BlockSize(16384, 64, 2.0);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(plan->spec(0).block_size, *k);
  EXPECT_LE(plan->worst_c(), 2.0 + 1e-9);
}

TEST(ShardPlanTest, PerDeviceCachesShrinkBlockLinearly) {
  // Each shard gets the full per-device cache, so k_S ~ k_1 / S: the
  // throughput mechanism behind the sharded runtime.
  auto one = ShardPlan::Compute(16384, 64, 2.0, 1);
  auto four = ShardPlan::Compute(16384, 64, 2.0, 4);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  const double ratio =
      static_cast<double>(one->spec(0).block_size) /
      static_cast<double>(four->spec(0).block_size);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.5);
  // Every shard still honors the target c.
  for (const auto& spec : four->specs()) {
    EXPECT_LE(spec.achieved_c, 2.0 + 1e-9);
  }
}

TEST(ShardPlanTest, SplitCacheModeBuysNoSpeedup) {
  // Splitting one device's cache divides n and m together, which
  // leaves k essentially unchanged (Eq. 6: k ~ n / (m ln c)) — the
  // no-free-lunch case documented in docs/SHARDING.md.
  auto one = ShardPlan::Compute(16384, 64, 2.0, 1);
  auto four = ShardPlan::Compute(16384, 64, 2.0, 4,
                                 ShardPlan::CacheMode::kSplitSingleDevice);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_EQ(four->spec(0).cache_pages, 16u);
  const double ratio =
      static_cast<double>(one->spec(0).block_size) /
      static_cast<double>(four->spec(0).block_size);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.3);
}

TEST(ShardPlanTest, OwnerMappingCoversRaggedPartition) {
  // 10 pages over 3 shards: 4 + 4 + 2.
  auto plan = ShardPlan::Compute(10, 4, 2.0, 3);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->pages_per_shard(), 4u);
  EXPECT_EQ(plan->spec(0).num_pages, 4u);
  EXPECT_EQ(plan->spec(1).num_pages, 4u);
  EXPECT_EQ(plan->spec(2).num_pages, 2u);
  uint64_t covered = 0;
  for (const auto& spec : plan->specs()) {
    covered += spec.num_pages;
  }
  EXPECT_EQ(covered, 10u);
  for (storage::PageId id = 0; id < 10; ++id) {
    const uint64_t owner = plan->OwnerOf(id);
    ASSERT_LT(owner, 3u);
    const auto& spec = plan->spec(owner);
    EXPECT_GE(id, spec.first_page);
    EXPECT_LT(id, spec.first_page + spec.num_pages);
    EXPECT_EQ(plan->LocalId(id), id - spec.first_page);
  }
}

TEST(ShardPlanTest, OnePageShardIsTriviallyPrivate) {
  auto plan = ShardPlan::Compute(4, 4, 2.0, 4);
  ASSERT_TRUE(plan.ok());
  for (const auto& spec : plan->specs()) {
    EXPECT_EQ(spec.num_pages, 1u);
    EXPECT_EQ(spec.block_size, 1u);
    EXPECT_EQ(spec.achieved_c, 1.0);
  }
}

TEST(ShardPlanTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(ShardPlan::Compute(100, 8, 2.0, 0).ok());
  EXPECT_FALSE(ShardPlan::Compute(3, 8, 2.0, 4).ok());
  EXPECT_FALSE(ShardPlan::Compute(100, 8, 1.0, 2).ok());
  // Split mode: 8-page cache over 8 shards leaves 1 page per shard.
  EXPECT_FALSE(ShardPlan::Compute(100, 8, 2.0, 8,
                                  ShardPlan::CacheMode::kSplitSingleDevice)
                   .ok());
}

}  // namespace
}  // namespace shpir::shard
