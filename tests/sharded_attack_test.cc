#include "analysis/sharded_audit.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"
#include "crypto/secure_random.h"
#include "shard/sharded_engine.h"
#include "storage/page.h"

namespace shpir::analysis {
namespace {

using shard::ShardedPirEngine;
using storage::Page;
using storage::PageId;

std::unique_ptr<ShardedPirEngine> MakeEngine(uint64_t n, uint64_t shards,
                                             uint64_t seed,
                                             bool enable_traces) {
  ShardedPirEngine::Options options;
  options.num_pages = n;
  options.page_size = 32;
  options.cache_pages = 8;
  options.privacy_c = 2.0;
  options.shards = shards;
  options.queue_depth = 4096;
  options.seed = seed;
  options.enable_traces = enable_traces;
  auto engine = ShardedPirEngine::Create(options);
  SHPIR_CHECK_OK(engine.status());
  std::vector<Page> pages;
  for (PageId id = 0; id < n; ++id) {
    pages.emplace_back(id, Bytes(options.page_size,
                                 static_cast<uint8_t>(id & 0xFF)));
  }
  SHPIR_CHECK_OK((*engine)->Initialize(pages));
  return std::move(*engine);
}

TEST(ShardedAuditTest, CoverTrafficIsUniformAndCBoundHolds) {
  auto engine = MakeEngine(/*n=*/256, /*shards=*/4, /*seed=*/11,
                           /*enable_traces=*/false);
  crypto::SecureRandom workload(21);
  Result<ShardedPrivacyReport> report = RunShardedPrivacyAudit(
      *engine, /*num_logical_requests=*/6000,
      [&]() { return workload.UniformInt(256); });
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->logical_requests, 6000u);
  EXPECT_EQ(report->shards, 4u);
  ASSERT_EQ(report->per_shard.size(), 4u);
  // One query per shard per logical request: the adversary-visible
  // shard load carries no information about the target.
  EXPECT_TRUE(report->cover_uniform);
  EXPECT_EQ(report->min_shard_queries, 6000u);
  EXPECT_EQ(report->max_shard_queries, 6000u);
  // Every shard honors the configured privacy target, analytically and
  // as measured from its relocation trace.
  EXPECT_LE(report->worst_analytic_c, report->target_c + 1e-9);
  EXPECT_GT(report->worst_measured_c, 1.0);
  EXPECT_LE(report->worst_measured_c, report->target_c * 1.15);
  EXPECT_GT(report->min_slot_entropy, 0.99);
  for (const auto& shard_report : report->per_shard) {
    EXPECT_EQ(shard_report.requests, 6000u);
    EXPECT_GT(shard_report.relocations, 1000u);
  }
  engine->Drain();
}

TEST(ShardedAuditTest, LinkageAttackStaysImprecise) {
  auto engine = MakeEngine(/*n=*/128, /*shards=*/2, /*seed=*/31,
                           /*enable_traces=*/true);
  crypto::SecureRandom workload(41);
  Result<LinkageAttackReport> report = RunShardedLinkageAttack(
      *engine, /*target_shard=*/0, /*num_logical_requests=*/2000,
      [&]() { return workload.UniformInt(128); });
  ASSERT_TRUE(report.ok()) << report.status();
  // The shard saw one (real or dummy) query per logical request.
  EXPECT_EQ(report->requests, 2000u);
  EXPECT_LE(report->correct, report->guesses);
  EXPECT_LE(report->guesses, report->requests);
  EXPECT_GT(report->guesses, 50u);  // The adversary does try.
  // Cover dummies + c-approximate smearing: linking stays unreliable.
  EXPECT_LT(report->precision(), 0.5);
  engine->Drain();
}

TEST(ShardedAuditTest, FrequencyAttackIsNearChance) {
  auto engine = MakeEngine(/*n=*/128, /*shards=*/2, /*seed=*/51,
                           /*enable_traces=*/true);
  // Skewed client interest; the adversary knows the prior over the
  // target shard's 64 local pages.
  std::vector<double> popularity(64);
  for (size_t i = 0; i < popularity.size(); ++i) {
    popularity[i] = 1.0 / static_cast<double>(i + 1);
  }
  crypto::SecureRandom workload(61);
  Result<FrequencyAttackReport> report = RunShardedFrequencyAttack(
      *engine, /*target_shard=*/1, /*num_logical_requests=*/2000,
      [&]() { return workload.UniformInt(128); },
      popularity);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->requests, 2000u);
  // Against the permuted, relocating store the ranking alignment is
  // barely better than chance (1/64), far from the near-perfect
  // accuracy the same attack achieves on an encryption-only baseline.
  EXPECT_LT(report->accuracy(), 0.2);
  engine->Drain();
}

}  // namespace
}  // namespace shpir::analysis
