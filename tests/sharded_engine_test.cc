#include "shard/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace shpir::shard {
namespace {

using storage::Page;
using storage::PageId;

Bytes PayloadFor(PageId id, size_t page_size) {
  Bytes data(page_size);
  for (size_t i = 0; i < page_size; ++i) {
    data[i] = static_cast<uint8_t>((id * 131 + i * 17) & 0xFF);
  }
  return data;
}

std::vector<Page> MakePages(uint64_t n, size_t page_size) {
  std::vector<Page> pages;
  pages.reserve(n);
  for (PageId id = 0; id < n; ++id) {
    pages.emplace_back(id, PayloadFor(id, page_size));
  }
  return pages;
}

ShardedPirEngine::Options SmallOptions(uint64_t shards) {
  ShardedPirEngine::Options options;
  options.num_pages = 64;
  options.page_size = 32;
  options.cache_pages = 8;
  options.privacy_c = 2.0;
  options.shards = shards;
  options.queue_depth = 256;
  options.seed = 42;
  return options;
}

std::unique_ptr<ShardedPirEngine> MakeEngine(
    const ShardedPirEngine::Options& options) {
  auto engine = ShardedPirEngine::Create(options);
  SHPIR_CHECK_OK(engine.status());
  SHPIR_CHECK_OK((*engine)->Initialize(
      MakePages(options.num_pages, options.page_size)));
  return std::move(*engine);
}

TEST(ShardedEngineTest, RetrievesEveryPageAcrossShards) {
  auto engine = MakeEngine(SmallOptions(4));
  for (PageId id = 0; id < engine->num_pages(); ++id) {
    Result<Bytes> data = engine->Retrieve(id);
    ASSERT_TRUE(data.ok()) << data.status().message();
    EXPECT_EQ(*data, PayloadFor(id, engine->page_size()));
  }
  engine->Drain();
}

TEST(ShardedEngineTest, EveryNonOwnerShardGetsExactlyOneDummy) {
  auto engine = MakeEngine(SmallOptions(4));
  std::mutex mutex;
  // Per logical request (in submission order), per shard: dummy flag.
  std::map<uint64_t, uint64_t> real_per_shard;
  std::map<uint64_t, uint64_t> dummy_per_shard;
  engine->set_shard_query_observer(
      [&](uint64_t shard, uint64_t /*index*/, PageId /*local*/, bool dummy) {
        std::lock_guard<std::mutex> lock(mutex);
        (dummy ? dummy_per_shard : real_per_shard)[shard]++;
      });
  constexpr uint64_t kRequests = 40;
  for (uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(engine->Retrieve(i % engine->num_pages()).ok());
  }
  engine->WaitIdle();
  std::lock_guard<std::mutex> lock(mutex);
  uint64_t total_real = 0;
  for (uint64_t s = 0; s < engine->shards(); ++s) {
    const uint64_t real = real_per_shard[s];
    const uint64_t dummy = dummy_per_shard[s];
    total_real += real;
    // Cover traffic: each shard sees exactly one query per logical
    // request, so the shard-level load is target-independent.
    EXPECT_EQ(real + dummy, kRequests) << "shard " << s;
  }
  EXPECT_EQ(total_real, kRequests);
  engine->Drain();
}

TEST(ShardedEngineTest, ModifyAndRemoveFanOutLikeRetrieve) {
  auto engine = MakeEngine(SmallOptions(2));
  const Bytes updated = PayloadFor(999, engine->page_size());
  ASSERT_TRUE(engine->Modify(5, updated).ok());
  Result<Bytes> data = engine->Retrieve(5);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, updated);

  ASSERT_TRUE(engine->Remove(40).ok());
  Result<Bytes> gone = engine->Retrieve(40);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  // Neighbors unaffected.
  EXPECT_TRUE(engine->Retrieve(41).ok());
  engine->Drain();
}

TEST(ShardedEngineTest, InsertIsUnimplemented) {
  auto engine = MakeEngine(SmallOptions(2));
  Result<PageId> id = engine->Insert(Bytes(engine->page_size()));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kUnimplemented);
  engine->Drain();
}

TEST(ShardedEngineTest, RejectsOutOfRangeId) {
  auto engine = MakeEngine(SmallOptions(2));
  EXPECT_FALSE(engine->Retrieve(engine->num_pages()).ok());
  engine->Drain();
}

TEST(ShardedEngineTest, FullQueueSurfacesResourceExhausted) {
  ShardedPirEngine::Options options = SmallOptions(2);
  options.queue_depth = 1;
  auto engine = MakeEngine(options);
  // Park shard 0's worker and fill its queue so the next fan-out
  // cannot admit its job there.
  std::atomic<bool> release{false};
  ASSERT_TRUE(engine->dispatcher()
                  .Submit(0,
                          [&release](const Status&) {
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  // Fill the parked shard's single slot; retry while the blocker still
  // occupies the queue (before the worker pops it and parks).
  for (;;) {
    const Status filler =
        engine->dispatcher().Submit(0, [](const Status&) {});
    if (filler.ok()) {
      break;
    }
  }
  // Queue 0 is now full and its worker parked: every fan-out must be
  // rejected at admission, leaving no partial cover traffic behind.
  for (int i = 0; i < 3; ++i) {
    Result<Bytes> data = engine->Retrieve(0);
    ASSERT_FALSE(data.ok());
    EXPECT_EQ(data.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(engine->dispatcher().depth(1), 0u);
  }
  release.store(true);
  engine->WaitIdle();
  // Back-pressure is transient: once the queue drains, service resumes.
  EXPECT_TRUE(engine->Retrieve(0).ok());
  engine->Drain();
}

TEST(ShardedEngineTest, ExpiredRealQueryReturnsDeadlineExceeded) {
  ShardedPirEngine::Options options = SmallOptions(2);
  options.deadline = std::chrono::milliseconds(1);
  auto engine = MakeEngine(options);
  std::atomic<bool> release{false};
  // Page 0 lives on shard 0; park that worker so the real query waits
  // in queue past its deadline.
  ASSERT_TRUE(engine->dispatcher()
                  .Submit(0,
                          [&release](const Status&) {
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  Result<Bytes> data = Bytes{};
  std::thread client([&] { data = engine->Retrieve(0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  client.join();
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kDeadlineExceeded);
  engine->Drain();
}

TEST(ShardedEngineTest, DrainStopsAdmissionsGracefully) {
  auto engine = MakeEngine(SmallOptions(4));
  ASSERT_TRUE(engine->Retrieve(3).ok());
  engine->Drain();
  Result<Bytes> after = engine->Retrieve(3);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  engine->Drain();  // Idempotent.
}

TEST(ShardedEngineTest, ExportsAggregateShardMetrics) {
  obs::MetricsRegistry registry;
  auto engine = MakeEngine(SmallOptions(4));
  engine->EnableMetrics(&registry);
  constexpr uint64_t kRequests = 12;
  for (uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(engine->Retrieve(i).ok());
  }
  engine->WaitIdle();
  const auto snapshot = registry.Snapshot();
  uint64_t logical = 0, dummies = 0;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "shpir_shard_logical_queries_total") {
      logical = counter.value;
    } else if (counter.name == "shpir_shard_dummy_queries_total") {
      dummies = counter.value;
    }
    // The observability contract: aggregates only, never per-request
    // identifiers (enforced by obs::IsValidName, re-checked here).
    EXPECT_EQ(counter.name.find("page_id"), std::string::npos);
  }
  EXPECT_EQ(logical, kRequests);
  EXPECT_EQ(dummies, kRequests * (engine->shards() - 1));
  double shard_count = 0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "shpir_shard_count") {
      shard_count = gauge.value;
    }
  }
  EXPECT_EQ(shard_count, 4.0);
  engine->Drain();
}

// Satellite: multi-client soak — N client threads share one sharded
// engine, each issuing M retrieves; every payload must match and the
// engine must shut down cleanly. Run under TSan in CI to vet the
// dispatcher/fan-out synchronization.
TEST(ShardedEngineTest, MultiClientSoak) {
  ShardedPirEngine::Options options = SmallOptions(4);
  options.num_pages = 128;
  options.queue_depth = 1024;
  auto engine = MakeEngine(options);
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 32;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Deterministic per-client id stream spanning all shards.
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const PageId id =
            static_cast<PageId>((c * 37 + q * 11) % options.num_pages);
        Result<Bytes> data = engine->Retrieve(id);
        if (!data.ok()) {
          // Admission control may push back under burst; retry once
          // after the queues drain.
          engine->WaitIdle();
          data = engine->Retrieve(id);
        }
        if (!data.ok()) {
          ++failures;
        } else if (*data != PayloadFor(id, options.page_size)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  engine->Drain();
  EXPECT_FALSE(engine->Retrieve(0).ok());
}

}  // namespace
}  // namespace shpir::shard
