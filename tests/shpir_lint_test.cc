#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace shpir::lint {
namespace {

std::vector<Finding> LintFixture(const std::string& name) {
  Linter linter;
  const std::string path = std::string(FIXTURES_DIR) + "/" + name;
  EXPECT_TRUE(linter.AddFile(path)) << "cannot read " << path;
  return linter.Run();
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) {
    rules.push_back(finding.rule);
  }
  return rules;
}

// --- Fixture files: each banned pattern produces exactly its one
// --- diagnostic, and the known-good file produces none.

TEST(LintFixtures, SecretBranchProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_branch.cc");
  ASSERT_EQ(findings.size(), 1u) << FormatFinding(findings[0]);
  EXPECT_EQ(findings[0].rule, "secret-branch");
}

TEST(LintFixtures, SecretIndexProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_index.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-index");
}

TEST(LintFixtures, SecretLogProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_log.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-log");
}

TEST(LintFixtures, MemcmpOnSecretsProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_compare_memcmp.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-compare");
}

TEST(LintFixtures, InsecureRngProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("insecure_rng.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "insecure-rng");
}

TEST(LintFixtures, SuppressionWithoutJustificationDoesNotSuppress) {
  const auto findings = LintFixture("bad_suppression.cc");
  const auto rules = Rules(findings);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-suppression"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "secret-branch"),
            rules.end());
}

TEST(LintFixtures, KeywordKeyLeakProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("keyword_key_leak.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-log");
}

TEST(LintFixtures, EventlogSecretLeakProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("eventlog_secret_leak.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-log");
}

TEST(LintFixtures, KnownGoodProducesZeroDiagnostics) {
  const auto findings = LintFixture("known_good.cc");
  EXPECT_TRUE(findings.empty())
      << "first: " << FormatFinding(findings[0]);
}

// --- In-memory sources: the analysis itself.

std::vector<Finding> LintSource(const std::string& source) {
  Linter linter;
  linter.AddSource("test.cc", source);
  return linter.Run();
}

TEST(LintAnalysis, TaintFlowsThroughAssignments) {
  const auto findings = LintSource(R"(
    #include "common/secret.h"
    int F(shpir::common::Secret<int> id_secret) {
      int id = id_secret.ExposeSecret();
      int shifted = id + 7;
      int alias = shifted;
      switch (alias) { default: return 0; }
    }
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-branch");
}

TEST(LintAnalysis, EqualityOnSecretIsSecretCompare) {
  const auto findings = LintSource(R"(
    int F(shpir::common::Secret<unsigned> key_secret, unsigned guess) {
      unsigned key = key_secret.ExposeSecret();
      return key == guess ? 1 : 0;
    }
  )");
  const auto rules = Rules(findings);
  // Both the early-exit == and the ternary on its result are flagged.
  EXPECT_NE(std::find(rules.begin(), rules.end(), "secret-compare"),
            rules.end());
}

TEST(LintAnalysis, JustifiedSuppressionSilencesOnlyItsRule) {
  const auto findings = LintSource(R"(
    int F(shpir::common::Secret<int> key_secret) {
      int key = key_secret.ExposeSecret();
      // shpir-lint-allow-next-line(secret-branch): documented in-enclave split
      if (key > 0) { return 1; }
      return 0;
    }
  )");
  EXPECT_TRUE(findings.empty());
}

TEST(LintAnalysis, SuppressionForADifferentRuleDoesNotSilence) {
  const auto findings = LintSource(R"(
    int F(shpir::common::Secret<int> key_secret) {
      int key = key_secret.ExposeSecret();
      // shpir-lint-allow-next-line(secret-log): wrong rule
      if (key > 0) { return 1; }
      return 0;
    }
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-branch");
}

TEST(LintAnalysis, HeaderSecretsAreVisibleAcrossFiles) {
  Linter linter;
  linter.AddSource("engine.h", R"(
    class Engine {
      SHPIR_SECRET unsigned long cursor_;
    };
  )");
  linter.AddSource("engine.cc", R"(
    int Engine_Step(unsigned long limit) {
      while (cursor_ < limit) { return 1; }
      return 0;
    }
  )");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-branch");
  EXPECT_EQ(findings[0].file, "engine.cc");
  EXPECT_EQ(linter.global_secrets().count("cursor_"), 1u);
}

TEST(LintAnalysis, SecretLocalInCcStaysFileScoped) {
  Linter linter;
  linter.AddSource("a.cc", R"(
    void F() { SHPIR_SECRET int block = 3; }
  )");
  linter.AddSource("b.cc", R"(
    int G(int block) { if (block > 0) { return 1; } return 0; }
  )");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(LintAnalysis, IndexingSecretContainerWithSecretIsAllowed) {
  const auto findings = LintSource(R"(
    #include "common/secret.h"
    SHPIR_SECRET extern int cache[8];
    int F(shpir::common::Secret<int> slot_secret) {
      int slot = slot_secret.ExposeSecret();
      return cache[slot];
    }
  )");
  EXPECT_TRUE(findings.empty());
}

TEST(LintAnalysis, StreamInsertionOfSecretIsSecretLog) {
  const auto findings = LintSource(R"(
    #include <iostream>
    void F(shpir::common::Secret<int> id_secret) {
      int id = id_secret.ExposeSecret();
      std::cerr << "id=" << id << "\n";
    }
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-log");
}

// Regression for the constant-time audit: the pre-ConstantTimeEquals
// MAC check (early-exit memcmp on the computed tag) must keep tripping
// the linter so it can never quietly come back.
TEST(LintAnalysis, CatchesTheOldHmacVerifyPattern) {
  const auto findings = LintSource(R"(
    #include <cstring>
    class Hmac {
      bool Verify(const unsigned char* tag, unsigned long len) {
        return std::memcmp(computed_mac_, tag, len) == 0;
      }
      SHPIR_SECRET unsigned char computed_mac_[32];
    };
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-compare");
}

TEST(LintAnalysis, PublicDataIsNotFlagged) {
  const auto findings = LintSource(R"(
    #include <cstring>
    #include <cstdio>
    int F(int n, const char* a, const char* b) {
      if (n > 3 && std::memcmp(a, b, 4) == 0) {
        std::printf("match %d\n", n);
      }
      for (int i = 0; i < n; ++i) { n += i; }
      return n == 7 ? 1 : 0;
    }
  )");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace shpir::lint
