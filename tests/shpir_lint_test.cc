#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace shpir::lint {
namespace {

std::vector<Finding> LintFixture(const std::string& name) {
  Linter linter;
  const std::string path = std::string(FIXTURES_DIR) + "/" + name;
  EXPECT_TRUE(linter.AddFile(path)) << "cannot read " << path;
  return linter.Run();
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) {
    rules.push_back(finding.rule);
  }
  return rules;
}

// --- Fixture files: each banned pattern produces exactly its one
// --- diagnostic, and the known-good file produces none.

TEST(LintFixtures, SecretBranchProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_branch.cc");
  ASSERT_EQ(findings.size(), 1u) << FormatFinding(findings[0]);
  EXPECT_EQ(findings[0].rule, "secret-branch");
}

TEST(LintFixtures, SecretIndexProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_index.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-index");
}

TEST(LintFixtures, SecretLogProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_log.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-log");
}

TEST(LintFixtures, MemcmpOnSecretsProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_compare_memcmp.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-compare");
}

TEST(LintFixtures, InsecureRngProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("insecure_rng.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "insecure-rng");
}

TEST(LintFixtures, SuppressionWithoutJustificationDoesNotSuppress) {
  const auto findings = LintFixture("bad_suppression.cc");
  const auto rules = Rules(findings);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-suppression"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "secret-branch"),
            rules.end());
}

TEST(LintFixtures, KeywordKeyLeakProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("keyword_key_leak.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-log");
}

TEST(LintFixtures, EventlogSecretLeakProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("eventlog_secret_leak.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-log");
}

TEST(LintFixtures, SecretLoopBoundProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_loop_bound.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-loop-bound");
}

TEST(LintFixtures, SecretWireProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_wire.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-wire");
}

TEST(LintFixtures, SecretAllocProducesExactlyOneDiagnostic) {
  const auto findings = LintFixture("secret_alloc.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-alloc");
}

// The secret crosses two calls (Handle -> Relay -> Emit) before the
// sink; only Relay's summary carries the transitive sink, so the
// finding lands on Handle's call site.
TEST(LintFixtures, SecretArgFlowsAcrossTwoCalls) {
  const auto findings = LintFixture("secret_arg_interproc.cc");
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-arg");
  EXPECT_EQ(findings[0].line, 16);
}

// The sink body and the secret-bearing caller live in different
// translation units; the whole-program summary pass must join them.
TEST(LintFixtures, SecretArgCrossesTranslationUnits) {
  Linter linter;
  const std::string dir = std::string(FIXTURES_DIR) + "/";
  ASSERT_TRUE(linter.AddFile(dir + "tu_boundary_caller.cc"));
  ASSERT_TRUE(linter.AddFile(dir + "tu_boundary_callee.cc"));
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "no findings" : FormatFinding(findings[0]));
  EXPECT_EQ(findings[0].rule, "secret-arg");
  EXPECT_NE(findings[0].file.find("tu_boundary_caller.cc"),
            std::string::npos);
}

// The callee half alone has no secret flowing into it: scanned by
// itself it must stay clean, proving the pair's finding really comes
// from the cross-TU join and not from the callee's printf per se.
TEST(LintFixtures, TuBoundaryCalleeAloneIsClean) {
  const auto findings = LintFixture("tu_boundary_callee.cc");
  EXPECT_TRUE(findings.empty())
      << "first: " << FormatFinding(findings[0]);
}

TEST(LintFixtures, KnownGoodProducesZeroDiagnostics) {
  const auto findings = LintFixture("known_good.cc");
  EXPECT_TRUE(findings.empty())
      << "first: " << FormatFinding(findings[0]);
}

// --- In-memory sources: the analysis itself.

std::vector<Finding> LintSource(const std::string& source) {
  Linter linter;
  linter.AddSource("test.cc", source);
  return linter.Run();
}

TEST(LintAnalysis, TaintFlowsThroughAssignments) {
  const auto findings = LintSource(R"(
    #include "common/secret.h"
    int F(shpir::common::Secret<int> id_secret) {
      int id = id_secret.ExposeSecret();
      int shifted = id + 7;
      int alias = shifted;
      switch (alias) { default: return 0; }
    }
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-branch");
}

TEST(LintAnalysis, EqualityOnSecretIsSecretCompare) {
  const auto findings = LintSource(R"(
    int F(shpir::common::Secret<unsigned> key_secret, unsigned guess) {
      unsigned key = key_secret.ExposeSecret();
      return key == guess ? 1 : 0;
    }
  )");
  const auto rules = Rules(findings);
  // Both the early-exit == and the ternary on its result are flagged.
  EXPECT_NE(std::find(rules.begin(), rules.end(), "secret-compare"),
            rules.end());
}

TEST(LintAnalysis, JustifiedSuppressionSilencesOnlyItsRule) {
  const auto findings = LintSource(R"(
    int F(shpir::common::Secret<int> key_secret) {
      int key = key_secret.ExposeSecret();
      // shpir-lint-allow-next-line(secret-branch): documented in-enclave split
      if (key > 0) { return 1; }
      return 0;
    }
  )");
  EXPECT_TRUE(findings.empty());
}

TEST(LintAnalysis, SuppressionForADifferentRuleDoesNotSilence) {
  const auto findings = LintSource(R"(
    int F(shpir::common::Secret<int> key_secret) {
      int key = key_secret.ExposeSecret();
      // shpir-lint-allow-next-line(secret-log): wrong rule
      if (key > 0) { return 1; }
      return 0;
    }
  )");
  // The branch still fires, and the mismatched allow is itself flagged
  // so it cannot linger unaudited.
  const auto rules = Rules(findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "secret-branch"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "unused-suppression"),
            rules.end());
}

TEST(LintAnalysis, HeaderSecretsAreVisibleAcrossFiles) {
  Linter linter;
  linter.AddSource("engine.h", R"(
    class Engine {
      SHPIR_SECRET unsigned long cursor_;
    };
  )");
  linter.AddSource("engine.cc", R"(
    int Engine_Step(unsigned long limit) {
      while (cursor_ < limit) { return 1; }
      return 0;
    }
  )");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  // A secret `while` bound is classified by the more specific rule.
  EXPECT_EQ(findings[0].rule, "secret-loop-bound");
  EXPECT_EQ(findings[0].file, "engine.cc");
  EXPECT_EQ(linter.global_secrets().count("cursor_"), 1u);
}

TEST(LintAnalysis, SecretLocalInCcStaysFileScoped) {
  Linter linter;
  linter.AddSource("a.cc", R"(
    void F() { SHPIR_SECRET int block = 3; }
  )");
  linter.AddSource("b.cc", R"(
    int G(int block) { if (block > 0) { return 1; } return 0; }
  )");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(LintAnalysis, IndexingSecretContainerWithSecretIsAllowed) {
  const auto findings = LintSource(R"(
    #include "common/secret.h"
    SHPIR_SECRET extern int cache[8];
    int F(shpir::common::Secret<int> slot_secret) {
      int slot = slot_secret.ExposeSecret();
      return cache[slot];
    }
  )");
  EXPECT_TRUE(findings.empty());
}

TEST(LintAnalysis, StreamInsertionOfSecretIsSecretLog) {
  const auto findings = LintSource(R"(
    #include <iostream>
    void F(shpir::common::Secret<int> id_secret) {
      int id = id_secret.ExposeSecret();
      std::cerr << "id=" << id << "\n";
    }
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-log");
}

// Regression for the constant-time audit: the pre-ConstantTimeEquals
// MAC check (early-exit memcmp on the computed tag) must keep tripping
// the linter so it can never quietly come back.
TEST(LintAnalysis, CatchesTheOldHmacVerifyPattern) {
  const auto findings = LintSource(R"(
    #include <cstring>
    class Hmac {
      bool Verify(const unsigned char* tag, unsigned long len) {
        return std::memcmp(computed_mac_, tag, len) == 0;
      }
      SHPIR_SECRET unsigned char computed_mac_[32];
    };
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-compare");
}

// Summary computation must reach a fixed point on a call cycle: A and
// B call each other, and only B owns the sink. The engine has to
// propagate B's sink into A's summary (and stop) rather than loop or
// give up, so the secret handed to A is still caught.
TEST(LintAnalysis, SummaryFixedPointConvergesOnCallCycle) {
  const auto findings = LintSource(R"(
    #include <cstdio>
    static void CycleB(unsigned long v, int depth);
    static void CycleA(unsigned long v, int depth) {
      if (depth > 0) { CycleB(v, depth - 1); }
    }
    static void CycleB(unsigned long v, int depth) {
      std::printf("v=%lu\n", v);
      CycleA(v, depth);
    }
    void Entry(shpir::common::Secret<unsigned long> id_secret) {
      unsigned long id = id_secret.ExposeSecret();
      CycleA(id, 3);
    }
  )");
  const auto rules = Rules(findings);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "secret-arg"),
            rules.end())
      << "cycle summary never converged on the transitive sink";
}

// Same cycle without a secret entering it: the fixed point must also
// converge to "no taint" and stay silent.
TEST(LintAnalysis, CallCycleWithoutSecretsIsClean) {
  const auto findings = LintSource(R"(
    #include <cstdio>
    static void PingB(unsigned long v, int depth);
    static void PingA(unsigned long v, int depth) {
      if (depth > 0) { PingB(v, depth - 1); }
    }
    static void PingB(unsigned long v, int depth) {
      std::printf("v=%lu\n", v);
      PingA(v, depth);
    }
    void Run(unsigned long publicId) { PingA(publicId, 3); }
  )");
  EXPECT_TRUE(findings.empty())
      << "first: " << FormatFinding(findings[0]);
}

TEST(LintAnalysis, PublicDataIsNotFlagged) {
  const auto findings = LintSource(R"(
    #include <cstring>
    #include <cstdio>
    int F(int n, const char* a, const char* b) {
      if (n > 3 && std::memcmp(a, b, 4) == 0) {
        std::printf("match %d\n", n);
      }
      for (int i = 0; i < n; ++i) { n += i; }
      return n == 7 ? 1 : 0;
    }
  )");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace shpir::lint
