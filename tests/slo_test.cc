#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace shpir::obs {
namespace {

constexpr uint64_t kNsPerSec = 1'000'000'000ull;

SloTracker::Objectives TestObjectives() {
  SloTracker::Objectives objectives;
  objectives.latency_threshold_ns = 1'000'000;  // 1 ms.
  objectives.latency_objective = 0.9;           // 10% budget: easy math.
  objectives.availability_objective = 0.9;
  objectives.bucket_seconds = 60;
  objectives.num_buckets = 360;
  return objectives;
}

TEST(SloTrackerTest, CountsRequestsErrorsAndSlow) {
  SloTracker tracker(TestObjectives());
  const uint64_t t0 = 100 * kNsPerSec;
  tracker.RecordAt(t0, 500'000, true);         // Fast success.
  tracker.RecordAt(t0, 2'000'000, true);       // Slow success.
  tracker.RecordAt(t0, 500'000, false);        // Error (latency ignored).
  const SloTracker::Snapshot snapshot = tracker.EvaluateAt(t0);
  EXPECT_EQ(snapshot.requests_total, 3u);
  EXPECT_EQ(snapshot.errors_total, 1u);
  EXPECT_EQ(snapshot.slow_total, 1u);
  EXPECT_EQ(snapshot.availability.total, 3u);
  EXPECT_EQ(snapshot.availability.bad, 1u);
  // Latency SLI's denominator excludes errors.
  EXPECT_EQ(snapshot.latency.total, 2u);
  EXPECT_EQ(snapshot.latency.bad, 1u);
}

TEST(SloTrackerTest, HealthyTrafficKeepsFullBudgetAndNoAlerts) {
  SloTracker tracker(TestObjectives());
  const uint64_t t0 = 1000 * kNsPerSec;
  for (int i = 0; i < 1000; ++i) {
    tracker.RecordAt(t0 + static_cast<uint64_t>(i) * kNsPerSec, 100'000,
                     true);
  }
  const SloTracker::Snapshot snapshot =
      tracker.EvaluateAt(t0 + 1000 * kNsPerSec);
  EXPECT_EQ(snapshot.availability.budget_remaining, 1.0);
  EXPECT_EQ(snapshot.latency.budget_remaining, 1.0);
  EXPECT_EQ(snapshot.alert_transitions, 0u);
  for (const SloTracker::RuleState& rule : snapshot.availability.rules) {
    EXPECT_FALSE(rule.firing);
    EXPECT_EQ(rule.short_burn, 0.0);
  }
}

TEST(SloTrackerTest, BurnRateMatchesHandComputation) {
  SloTracker tracker(TestObjectives());
  // 100 requests in one bucket, 80 errors: bad fraction 0.8 against a
  // 0.1 budget => burn rate 8.0 on every window containing the bucket.
  const uint64_t t0 = 500 * kNsPerSec;
  for (int i = 0; i < 100; ++i) {
    tracker.RecordAt(t0, 100'000, i < 20);
  }
  const SloTracker::Snapshot snapshot = tracker.EvaluateAt(t0);
  const SloTracker::RuleState& fast = snapshot.availability.rules[0];
  EXPECT_NEAR(fast.short_burn, 8.0, 1e-9);
  EXPECT_NEAR(fast.long_burn, 8.0, 1e-9);
  EXPECT_NEAR(snapshot.availability.budget_remaining, 0.0, 1e-9);
}

TEST(SloTrackerTest, BothWindowsMustBurnForAlert) {
  SloTracker tracker(TestObjectives());
  // Old traffic: an hour of clean requests, well inside the fast
  // rule's 1h long window but outside its 5m short window.
  const uint64_t start = 10'000 * kNsPerSec;
  for (int i = 0; i < 3000; ++i) {
    tracker.RecordAt(start + static_cast<uint64_t>(i) * kNsPerSec,
                     100'000, true);
  }
  // Recent traffic: total outage for the last minute.
  const uint64_t now = start + 3600 * kNsPerSec;
  for (int i = 0; i < 100; ++i) {
    tracker.RecordAt(now, 100'000, false);
  }
  SloTracker::Snapshot snapshot = tracker.EvaluateAt(now);
  const SloTracker::RuleState& fast = snapshot.availability.rules[0];
  // Short window (5m) sees only the outage: burn 1.0/0.1 = 10.
  EXPECT_NEAR(fast.short_burn, 10.0, 1e-9);
  // Long window (1h) dilutes it: 100 bad / 3100-ish total < threshold.
  EXPECT_LT(fast.long_burn, 14.4);
  EXPECT_FALSE(fast.firing) << "significance window must gate the alert";
}

TEST(SloTrackerTest, AlertTransitionsAreEdgeTriggered) {
  SloTracker tracker(TestObjectives());
  const uint64_t t0 = 20'000 * kNsPerSec;
  // Total outage with no dilution: every window burns at 10x >= any
  // threshold below it — use a harsher rule check via objective 0.9 so
  // burn = 10 < 14.4 (fast) but >= 6.0 (slow). Slow rule fires.
  for (int i = 0; i < 500; ++i) {
    tracker.RecordAt(t0, 100'000, false);
  }
  SloTracker::Snapshot first = tracker.EvaluateAt(t0);
  EXPECT_TRUE(first.availability.rules[1].firing);  // "slow" rule.
  EXPECT_FALSE(first.availability.rules[0].firing);  // 10 < 14.4.
  const uint64_t after_first = first.alert_transitions;
  EXPECT_GE(after_first, 1u);
  // Re-evaluating while still firing is idempotent.
  SloTracker::Snapshot second = tracker.EvaluateAt(t0);
  EXPECT_TRUE(second.availability.rules[1].firing);
  EXPECT_EQ(second.alert_transitions, after_first);
  // Recovery then relapse counts a fresh edge.
  const uint64_t later = t0 + 22'000 * kNsPerSec;  // Past the horizon.
  SloTracker::Snapshot recovered = tracker.EvaluateAt(later);
  EXPECT_FALSE(recovered.availability.rules[1].firing);
  for (int i = 0; i < 500; ++i) {
    tracker.RecordAt(later, 100'000, false);
  }
  SloTracker::Snapshot relapsed = tracker.EvaluateAt(later);
  EXPECT_TRUE(relapsed.availability.rules[1].firing);
  EXPECT_EQ(relapsed.alert_transitions, after_first + 1);
}

TEST(SloTrackerTest, RingReclaimsExpiredBuckets) {
  SloTracker::Objectives objectives = TestObjectives();
  objectives.bucket_seconds = 1;
  objectives.num_buckets = 10;  // 10 s horizon.
  SloTracker tracker(objectives);
  tracker.RecordAt(5 * kNsPerSec, 100'000, false);
  // Inside the horizon the error is visible...
  EXPECT_EQ(tracker.EvaluateAt(6 * kNsPerSec).availability.bad, 1u);
  // ...after wrapping past it the bucket is reused and the windowed
  // view is clean, while lifetime totals persist.
  const SloTracker::Snapshot late = tracker.EvaluateAt(100 * kNsPerSec);
  EXPECT_EQ(late.availability.bad, 0u);
  EXPECT_EQ(late.errors_total, 1u);
}

TEST(SloTrackerTest, ZeroBudgetObjectiveBurnsInstantly) {
  SloTracker::Objectives objectives = TestObjectives();
  objectives.availability_objective = 1.0;  // No error budget at all.
  SloTracker tracker(objectives);
  const uint64_t t0 = 300 * kNsPerSec;
  tracker.RecordAt(t0, 100'000, false);
  const SloTracker::Snapshot snapshot = tracker.EvaluateAt(t0);
  EXPECT_TRUE(snapshot.availability.rules[0].firing);
  EXPECT_TRUE(snapshot.availability.rules[1].firing);
  EXPECT_EQ(snapshot.availability.budget_remaining, 0.0);
}

TEST(SloTrackerTest, JsonIsClosedSchema) {
  SloTracker tracker(TestObjectives());
  const uint64_t t0 = 400 * kNsPerSec;
  tracker.RecordAt(t0, 100'000, true);
  const std::string json = tracker.ToJsonAt(t0);
  for (const char* key :
       {"\"requests_total\":", "\"errors_total\":", "\"slow_total\":",
        "\"alert_transitions\":", "\"availability\":", "\"latency\":",
        "\"budget_remaining\":", "\"rules\":", "\"short_burn\":",
        "\"long_burn\":", "\"firing\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // The document carries aggregate counts only — no page ids, no
  // per-request records — so nothing here can depend on a secret
  // target (the same rule metrics and traces follow).
  EXPECT_EQ(json.find("page"), std::string::npos);
}

TEST(SloTrackerTest, PublishMetricsRegistersPrefixedGauges) {
  SloTracker tracker(TestObjectives());
  MetricsRegistry registry;
  tracker.PublishMetrics(&registry, "shard");
  const uint64_t t0 = 600 * kNsPerSec;
  tracker.RecordAt(t0, 100'000, true);
  const MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_requests = false;
  bool saw_budget = false;
  for (const SnapshotGauge& gauge : snapshot.gauges) {
    if (gauge.name == "shpir_slo_shard_requests_total") {
      saw_requests = true;
      EXPECT_EQ(gauge.value, 1.0);
    }
    if (gauge.name == "shpir_slo_shard_availability_budget_remaining") {
      saw_budget = true;
    }
  }
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_budget);
}

}  // namespace
}  // namespace shpir::obs
