// Long-running soak: interleaves every operation class — queries,
// updates, inserts, removals, snapshots/restores, offline reshuffles
// and key rotations — against a shadow model, catching interactions no
// single-feature test exercises.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/check.h"
#include "analysis/privacy_audit.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::core {
namespace {

using storage::Page;
using storage::PageId;

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
constexpr uint64_t kSeed = 20260704;

Bytes PayloadFor(uint64_t tag) {
  Bytes data(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>(tag * 131 + i * 17 + 3);
  }
  return data;
}

TEST(SoakTest, EverythingInterleaved) {
  CApproxPir::Options options;
  options.num_pages = 80;
  options.page_size = kPageSize;
  options.cache_pages = 10;
  options.block_size = 8;
  options.insert_reserve = 30;
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, kSeed);
  ASSERT_TRUE(cpu.ok());
  auto engine_holder = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine_holder.ok());
  std::unique_ptr<CApproxPir> engine = std::move(engine_holder).value();

  std::map<PageId, Bytes> shadow;
  std::vector<Page> pages;
  for (PageId id = 0; id < options.num_pages; ++id) {
    pages.emplace_back(id, PayloadFor(id));
    shadow[id] = PayloadFor(id);
  }
  ASSERT_TRUE(engine->Initialize(pages).ok());

  crypto::SecureRandom rng(kSeed + 1);
  uint64_t tag = 1000;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t action = rng.UniformInt(100);
    if (action < 60 && !shadow.empty()) {
      // Query.
      auto it = shadow.begin();
      std::advance(it, rng.UniformInt(shadow.size()));
      Result<Bytes> data = engine->Retrieve(it->first);
      ASSERT_TRUE(data.ok()) << "step " << step;
      ASSERT_EQ(*data, it->second) << "step " << step;
    } else if (action < 75 && !shadow.empty()) {
      // Modify.
      auto it = shadow.begin();
      std::advance(it, rng.UniformInt(shadow.size()));
      const Bytes fresh = PayloadFor(tag++);
      ASSERT_TRUE(engine->Modify(it->first, fresh).ok());
      it->second = fresh;
    } else if (action < 85 && !shadow.empty()) {
      // Remove.
      auto it = shadow.begin();
      std::advance(it, rng.UniformInt(shadow.size()));
      ASSERT_TRUE(engine->Remove(it->first).ok());
      shadow.erase(it);
    } else if (action < 95) {
      // Insert (may exhaust spares; tolerated).
      const Bytes fresh = PayloadFor(tag++);
      Result<PageId> id = engine->Insert(fresh);
      if (id.ok()) {
        shadow[*id] = fresh;
      }
    } else if (action < 97) {
      ASSERT_TRUE(engine->OfflineReshuffle().ok()) << "step " << step;
    } else if (action < 98) {
      ASSERT_TRUE(engine->RotateKeys().ok()) << "step " << step;
    } else {
      // Snapshot + restore into a brand-new engine instance.
      Result<Bytes> state = engine->SerializeState();
      ASSERT_TRUE(state.ok());
      auto replacement = CApproxPir::Create(cpu->get(), options);
      ASSERT_TRUE(replacement.ok()) << replacement.status();
      ASSERT_TRUE((*replacement)->RestoreState(*state).ok());
      engine = std::move(replacement).value();
    }
  }

  // Final audit: every shadow entry retrievable and correct.
  for (const auto& [id, data] : shadow) {
    ASSERT_EQ(*engine->Retrieve(id), data) << "final id " << id;
  }
}

TEST(SoakTest, PrivacyModelHoldsAfterMaintenance) {
  // The c-approximate distribution must hold on an engine that has been
  // reshuffled, rotated and restored — the mechanism's guarantees are
  // not an artifact of the fresh initial state.
  CApproxPir::Options options;
  options.num_pages = 64;
  options.page_size = kPageSize;
  options.cache_pages = 8;
  options.block_size = 16;
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, kSeed + 7);
  ASSERT_TRUE(cpu.ok());
  auto engine = CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize({}).ok());

  crypto::SecureRandom warmup(kSeed + 8);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*engine)->Retrieve(warmup.UniformInt(64)).ok());
  }
  ASSERT_TRUE((*engine)->OfflineReshuffle().ok());
  ASSERT_TRUE((*engine)->RotateKeys().ok());

  crypto::SecureRandom workload(kSeed + 9);
  Result<analysis::PrivacyReport> report = analysis::RunPrivacyAudit(
      **engine, 30000, [&]() { return workload.UniformInt(64); });
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->measured_c, report->analytic_c,
              report->analytic_c * 0.12);
  EXPECT_GT(report->slot_entropy, 0.999);
}

}  // namespace
}  // namespace shpir::core
