#include "baselines/sqrt_oram.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace shpir::baselines {
namespace {

using storage::Page;
using storage::PageId;

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

Bytes PayloadFor(PageId id) {
  Bytes data(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>(id * 29 + i + 11);
  }
  return data;
}

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  storage::AccessTrace trace;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<SqrtOram> oram;

  static Rig Make(uint64_t n, uint64_t shelter, uint64_t seed) {
    SqrtOram::Options options;
    options.num_pages = n;
    options.page_size = kPageSize;
    options.shelter_slots = shelter;
    Rig rig;
    Result<uint64_t> slots = SqrtOram::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    rig.tracing_disk =
        std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), rig.tracing_disk.get(),
        kPageSize, seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    auto oram = SqrtOram::Create(rig.cpu.get(), options, &rig.trace);
    SHPIR_CHECK(oram.ok());
    rig.oram = std::move(oram).value();
    std::vector<Page> pages;
    for (PageId id = 0; id < n; ++id) {
      pages.emplace_back(id, PayloadFor(id));
    }
    SHPIR_CHECK_OK(rig.oram->Initialize(pages));
    return rig;
  }
};

TEST(SqrtOramTest, RetrievesCorrectPages) {
  Rig rig = Rig::Make(50, 8, 1);
  for (PageId id = 0; id < 50; ++id) {
    Result<Bytes> data = rig.oram->Retrieve(id);
    ASSERT_TRUE(data.ok()) << "id " << id << ": " << data.status();
    EXPECT_EQ(*data, PayloadFor(id));
  }
}

TEST(SqrtOramTest, CorrectAcrossManyEpochs) {
  Rig rig = Rig::Make(64, 8, 2);
  crypto::SecureRandom rng(3);
  for (int i = 0; i < 500; ++i) {
    const PageId id = rng.UniformInt(64);
    ASSERT_EQ(*rig.oram->Retrieve(id), PayloadFor(id)) << "query " << i;
  }
  EXPECT_GE(rig.oram->reshuffles(), 500u / 8 - 1);
}

TEST(SqrtOramTest, RepeatedSamePageCorrect) {
  Rig rig = Rig::Make(32, 4, 4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(*rig.oram->Retrieve(9), PayloadFor(9)) << i;
  }
}

TEST(SqrtOramTest, DefaultShelterIsSqrtN) {
  SqrtOram::Options options;
  options.num_pages = 100;
  options.page_size = kPageSize;
  Result<uint64_t> slots = SqrtOram::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  EXPECT_EQ(*slots, 110u);
}

TEST(SqrtOramTest, PerQueryCostIsShelterPlusOne) {
  Rig rig = Rig::Make(64, 8, 5);
  // Before the first reshuffle, each query reads shelter + 1 slot and
  // writes 1 slot.
  for (int i = 0; i < 7; ++i) {
    const auto before = rig.cpu->cost().Snapshot();
    ASSERT_TRUE(rig.oram->Retrieve(static_cast<PageId>(i)).ok());
    const auto delta = rig.cpu->cost().Snapshot() - before;
    EXPECT_EQ(delta.disk_bytes, (8 + 1 + 1) * kSealedSize) << i;
  }
  // The 8th query triggers the O(n) reshuffle.
  const auto before = rig.cpu->cost().Snapshot();
  ASSERT_TRUE(rig.oram->Retrieve(20).ok());
  const auto delta = rig.cpu->cost().Snapshot() - before;
  EXPECT_GT(delta.disk_bytes, 2u * 64u * kSealedSize);
  EXPECT_EQ(rig.oram->reshuffles(), 1u);
}

TEST(SqrtOramTest, EveryQueryTouchesFreshMainSlot) {
  Rig rig = Rig::Make(40, 10, 6);
  rig.trace.Clear();
  // Query the same page repeatedly: the main-area reads (one per query)
  // must all hit distinct locations within an epoch.
  std::set<storage::Location> main_reads;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(rig.oram->Retrieve(5).ok());
  }
  for (const auto& e : rig.trace.events()) {
    if (e.op == storage::AccessEvent::Op::kRead && e.location < 40) {
      EXPECT_TRUE(main_reads.insert(e.location).second)
          << "repeated main read at " << e.location;
    }
  }
  EXPECT_EQ(main_reads.size(), 9u);
}

TEST(SqrtOramTest, Validation) {
  SqrtOram::Options options;
  options.num_pages = 1;
  options.page_size = kPageSize;
  EXPECT_FALSE(SqrtOram::DiskSlots(options).ok());
  options.num_pages = 10;
  options.shelter_slots = 10;
  EXPECT_FALSE(SqrtOram::DiskSlots(options).ok());
}

TEST(SqrtOramTest, OutOfRangeAndUninitialized) {
  SqrtOram::Options options;
  options.num_pages = 16;
  options.page_size = kPageSize;
  options.shelter_slots = 4;
  Result<uint64_t> slots = SqrtOram::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 7);
  ASSERT_TRUE(cpu.ok());
  auto oram = SqrtOram::Create(cpu->get(), options);
  ASSERT_TRUE(oram.ok());
  EXPECT_EQ((*oram)->Retrieve(0).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*oram)->Initialize({}).ok());
  EXPECT_EQ((*oram)->Retrieve(16).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace shpir::baselines
