// Negative compile check for the thread-safety annotations.
//
// This file re-introduces the dispatcher race pattern the annotations
// exist to catch: touching a GUARDED_BY member without holding its
// mutex. It is NOT part of any CMake target. The static-analysis CI
// job compiles it with
//
//   clang++ -std=c++20 -Isrc -Werror=thread-safety -fsyntax-only \
//       tests/static/thread_safety_negative.cc
//
// and requires the compilation to FAIL. If it ever compiles cleanly
// under clang, the annotation layer has been neutered (macros defined
// empty under clang, capability stripped from common::Mutex, ...) and
// the gate must go red.
//
// Under gcc the macros expand to nothing and the file is valid C++;
// only the clang job gives it meaning.

#include <cstddef>
#include <deque>

#include "common/mutex.h"

namespace shpir {

class BrokenDispatcher {
 public:
  // Unlocked read of a guarded queue: the exact shape of the PR 2
  // dispatcher bug (instruments_ read while the mutex was dropped).
  size_t UnlockedDepth() const { return queue_.size(); }

  // Unlocked write, racing any locked reader.
  void UnlockedPush(int job) { queue_.push_back(job); }

 private:
  mutable common::Mutex mutex_;
  std::deque<int> queue_ GUARDED_BY(mutex_);
};

}  // namespace shpir
