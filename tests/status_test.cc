#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace shpir {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  const Status s = InvalidArgumentError("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

Status FailsIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status Chained(int x) {
  SHPIR_RETURN_IF_ERROR(FailsIfNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> DoubleIt(int x) {
  SHPIR_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = DoubleIt(0);
  EXPECT_FALSE(err.ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(7);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace shpir
