#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "net/remote_disk.h"
#include "storage/disk.h"

namespace shpir::net {
namespace {

/// Spins up a provider (disk + wire server + TCP listener thread) and
/// tears it down on destruction.
class Provider {
 public:
  Provider(uint64_t slots, size_t slot_size)
      : disk_(slots, slot_size), server_(&disk_) {
    auto listener = TcpStorageListener::Listen(&server_, 0);
    SHPIR_CHECK(listener.ok());
    listener_ = std::move(listener).value();
    thread_ = std::thread([this] { listener_->Run(); });
  }

  ~Provider() {
    listener_->Stop();
    thread_.join();
  }

  uint16_t port() const { return listener_->port(); }
  storage::MemoryDisk& disk() { return disk_; }

 private:
  storage::MemoryDisk disk_;
  StorageServer server_;
  std::unique_ptr<TcpStorageListener> listener_;
  std::thread thread_;
};

TEST(TcpTransportTest, BasicRoundTrips) {
  Provider provider(8, 32);
  auto transport = TcpTransport::Connect("127.0.0.1", provider.port());
  ASSERT_TRUE(transport.ok()) << transport.status();
  auto remote = RemoteDisk::Connect(transport->get());
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ((*remote)->num_slots(), 8u);
  EXPECT_EQ((*remote)->slot_size(), 32u);

  Bytes data(32, 0x5c);
  ASSERT_TRUE((*remote)->Write(3, data).ok());
  Bytes out(32);
  ASSERT_TRUE((*remote)->Read(3, out).ok());
  EXPECT_EQ(out, data);
  // The bytes really crossed into the provider's disk.
  Bytes direct(32);
  ASSERT_TRUE(provider.disk().Read(3, direct).ok());
  EXPECT_EQ(direct, data);
}

TEST(TcpTransportTest, RunsOverTheSocket) {
  Provider provider(16, 16);
  auto transport = TcpTransport::Connect("localhost", provider.port());
  ASSERT_TRUE(transport.ok());
  auto remote = RemoteDisk::Connect(transport->get());
  ASSERT_TRUE(remote.ok());
  std::vector<Bytes> slots;
  for (int i = 0; i < 5; ++i) {
    slots.push_back(Bytes(16, static_cast<uint8_t>(i + 1)));
  }
  ASSERT_TRUE((*remote)->WriteRun(4, slots).ok());
  std::vector<Bytes> out;
  ASSERT_TRUE((*remote)->ReadRun(4, 5, out).ok());
  EXPECT_EQ(out, slots);
}

TEST(TcpTransportTest, RemoteErrorsSurviveTheWire) {
  Provider provider(4, 16);
  auto transport = TcpTransport::Connect("127.0.0.1", provider.port());
  ASSERT_TRUE(transport.ok());
  auto remote = RemoteDisk::Connect(transport->get());
  ASSERT_TRUE(remote.ok());
  Bytes out(16);
  const Status status = (*remote)->Read(99, out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("OUT_OF_RANGE"), std::string::npos);
}

TEST(TcpTransportTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port and close it again so nothing listens there.
  uint16_t dead_port;
  {
    storage::MemoryDisk disk(1, 8);
    StorageServer server(&disk);
    auto listener = TcpStorageListener::Listen(&server, 0);
    ASSERT_TRUE(listener.ok());
    dead_port = (*listener)->port();
  }
  auto transport = TcpTransport::Connect("127.0.0.1", dead_port);
  EXPECT_FALSE(transport.ok());
}

TEST(TcpTransportTest, BadHostRejected) {
  EXPECT_FALSE(TcpTransport::Connect("not-a-host-name", 1234).ok());
}

TEST(TcpTransportTest, FullPirStackOverTcp) {
  constexpr size_t kPageSize = 64;
  constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
  core::CApproxPir::Options options;
  options.num_pages = 30;
  options.page_size = kPageSize;
  options.cache_pages = 4;
  options.block_size = 5;
  auto slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());

  Provider provider(*slots, kSealedSize);
  auto transport = TcpTransport::Connect("127.0.0.1", provider.port());
  ASSERT_TRUE(transport.ok());
  auto remote = RemoteDisk::Connect(transport->get());
  ASSERT_TRUE(remote.ok());
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::TwoPartyOwner(64 * hardware::kMB),
      remote->get(), kPageSize, 11);
  ASSERT_TRUE(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  std::vector<storage::Page> pages;
  for (uint64_t id = 0; id < 30; ++id) {
    pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id + 1)));
  }
  ASSERT_TRUE((*engine)->Initialize(pages).ok());

  crypto::SecureRandom rng(12);
  for (int i = 0; i < 60; ++i) {
    const uint64_t id = rng.UniformInt(30);
    auto data = (*engine)->Retrieve(id);
    ASSERT_TRUE(data.ok()) << data.status();
    EXPECT_EQ(*data, Bytes(kPageSize, static_cast<uint8_t>(id + 1)));
  }
}

}  // namespace
}  // namespace shpir::net
