// End-to-end integration of the deployment CLIs: launches the real
// shpir_provider binary, drives it with the real shpir_owner binary
// (two-party) or an in-process PirServiceClient (three-party hub), and
// checks data survives restarts and that the observability CLIs
// (shpir_stats, shpir_trace, shpir_profile, shpir_benchdiff) speak the
// wire protocols end to end.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "net/tcp_transport.h"

namespace shpir {
namespace {

std::string BinDir() {
  // Tests run from build/tests/<binary>; the tools live in build/tools.
  return std::string(TOOLS_DIR);
}

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult RunShell(const std::string& command) {
  std::FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return {-1, "popen failed"};
  }
  std::string output;
  std::array<char, 512> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = ::pclose(pipe);
  return {WEXITSTATUS(status), output};
}


// Finds and parses the "geometry: X slots x Y bytes" line anywhere in
// the output (stderr/stdout interleaving is not deterministic).
bool ParseGeometry(const std::string& output, uint64_t* slots,
                   uint64_t* slot_size) {
  const size_t pos = output.find("geometry:");
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(output.c_str() + pos,
                     "geometry: %llu slots x %llu bytes",
                     reinterpret_cast<unsigned long long*>(slots),
                     reinterpret_cast<unsigned long long*>(slot_size)) == 2;
}

class ToolsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = ::testing::TempDir() + "/shpir_tools_disk.bin";
    state_ = ::testing::TempDir() + "/shpir_tools.state";
    std::remove(disk_.c_str());
    std::remove(state_.c_str());
    port_ = 19800 + (::getpid() % 150);
  }

  void TearDown() override {
    StopProvider();
    std::remove(disk_.c_str());
    std::remove(state_.c_str());
  }

  void StartProvider(uint64_t slots, uint64_t slot_size,
                     const std::string& extra_args = "") {
    const std::string command =
        BinDir() + "/shpir_provider " + disk_ + " " +
        std::to_string(slots) + " " + std::to_string(slot_size) + " " +
        std::to_string(port_) + " " + extra_args +
        " > /dev/null 2>&1 & echo $!";
    const CommandResult result = RunShell(command);
    provider_pid_ = std::stoi(result.output);
    // Give it a moment to bind.
    RunShell("sleep 0.3");
  }

  void StartHub(const std::string& extra_args = "") {
    const std::string command =
        BinDir() + "/shpir_provider hub --pages 64 --page-size 128 "
        "--cache 8 --port " + std::to_string(port_) +
        " --psk testpsk " + extra_args + " > /dev/null 2>&1 & echo $!";
    const CommandResult result = RunShell(command);
    provider_pid_ = std::stoi(result.output);
    RunShell("sleep 0.5");
  }

  /// Three-party client: handshakes with the live hub binary and
  /// returns a sealed-session service client.
  Result<std::unique_ptr<net::PirServiceClient>> ConnectHubClient(
      std::unique_ptr<net::TcpTransport>* transport_out) {
    Result<std::unique_ptr<net::TcpTransport>> transport =
        net::TcpTransport::Connect("127.0.0.1", port_);
    if (!transport.ok()) {
      return transport.status();
    }
    const std::string psk_text = "testpsk";
    const Bytes psk(psk_text.begin(), psk_text.end());
    crypto::SecureRandom rng;
    const uint64_t client_id = rng.NextUint64();
    Bytes nonce(net::SecureSession::kNonceSize);
    rng.Fill(nonce);
    Result<Bytes> hello = (*transport)->RoundTrip(
        net::ServiceHub::MakeHello(client_id, nonce));
    if (!hello.ok()) {
      return hello.status();
    }
    Result<net::SecureSession> session =
        net::ServiceHub::CompleteHandshake(*hello, psk, client_id, nonce);
    if (!session.ok()) {
      return session.status();
    }
    net::TcpTransport* wire = transport->get();
    *transport_out = std::move(transport).value();
    return std::make_unique<net::PirServiceClient>(
        std::move(session).value(), [wire, client_id](ByteSpan record) {
          return wire->RoundTrip(
              net::ServiceHub::MakeData(client_id, record));
        });
  }

  void StopProvider() {
    if (provider_pid_ > 0) {
      RunShell("kill " + std::to_string(provider_pid_) + " 2>/dev/null");
      provider_pid_ = 0;
      RunShell("sleep 0.1");
    }
  }

  CommandResult Owner(const std::string& args) {
    return RunShell(BinDir() + "/shpir_owner " + args + " --port " +
               std::to_string(port_) + " --state " + state_ +
               " --passphrase testpass");
  }

  std::string disk_;
  std::string state_;
  uint16_t port_;
  int provider_pid_ = 0;
};

TEST_F(ToolsIntegrationTest, FullLifecycle) {
  // The geometry for 200 x 256B pages, cache 16, c=2: ask init (it
  // prints the numbers even when the provider is absent).
  const CommandResult probe =
      Owner("init --pages 200 --page-size 256 --cache 16");
  uint64_t slots = 0, slot_size = 0;
  ASSERT_TRUE(ParseGeometry(probe.output, &slots, &slot_size))
      << probe.output;

  StartProvider(slots, slot_size);
  const CommandResult init =
      Owner("init --pages 200 --page-size 256 --cache 16");
  ASSERT_EQ(init.exit_code, 0) << init.output;
  ASSERT_NE(init.output.find("initialized"), std::string::npos);

  // Write and read back.
  CommandResult put = Owner("put --id 42 --data secret-report");
  ASSERT_EQ(put.exit_code, 0) << put.output;
  CommandResult get = Owner("get --id 42");
  ASSERT_EQ(get.exit_code, 0) << get.output;
  EXPECT_NE(get.output.find("secret-report"), std::string::npos);

  // Insert, remove.
  CommandResult insert = Owner("insert --data appended");
  ASSERT_EQ(insert.exit_code, 0) << insert.output;
  uint64_t new_id = 0;
  ASSERT_EQ(std::sscanf(insert.output.c_str(), "id %llu",
                        (unsigned long long*)&new_id),
            1);
  CommandResult got_new = Owner("get --id " + std::to_string(new_id));
  EXPECT_NE(got_new.output.find("appended"), std::string::npos);
  CommandResult removed = Owner("remove --id 7");
  ASSERT_EQ(removed.exit_code, 0) << removed.output;
  CommandResult gone = Owner("get --id 7");
  EXPECT_NE(gone.exit_code, 0);

  // Restart the provider: the file-backed disk plus sealed state must
  // carry everything across.
  StopProvider();
  StartProvider(slots, slot_size);
  CommandResult after = Owner("get --id 42");
  ASSERT_EQ(after.exit_code, 0) << after.output;
  EXPECT_NE(after.output.find("secret-report"), std::string::npos);
  CommandResult stats = Owner("stats");
  EXPECT_NE(stats.output.find("queries="), std::string::npos);
}

TEST_F(ToolsIntegrationTest, WrongPassphraseRejected) {
  const CommandResult probe =
      Owner("init --pages 50 --page-size 128 --cache 8");
  uint64_t slots = 0, slot_size = 0;
  ASSERT_TRUE(ParseGeometry(probe.output, &slots, &slot_size))
      << probe.output;
  StartProvider(slots, slot_size);
  ASSERT_EQ(Owner("init --pages 50 --page-size 128 --cache 8").exit_code,
            0);
  ASSERT_EQ(Owner("put --id 1 --data x").exit_code, 0);
  // Same state file, wrong passphrase.
  const CommandResult wrong =
      RunShell(BinDir() + "/shpir_owner get --id 1 --port " +
          std::to_string(port_) + " --state " + state_ +
          " --passphrase wrongpass");
  EXPECT_NE(wrong.exit_code, 0);
  EXPECT_NE(wrong.output.find("MAC"), std::string::npos) << wrong.output;
}

TEST_F(ToolsIntegrationTest, StatsCliPollsRunningProvider) {
  const CommandResult probe =
      Owner("init --pages 50 --page-size 128 --cache 8");
  uint64_t slots = 0, slot_size = 0;
  ASSERT_TRUE(ParseGeometry(probe.output, &slots, &slot_size))
      << probe.output;
  StartProvider(slots, slot_size);
  ASSERT_EQ(Owner("init --pages 50 --page-size 128 --cache 8").exit_code,
            0);
  ASSERT_EQ(Owner("put --id 3 --data hello").exit_code, 0);

  const std::string stats_cmd =
      BinDir() + "/shpir_stats --port " + std::to_string(port_);
  // Default table rendering: provider-side counters moved by the owner's
  // traffic show up.
  const CommandResult table = RunShell(stats_cmd);
  ASSERT_EQ(table.exit_code, 0) << table.output;
  EXPECT_NE(table.output.find("shpir_provider_requests_total"),
            std::string::npos)
      << table.output;
  EXPECT_NE(table.output.find("shpir_disk_reads_total"), std::string::npos);
  EXPECT_NE(table.output.find("shpir_tcp_frames_total"), std::string::npos);

  // JSON mode emits the closed-schema wire payload.
  const CommandResult json = RunShell(stats_cmd + " --json");
  ASSERT_EQ(json.exit_code, 0) << json.output;
  EXPECT_EQ(json.output.rfind("{\"counters\":[", 0), 0u) << json.output;

  // Prometheus mode re-exports with type annotations.
  const CommandResult prom = RunShell(stats_cmd + " --prometheus");
  ASSERT_EQ(prom.exit_code, 0) << prom.output;
  EXPECT_NE(prom.output.find("# TYPE shpir_provider_requests_total counter"),
            std::string::npos)
      << prom.output;

  // The provider's registry never carries per-request identifiers.
  EXPECT_EQ(table.output.find("page_id"), std::string::npos);
  EXPECT_EQ(table.output.find("request_index"), std::string::npos);
}

TEST_F(ToolsIntegrationTest, ProfileAndSloCliAgainstStorageProvider) {
  const CommandResult probe =
      Owner("init --pages 50 --page-size 128 --cache 8");
  uint64_t slots = 0, slot_size = 0;
  ASSERT_TRUE(ParseGeometry(probe.output, &slots, &slot_size))
      << probe.output;
  StartProvider(slots, slot_size, "--profile-sample 1 --slo-latency-ms 50");
  ASSERT_EQ(Owner("init --pages 50 --page-size 128 --cache 8").exit_code,
            0);
  ASSERT_EQ(Owner("put --id 3 --data hello").exit_code, 0);
  ASSERT_EQ(Owner("get --id 3").exit_code, 0);

  // PROFILE_DUMP, JSON schema: sampling config plus a stack table fed
  // by the owner's traffic.
  const std::string profile_cmd =
      BinDir() + "/shpir_profile --port " + std::to_string(port_);
  const CommandResult json = RunShell(profile_cmd);
  ASSERT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"sample_every\":1"), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("provider_handle"), std::string::npos)
      << json.output;

  // PROFILE_DUMP, collapsed flame-graph text.
  const CommandResult folded = RunShell(profile_cmd + " --format collapsed");
  ASSERT_EQ(folded.exit_code, 0) << folded.output;
  EXPECT_NE(folded.output.find("provider_handle;"), std::string::npos)
      << folded.output;

  // Profiles are aggregate-only: frame names come from a closed
  // vocabulary, so no page id or request index can appear.
  EXPECT_EQ(json.output.find("page_id"), std::string::npos);

  // SLO_STATUS via shpir_stats --slo: the owner's requests all
  // succeeded, so the budget is intact and nothing fires.
  const CommandResult slo = RunShell(
      BinDir() + "/shpir_stats --port " + std::to_string(port_) + " --slo");
  ASSERT_EQ(slo.exit_code, 0) << slo.output;
  EXPECT_NE(slo.output.find("\"availability\":"), std::string::npos)
      << slo.output;
  EXPECT_NE(slo.output.find("\"budget_remaining\":1"), std::string::npos)
      << slo.output;
  EXPECT_NE(slo.output.find("\"alert_transitions\":0"), std::string::npos)
      << slo.output;
}

TEST_F(ToolsIntegrationTest, ObservabilityCliSuiteAgainstLiveHub) {
  StartHub("--trace-buffer 256 --profile-sample 1 --slo-latency-ms 50");

  // Drive real queries through the sealed session so the hub's
  // profiler, tracer, and SLO tracker all see traffic. The listener
  // serves one connection at a time, so all in-process client work —
  // including the sealed SLO_STATUS fetch — happens before the CLIs
  // connect, and the transport is closed in between.
  std::string slo_json;
  {
    std::unique_ptr<net::TcpTransport> transport;
    Result<std::unique_ptr<net::PirServiceClient>> client =
        ConnectHubClient(&transport);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (storage::PageId id = 0; id < 8; ++id) {
      Result<Bytes> page = (*client)->Retrieve(id);
      ASSERT_TRUE(page.ok()) << page.status().ToString();
    }
    Result<Bytes> slo = (*client)->SloStatus();
    ASSERT_TRUE(slo.ok()) << slo.status().ToString();
    slo_json.assign(slo->begin(), slo->end());
  }

  // SLO_STATUS through the sealed session: per-shard documents under
  // the fleet rollup, all healthy.
  EXPECT_NE(slo_json.find("\"availability\":"), std::string::npos)
      << slo_json;
  EXPECT_NE(slo_json.find("\"alert_transitions\":0"), std::string::npos)
      << slo_json;

  // shpir_profile hub: authenticated PROFILE_DUMP through the
  // handshake, both formats.
  const std::string hub_args = " --port " + std::to_string(port_) +
                               " --psk testpsk";
  const CommandResult json =
      RunShell(BinDir() + "/shpir_profile hub" + hub_args);
  ASSERT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"stacks\":["), std::string::npos)
      << json.output;
  const CommandResult folded = RunShell(
      BinDir() + "/shpir_profile hub" + hub_args + " --format collapsed");
  ASSERT_EQ(folded.exit_code, 0) << folded.output;
  EXPECT_NE(folded.output.find("engine_round"), std::string::npos)
      << folded.output;

  // shpir_trace hub: the span buffer renders as Chrome trace JSON.
  const CommandResult trace =
      RunShell(BinDir() + "/shpir_trace hub" + hub_args);
  ASSERT_EQ(trace.exit_code, 0) << trace.output;
  EXPECT_NE(trace.output.find("\"traceEvents\""), std::string::npos)
      << trace.output;

  // A wrong key cannot read profiles: the handshake fails before the
  // op is ever decoded.
  const CommandResult denied =
      RunShell(BinDir() + "/shpir_profile hub --port " +
               std::to_string(port_) + " --psk wrongpsk");
  EXPECT_NE(denied.exit_code, 0);
}

class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case file names: ctest runs each case as its own
    // process, concurrently, so shared paths would race.
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    baseline_ = ::testing::TempDir() + "/benchdiff_" + name + "_baseline.json";
    current_ = ::testing::TempDir() + "/benchdiff_" + name + "_current.json";
  }
  void TearDown() override {
    std::remove(baseline_.c_str());
    std::remove(current_.c_str());
  }

  static void WriteReport(const std::string& path, double qps,
                          double p99_ns, double overhead_pct) {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema_version\":1,\"benchmark\":\"bench_fixture\","
           "\"git_sha\":\"test\",\"timestamp_utc\":\"2026-01-01T00:00:00Z\","
           "\"params\":{},\"metrics\":["
           "{\"name\":\"qps\",\"value\":" << qps
        << ",\"direction\":\"higher_better\",\"tolerance_pct\":5},"
           "{\"name\":\"p99_ns\",\"value\":" << p99_ns
        << ",\"direction\":\"lower_better\",\"tolerance_pct\":5},"
           "{\"name\":\"overhead_pct\",\"value\":" << overhead_pct
        << ",\"direction\":\"lower_better\",\"tolerance_pct\":0,"
           "\"budget_max\":5}]}";
  }

  CommandResult Diff() {
    return RunShell(BinDir() + "/shpir_benchdiff --baseline " + baseline_ +
                    " --current " + current_);
  }

  std::string baseline_;
  std::string current_;
};

TEST_F(BenchDiffTest, IdenticalReportsPass) {
  WriteReport(baseline_, 1000.0, 500000.0, 1.0);
  WriteReport(current_, 1000.0, 500000.0, 1.0);
  const CommandResult result = Diff();
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("all metrics within tolerance"),
            std::string::npos)
      << result.output;
}

TEST_F(BenchDiffTest, SmallDriftWithinTolerancePasses) {
  WriteReport(baseline_, 1000.0, 500000.0, 1.0);
  // 2% drift on the tolerance-gated metrics, under their 5%; the
  // zero-tolerance overhead budget metric stays flat.
  WriteReport(current_, 980.0, 510000.0, 1.0);
  EXPECT_EQ(Diff().exit_code, 0);
}

TEST_F(BenchDiffTest, InjectedRegressionFailsTheGate) {
  WriteReport(baseline_, 1000.0, 500000.0, 1.0);
  // 20% throughput loss and 25% latency regression: both must trip.
  WriteReport(current_, 800.0, 625000.0, 1.0);
  const CommandResult result = Diff();
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("regressed"), std::string::npos)
      << result.output;
}

TEST_F(BenchDiffTest, BudgetOverrunFailsEvenWithMatchingBaseline) {
  // The overhead budget is absolute: a current value over budget_max
  // fails even when the baseline carried the same (bad) number.
  WriteReport(baseline_, 1000.0, 500000.0, 9.0);
  WriteReport(current_, 1000.0, 500000.0, 9.0);
  EXPECT_EQ(Diff().exit_code, 1);
}

TEST_F(BenchDiffTest, MismatchedBenchmarksAreAUsageError) {
  WriteReport(baseline_, 1000.0, 500000.0, 1.0);
  std::ofstream out(current_, std::ios::trunc);
  out << "{\"schema_version\":1,\"benchmark\":\"other_bench\","
         "\"metrics\":[]}";
  out.close();
  EXPECT_EQ(Diff().exit_code, 2);
}

// The keyword KV CLI: offline build from a TSV, then private lookups
// over a fresh in-process engine — hits, misses, and both map kinds.
TEST(KeywordKvCliTest, BuildAndGetRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/shpir_kv_store";
  RunShell("rm -rf " + dir + " && mkdir -p " + dir);
  const std::string tsv = dir + "/input.tsv";
  {
    std::ofstream out(tsv, std::ios::trunc);
    for (int i = 0; i < 200; ++i) {
      out << "key-" << i << "\tvalue-" << i << "\n";
    }
  }
  for (const std::string kind : {"cuckoo", "fuse"}) {
    const std::string store = dir + "/" + kind;
    RunShell("mkdir -p " + store);
    const CommandResult build = RunShell(
        BinDir() + "/shpir_kv build --in " + tsv + " --store " + store +
        " --kind " + kind + " --page-size 64");
    ASSERT_EQ(build.exit_code, 0) << kind << ": " << build.output;
    EXPECT_NE(build.output.find("built " + kind + " store: 200 keys"),
              std::string::npos)
        << build.output;

    const CommandResult hit = RunShell(
        BinDir() + "/shpir_kv get --store " + store + " --key key-123");
    ASSERT_EQ(hit.exit_code, 0) << kind << ": " << hit.output;
    EXPECT_NE(hit.output.find("value-123"), std::string::npos)
        << hit.output;

    const CommandResult miss = RunShell(
        BinDir() + "/shpir_kv get --store " + store + " --key no-such-key");
    EXPECT_EQ(miss.exit_code, 3) << kind << ": " << miss.output;
    EXPECT_NE(miss.output.find("(not found)"), std::string::npos)
        << miss.output;
  }
  RunShell("rm -rf " + dir);
}

TEST(KeywordKvCliTest, RefusesBadArgs) {
  EXPECT_NE(RunShell(BinDir() + "/shpir_kv").exit_code, 0);
  EXPECT_NE(RunShell(BinDir() + "/shpir_kv build").exit_code, 0);
  const CommandResult bad_kind = RunShell(
      BinDir() + "/shpir_kv bench --keys 10 --kind nope");
  EXPECT_NE(bad_kind.exit_code, 0);
  EXPECT_NE(bad_kind.output.find("unknown --kind"), std::string::npos);
}

TEST_F(ToolsIntegrationTest, ProviderRefusesBadArgs) {
  const CommandResult result = RunShell(BinDir() + "/shpir_provider");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage"), std::string::npos);
}

}  // namespace
}  // namespace shpir
