// End-to-end integration of the deployment CLIs: launches the real
// shpir_provider binary, drives it with the real shpir_owner binary,
// and checks data survives across invocations and provider restarts.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace shpir {
namespace {

std::string BinDir() {
  // Tests run from build/tests/<binary>; the tools live in build/tools.
  return std::string(TOOLS_DIR);
}

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult RunShell(const std::string& command) {
  std::FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return {-1, "popen failed"};
  }
  std::string output;
  std::array<char, 512> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = ::pclose(pipe);
  return {WEXITSTATUS(status), output};
}


// Finds and parses the "geometry: X slots x Y bytes" line anywhere in
// the output (stderr/stdout interleaving is not deterministic).
bool ParseGeometry(const std::string& output, uint64_t* slots,
                   uint64_t* slot_size) {
  const size_t pos = output.find("geometry:");
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(output.c_str() + pos,
                     "geometry: %llu slots x %llu bytes",
                     reinterpret_cast<unsigned long long*>(slots),
                     reinterpret_cast<unsigned long long*>(slot_size)) == 2;
}

class ToolsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = ::testing::TempDir() + "/shpir_tools_disk.bin";
    state_ = ::testing::TempDir() + "/shpir_tools.state";
    std::remove(disk_.c_str());
    std::remove(state_.c_str());
    port_ = 19800 + (::getpid() % 150);
  }

  void TearDown() override {
    StopProvider();
    std::remove(disk_.c_str());
    std::remove(state_.c_str());
  }

  void StartProvider(uint64_t slots, uint64_t slot_size) {
    const std::string command =
        BinDir() + "/shpir_provider " + disk_ + " " +
        std::to_string(slots) + " " + std::to_string(slot_size) + " " +
        std::to_string(port_) + " > /dev/null 2>&1 & echo $!";
    const CommandResult result = RunShell(command);
    provider_pid_ = std::stoi(result.output);
    // Give it a moment to bind.
    RunShell("sleep 0.3");
  }

  void StopProvider() {
    if (provider_pid_ > 0) {
      RunShell("kill " + std::to_string(provider_pid_) + " 2>/dev/null");
      provider_pid_ = 0;
      RunShell("sleep 0.1");
    }
  }

  CommandResult Owner(const std::string& args) {
    return RunShell(BinDir() + "/shpir_owner " + args + " --port " +
               std::to_string(port_) + " --state " + state_ +
               " --passphrase testpass");
  }

  std::string disk_;
  std::string state_;
  uint16_t port_;
  int provider_pid_ = 0;
};

TEST_F(ToolsIntegrationTest, FullLifecycle) {
  // The geometry for 200 x 256B pages, cache 16, c=2: ask init (it
  // prints the numbers even when the provider is absent).
  const CommandResult probe =
      Owner("init --pages 200 --page-size 256 --cache 16");
  uint64_t slots = 0, slot_size = 0;
  ASSERT_TRUE(ParseGeometry(probe.output, &slots, &slot_size))
      << probe.output;

  StartProvider(slots, slot_size);
  const CommandResult init =
      Owner("init --pages 200 --page-size 256 --cache 16");
  ASSERT_EQ(init.exit_code, 0) << init.output;
  ASSERT_NE(init.output.find("initialized"), std::string::npos);

  // Write and read back.
  CommandResult put = Owner("put --id 42 --data secret-report");
  ASSERT_EQ(put.exit_code, 0) << put.output;
  CommandResult get = Owner("get --id 42");
  ASSERT_EQ(get.exit_code, 0) << get.output;
  EXPECT_NE(get.output.find("secret-report"), std::string::npos);

  // Insert, remove.
  CommandResult insert = Owner("insert --data appended");
  ASSERT_EQ(insert.exit_code, 0) << insert.output;
  uint64_t new_id = 0;
  ASSERT_EQ(std::sscanf(insert.output.c_str(), "id %llu",
                        (unsigned long long*)&new_id),
            1);
  CommandResult got_new = Owner("get --id " + std::to_string(new_id));
  EXPECT_NE(got_new.output.find("appended"), std::string::npos);
  CommandResult removed = Owner("remove --id 7");
  ASSERT_EQ(removed.exit_code, 0) << removed.output;
  CommandResult gone = Owner("get --id 7");
  EXPECT_NE(gone.exit_code, 0);

  // Restart the provider: the file-backed disk plus sealed state must
  // carry everything across.
  StopProvider();
  StartProvider(slots, slot_size);
  CommandResult after = Owner("get --id 42");
  ASSERT_EQ(after.exit_code, 0) << after.output;
  EXPECT_NE(after.output.find("secret-report"), std::string::npos);
  CommandResult stats = Owner("stats");
  EXPECT_NE(stats.output.find("queries="), std::string::npos);
}

TEST_F(ToolsIntegrationTest, WrongPassphraseRejected) {
  const CommandResult probe =
      Owner("init --pages 50 --page-size 128 --cache 8");
  uint64_t slots = 0, slot_size = 0;
  ASSERT_TRUE(ParseGeometry(probe.output, &slots, &slot_size))
      << probe.output;
  StartProvider(slots, slot_size);
  ASSERT_EQ(Owner("init --pages 50 --page-size 128 --cache 8").exit_code,
            0);
  ASSERT_EQ(Owner("put --id 1 --data x").exit_code, 0);
  // Same state file, wrong passphrase.
  const CommandResult wrong =
      RunShell(BinDir() + "/shpir_owner get --id 1 --port " +
          std::to_string(port_) + " --state " + state_ +
          " --passphrase wrongpass");
  EXPECT_NE(wrong.exit_code, 0);
  EXPECT_NE(wrong.output.find("MAC"), std::string::npos) << wrong.output;
}

TEST_F(ToolsIntegrationTest, StatsCliPollsRunningProvider) {
  const CommandResult probe =
      Owner("init --pages 50 --page-size 128 --cache 8");
  uint64_t slots = 0, slot_size = 0;
  ASSERT_TRUE(ParseGeometry(probe.output, &slots, &slot_size))
      << probe.output;
  StartProvider(slots, slot_size);
  ASSERT_EQ(Owner("init --pages 50 --page-size 128 --cache 8").exit_code,
            0);
  ASSERT_EQ(Owner("put --id 3 --data hello").exit_code, 0);

  const std::string stats_cmd =
      BinDir() + "/shpir_stats --port " + std::to_string(port_);
  // Default table rendering: provider-side counters moved by the owner's
  // traffic show up.
  const CommandResult table = RunShell(stats_cmd);
  ASSERT_EQ(table.exit_code, 0) << table.output;
  EXPECT_NE(table.output.find("shpir_provider_requests_total"),
            std::string::npos)
      << table.output;
  EXPECT_NE(table.output.find("shpir_disk_reads_total"), std::string::npos);
  EXPECT_NE(table.output.find("shpir_tcp_frames_total"), std::string::npos);

  // JSON mode emits the closed-schema wire payload.
  const CommandResult json = RunShell(stats_cmd + " --json");
  ASSERT_EQ(json.exit_code, 0) << json.output;
  EXPECT_EQ(json.output.rfind("{\"counters\":[", 0), 0u) << json.output;

  // Prometheus mode re-exports with type annotations.
  const CommandResult prom = RunShell(stats_cmd + " --prometheus");
  ASSERT_EQ(prom.exit_code, 0) << prom.output;
  EXPECT_NE(prom.output.find("# TYPE shpir_provider_requests_total counter"),
            std::string::npos)
      << prom.output;

  // The provider's registry never carries per-request identifiers.
  EXPECT_EQ(table.output.find("page_id"), std::string::npos);
  EXPECT_EQ(table.output.find("request_index"), std::string::npos);
}

TEST_F(ToolsIntegrationTest, ProviderRefusesBadArgs) {
  const CommandResult result = RunShell(BinDir() + "/shpir_provider");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage"), std::string::npos);
}

}  // namespace
}  // namespace shpir
