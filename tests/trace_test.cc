#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "net/wire.h"
#include "obs/export.h"
#include "shard/sharded_engine.h"

namespace shpir::obs {
namespace {

// --- TraceContext wire format ---------------------------------------------

TEST(TraceContextTest, EncodeDecodeRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 0x1122334455667788ull;
  ctx.span_id = 0x99aabbccddeeff01ull;
  ctx.sampled = true;
  const Bytes wire = ctx.Encode();
  ASSERT_EQ(wire.size(), TraceContext::kWireSize);
  Result<TraceContext> back = TraceContext::Decode(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->trace_id, ctx.trace_id);
  EXPECT_EQ(back->span_id, ctx.span_id);
  EXPECT_TRUE(back->sampled);
  EXPECT_TRUE(back->active());
}

TEST(TraceContextTest, UnsampledRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 7;
  ctx.span_id = 9;
  ctx.sampled = false;
  Result<TraceContext> back = TraceContext::Decode(ctx.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->sampled);
  EXPECT_TRUE(back->valid());
  EXPECT_FALSE(back->active());
}

TEST(TraceContextTest, RejectsEveryTruncation) {
  TraceContext ctx;
  ctx.trace_id = 5;
  ctx.span_id = 6;
  ctx.sampled = true;
  const Bytes wire = ctx.Encode();
  for (size_t len = 0; len < TraceContext::kWireSize; ++len) {
    Result<TraceContext> bad =
        TraceContext::Decode(ByteSpan(wire.data(), len));
    EXPECT_FALSE(bad.ok()) << "accepted truncation to " << len << " bytes";
  }
}

TEST(TraceContextTest, RejectsZeroTraceId) {
  Bytes wire(TraceContext::kWireSize, 0);
  wire[16] = 0x01;  // Sampled flag but trace_id == 0.
  EXPECT_FALSE(TraceContext::Decode(wire).ok());
}

TEST(TraceContextTest, RejectsHostileFlagBits) {
  TraceContext ctx;
  ctx.trace_id = 5;
  ctx.span_id = 6;
  ctx.sampled = true;
  Bytes wire = ctx.Encode();
  for (int bit = 1; bit < 8; ++bit) {
    Bytes hostile = wire;
    hostile[16] = static_cast<uint8_t>(0x01 | (1u << bit));
    EXPECT_FALSE(TraceContext::Decode(hostile).ok())
        << "accepted unknown flag bit " << bit;
  }
}

// --- Storage-wire envelope ------------------------------------------------

TEST(WireEnvelopeTest, TracedRequestRoundTrips) {
  net::Request request;
  request.op = net::Op::kReadRun;
  request.location = 42;
  request.count = 3;
  request.payload = {1, 2, 3};
  request.trace.trace_id = 0xdeadbeef;
  request.trace.span_id = 0xfeed;
  request.trace.sampled = true;
  const Bytes frame = net::EncodeRequest(request);
  Result<net::Request> back = net::DecodeRequest(frame);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->op, net::Op::kReadRun);
  EXPECT_EQ(back->location, 42u);
  EXPECT_EQ(back->count, 3u);
  EXPECT_EQ(back->payload, request.payload);
  EXPECT_EQ(back->trace.trace_id, 0xdeadbeefu);
  EXPECT_EQ(back->trace.span_id, 0xfeedu);
  EXPECT_TRUE(back->trace.sampled);
}

TEST(WireEnvelopeTest, UntracedRequestStaysByteIdentical) {
  net::Request request;
  request.op = net::Op::kRead;
  request.location = 9;
  const Bytes frame = net::EncodeRequest(request);
  // No envelope: the first byte is the op itself.
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame[0], static_cast<uint8_t>(net::Op::kRead));
  Result<net::Request> back = net::DecodeRequest(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->trace.valid());
}

TEST(WireEnvelopeTest, RejectsNestedEnvelope) {
  // Inner frame that is itself a kTraced envelope.
  net::Request inner;
  inner.op = net::Op::kRead;
  inner.location = 1;
  inner.trace.trace_id = 10;
  inner.trace.span_id = 11;
  inner.trace.sampled = true;
  const Bytes inner_frame = net::EncodeRequest(inner);  // Enveloped.
  ASSERT_EQ(inner_frame[0], static_cast<uint8_t>(net::Op::kTraced));

  Bytes hostile;
  hostile.push_back(static_cast<uint8_t>(net::Op::kTraced));
  Bytes header(16, 0);
  header[0] = 1;  // trace_id = 1.
  hostile.insert(hostile.end(), header.begin(), header.end());
  hostile.push_back(0x01);  // flags: sampled.
  hostile.insert(hostile.end(), inner_frame.begin(), inner_frame.end());
  EXPECT_FALSE(net::DecodeRequest(hostile).ok());
}

TEST(WireEnvelopeTest, RejectsTruncatedEnvelope) {
  net::Request request;
  request.op = net::Op::kRead;
  request.location = 9;
  request.trace.trace_id = 3;
  request.trace.span_id = 4;
  request.trace.sampled = true;
  const Bytes frame = net::EncodeRequest(request);
  for (size_t len = 1; len < frame.size(); len += 3) {
    EXPECT_FALSE(net::DecodeRequest(ByteSpan(frame.data(), len)).ok())
        << "accepted truncation to " << len << " bytes";
  }
}

TEST(WireEnvelopeTest, RejectsUnknownEnvelopeFlags) {
  net::Request request;
  request.op = net::Op::kRead;
  request.trace.trace_id = 3;
  request.trace.span_id = 4;
  request.trace.sampled = true;
  Bytes frame = net::EncodeRequest(request);
  // The flags byte sits right after the 17-byte header.
  frame[17] = 0x83;
  EXPECT_FALSE(net::DecodeRequest(frame).ok());
}

TEST(WireEnvelopeTest, TraceDumpIsAKnownOp) {
  net::Request request;
  request.op = net::Op::kTraceDump;
  Result<net::Request> back = net::DecodeRequest(net::EncodeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, net::Op::kTraceDump);
}

// --- Sampler --------------------------------------------------------------

TEST(TracerTest, SamplesExactlyOneInN) {
  Tracer::Options options;
  options.sample_every = 4;
  options.seed = 1;
  Tracer tracer(options);
  int sampled = 0;
  for (int i = 0; i < 64; ++i) {
    if (tracer.StartTrace().active()) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 16);
  EXPECT_EQ(tracer.started(), 64u);
  EXPECT_EQ(tracer.sampled(), 16u);
}

TEST(TracerTest, SampleEveryZeroDisablesAndOneSamplesAll) {
  Tracer::Options off;
  off.sample_every = 0;
  off.seed = 1;
  Tracer off_tracer(off);
  Tracer::Options all;
  all.sample_every = 1;
  all.seed = 1;
  Tracer all_tracer(all);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(off_tracer.StartTrace().active());
    EXPECT_TRUE(all_tracer.StartTrace().active());
  }
  EXPECT_EQ(off_tracer.sampled(), 0u);
  EXPECT_EQ(all_tracer.sampled(), 32u);
}

TEST(TracerTest, SeededIdStreamIsDeterministic) {
  Tracer::Options options;
  options.sample_every = 1;
  options.seed = 42;
  Tracer a(options);
  Tracer b(options);
  for (int i = 0; i < 16; ++i) {
    const TraceContext ca = a.StartTrace();
    const TraceContext cb = b.StartTrace();
    EXPECT_EQ(ca.trace_id, cb.trace_id);
    EXPECT_EQ(ca.span_id, cb.span_id);
    EXPECT_NE(ca.trace_id, 0u);
    EXPECT_EQ(a.NewSpanId(), b.NewSpanId());
  }
}

TEST(TracerTest, RateLimitCapsSampledBursts) {
  Tracer::Options options;
  options.sample_every = 1;
  options.seed = 3;
  options.max_sampled_per_sec = 2;
  Tracer tracer(options);
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    if (tracer.StartTrace().active()) {
      ++sampled;
    }
  }
  // The loop takes well under a second; allow one window rollover.
  EXPECT_GE(sampled, 1);
  EXPECT_LE(sampled, 4);
}

// --- Ring buffer ----------------------------------------------------------

TEST(TracerTest, RingWraparoundKeepsNewestSpans) {
  Tracer::Options options;
  options.sample_every = 1;
  options.buffer_capacity = 8;
  options.buffer_lanes = 1;
  options.seed = 5;
  Tracer tracer(options);
  for (uint64_t i = 0; i < 20; ++i) {
    SpanRecord span;
    span.trace_id = 1;
    span.span_id = i + 1;
    span.name = "span";
    span.start_ns = 1000 + i;
    span.duration_ns = 10;
    tracer.Record(span);
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // The oldest 12 were overwritten; the survivors are 13..20 in start
  // order.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].span_id, 13 + i);
    EXPECT_EQ(spans[i].start_ns, 1000 + 12 + i);
  }
}

TEST(TracerTest, PublishMetricsExportsRingDropCounter) {
  MetricsRegistry registry;
  Tracer::Options options;
  options.sample_every = 1;
  options.buffer_capacity = 4;
  options.buffer_lanes = 1;
  options.seed = 7;
  Tracer tracer(options);
  tracer.PublishMetrics(&registry);
  for (uint64_t i = 0; i < 10; ++i) {
    SpanRecord span;
    span.trace_id = 1;
    span.span_id = i + 1;
    span.name = "span";
    span.start_ns = i;
    tracer.Record(span);
  }
  // Ring saturation is observable on the metrics surface without a
  // TRACE_DUMP: 10 recorded into 4 slots leaves 6 overwritten.
  double recorded = -1;
  double dropped = -1;
  for (const SnapshotGauge& gauge : registry.Snapshot().gauges) {
    if (gauge.name == "shpir_trace_spans_recorded_total") {
      recorded = gauge.value;
    }
    if (gauge.name == "shpir_trace_spans_dropped_total") {
      dropped = gauge.value;
    }
  }
  EXPECT_EQ(recorded, 10.0);
  EXPECT_EQ(dropped, 6.0);
}

TEST(TraceSpanTest, ChildOfInactiveParentRecordsNothing) {
  Tracer::Options options;
  options.sample_every = 1;
  options.seed = 6;
  Tracer tracer(options);
  TraceContext inactive;  // trace_id == 0.
  { TraceSpan span(&tracer, inactive, "child"); }
  TraceContext unsampled;
  unsampled.trace_id = 9;
  unsampled.sampled = false;
  { TraceSpan span(&tracer, unsampled, "child"); }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

// --- Chrome trace JSON ----------------------------------------------------

TEST(ChromeTraceJsonTest, EscapesHostileSpanNames) {
  SpanRecord span;
  span.trace_id = 1;
  span.span_id = 2;
  span.name = "bad\"name\\with\nctrl";
  span.start_ns = 5000;
  span.duration_ns = 2000;
  const std::string json = ToChromeTraceJson({span});
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("bad\\\"name\\\\with\\nctrl"), std::string::npos);
  // The raw quote must not appear unescaped (would break the JSON).
  EXPECT_EQ(json.find("bad\"name"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(EscapeJsonString("plain_name"), "plain_name");
  EXPECT_EQ(EscapeJsonString("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJsonString("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJsonString("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(EscapeJsonString(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonEscapeTest, SnapshotParserDecodesEscapes) {
  const std::string json =
      "{\"counters\":[{\"name\":\"a\\\"b\\\\c\\nd\\u0041\",\"value\":3}],"
      "\"gauges\":[],\"histograms\":[]}";
  Result<MetricsSnapshot> snapshot = ParseJsonSnapshot(json);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_EQ(snapshot->counters.size(), 1u);
  EXPECT_EQ(snapshot->counters[0].name, "a\"b\\c\ndA");
  EXPECT_EQ(snapshot->counters[0].value, 3u);
}

TEST(JsonEscapeTest, SnapshotParserRejectsBadEscapes) {
  EXPECT_FALSE(ParseJsonSnapshot("{\"counters\":[{\"name\":\"a\\q\","
                                 "\"value\":1}],\"gauges\":[],"
                                 "\"histograms\":[]}")
                   .ok());
  EXPECT_FALSE(ParseJsonSnapshot("{\"counters\":[{\"name\":\"a\\u12\","
                                 "\"value\":1}],\"gauges\":[],"
                                 "\"histograms\":[]}")
                   .ok());
  EXPECT_FALSE(ParseJsonSnapshot("{\"counters\":[{\"name\":\"a\\u1234\","
                                 "\"value\":1}],\"gauges\":[],"
                                 "\"histograms\":[]}")
                   .ok());
}

TEST(JsonEscapeTest, SnapshotRoundTripsEscapedNames) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"weird\"name\\with\nescapes", 7});
  Result<MetricsSnapshot> back = ParseJsonSnapshot(ToJson(snapshot));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->counters.size(), 1u);
  EXPECT_EQ(back->counters[0].name, snapshot.counters[0].name);
}

// --- End-to-end: hub + sharded engine -------------------------------------

struct HubRig {
  std::unique_ptr<shard::ShardedPirEngine> engine;
  std::unique_ptr<net::ServiceHub> hub;
  Bytes psk;

  static HubRig Make(Tracer* tracer, uint64_t shards) {
    shard::ShardedPirEngine::Options options;
    options.num_pages = 64;
    options.page_size = 32;
    options.cache_pages = 8;
    options.privacy_c = 2.0;
    options.shards = shards;
    options.queue_depth = 64;
    options.seed = 11;
    HubRig rig;
    auto engine = shard::ShardedPirEngine::Create(options);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    SHPIR_CHECK_OK(rig.engine->Initialize({}));
    rig.engine->EnableTracing(tracer);
    rig.psk = Bytes{'t', 'e', 's', 't'};
    rig.hub = std::make_unique<net::ServiceHub>(rig.engine.get(), rig.psk,
                                                /*rng_seed=*/3, nullptr,
                                                tracer);
    return rig;
  }

  net::PirServiceClient MakeClient(uint64_t client_id, Tracer* tracer) {
    crypto::SecureRandom rng(17);
    Bytes nonce(net::SecureSession::kNonceSize);
    rng.Fill(nonce);
    Result<Bytes> reply =
        hub->HandleFrame(net::ServiceHub::MakeHello(client_id, nonce));
    SHPIR_CHECK(reply.ok());
    Result<net::SecureSession> session =
        net::ServiceHub::CompleteHandshake(*reply, psk, client_id, nonce);
    SHPIR_CHECK(session.ok());
    net::ServiceHub* raw_hub = hub.get();
    net::PirServiceClient client(
        std::move(session).value(), [raw_hub, client_id](ByteSpan record) {
          return raw_hub->HandleFrame(
              net::ServiceHub::MakeData(client_id, record));
        });
    client.set_tracer(tracer);
    return client;
  }
};

int CountName(const std::vector<SpanRecord>& spans, const std::string& name) {
  return static_cast<int>(
      std::count_if(spans.begin(), spans.end(), [&name](const SpanRecord& s) {
        return name == s.name;
      }));
}

TEST(EndToEndTraceTest, OneQueryYieldsOneLinkedSpanTree) {
  Tracer::Options options;
  options.sample_every = 1;  // Sample everything: deterministic tree.
  options.seed = 23;
  Tracer tracer(options);
  HubRig rig = HubRig::Make(&tracer, /*shards=*/2);
  net::PirServiceClient client = rig.MakeClient(5, &tracer);

  ASSERT_TRUE(client.Retrieve(13).ok());
  rig.engine->WaitIdle();  // Let the cover query's spans land.

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_FALSE(spans.empty());

  // Exactly one trace.
  std::set<uint64_t> trace_ids;
  for (const SpanRecord& span : spans) {
    trace_ids.insert(span.trace_id);
  }
  EXPECT_EQ(trace_ids.size(), 1u);

  // The full pipeline is present: client encode, hub queue wait, the
  // service handler, the fan-out, and per shard a queue wait plus a
  // shard query (REAL AND COVER SHARE THE NAME — distinguishing them
  // would leak the owning shard), each with an engine round and disk
  // I/O below it.
  EXPECT_EQ(CountName(spans, "client_query"), 1);
  EXPECT_EQ(CountName(spans, "client_encode"), 1);
  EXPECT_EQ(CountName(spans, "hub_queue_wait"), 1);
  EXPECT_EQ(CountName(spans, "service_handle"), 1);
  EXPECT_EQ(CountName(spans, "shard_fanout"), 1);
  EXPECT_EQ(CountName(spans, "queue_wait"), 2);
  EXPECT_EQ(CountName(spans, "shard_query"), 2);
  EXPECT_EQ(CountName(spans, "engine_round"), 2);
  EXPECT_GE(CountName(spans, "disk_read"), 2);
  EXPECT_GE(CountName(spans, "disk_write"), 2);

  // Both shards appear, with identical span vocabularies.
  std::set<int32_t> query_shards;
  for (const SpanRecord& span : spans) {
    if (std::string(span.name) == "shard_query") {
      query_shards.insert(span.shard);
    }
  }
  EXPECT_EQ(query_shards, (std::set<int32_t>{0, 1}));

  // Parent linkage: every span except the root points at a recorded
  // span, so the tree reassembles with no orphans.
  std::set<uint64_t> span_ids;
  for (const SpanRecord& span : spans) {
    EXPECT_NE(span.span_id, 0u);
    span_ids.insert(span.span_id);
  }
  EXPECT_EQ(span_ids.size(), spans.size());  // Ids are unique.
  for (const SpanRecord& span : spans) {
    if (std::string(span.name) == "client_query") {
      EXPECT_EQ(span.parent_span_id, 0u);
    } else {
      EXPECT_TRUE(span_ids.count(span.parent_span_id))
          << span.name << " has an orphan parent";
    }
  }
}

TEST(EndToEndTraceTest, UnsampledQueriesLeaveNoSpans) {
  Tracer::Options options;
  options.sample_every = 0;  // Attached but disabled.
  options.seed = 29;
  Tracer tracer(options);
  HubRig rig = HubRig::Make(&tracer, 2);
  net::PirServiceClient client = rig.MakeClient(6, &tracer);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Retrieve(i).ok());
  }
  rig.engine->WaitIdle();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(EndToEndTraceTest, TraceDumpReturnsChromeJsonThroughTheService) {
  Tracer::Options options;
  options.sample_every = 1;
  options.seed = 31;
  Tracer tracer(options);
  HubRig rig = HubRig::Make(&tracer, 2);
  net::PirServiceClient client = rig.MakeClient(7, &tracer);
  ASSERT_TRUE(client.Retrieve(3).ok());
  rig.engine->WaitIdle();
  Result<Bytes> dump = client.TraceDump();
  ASSERT_TRUE(dump.ok()) << dump.status();
  const std::string json(dump->begin(), dump->end());
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("shard_query"), std::string::npos);
  EXPECT_NE(json.find("client_query"), std::string::npos);
}

}  // namespace
}  // namespace shpir::obs
