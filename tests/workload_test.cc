#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "model/queueing.h"

namespace shpir::workload {
namespace {

TEST(WorkloadTest, UniformStaysInRangeAndIsFlat) {
  UniformWorkload wl(100, 1);
  std::map<storage::PageId, int> counts;
  for (int i = 0; i < 100000; ++i) {
    const storage::PageId id = wl.Next();
    ASSERT_LT(id, 100u);
    counts[id]++;
  }
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [id, count] : counts) {
    EXPECT_GT(count, 700) << id;
    EXPECT_LT(count, 1300) << id;
  }
  const std::vector<double> dist = wl.Distribution();
  EXPECT_DOUBLE_EQ(dist[0], 0.01);
}

TEST(WorkloadTest, ZipfIsSkewedAndMatchesDistribution) {
  ZipfWorkload wl(100, 1.0, 2);
  std::map<storage::PageId, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[wl.Next()]++;
  }
  // Page 0 is the most popular; empirical frequency tracks the density.
  const std::vector<double> dist = wl.Distribution();
  EXPECT_GT(dist[0], dist[1]);
  EXPECT_GT(dist[1], dist[50]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, dist[0], 0.01);
  EXPECT_NEAR(static_cast<double>(counts[10]) / kDraws, dist[10], 0.01);
  double sum = 0;
  for (double p : dist) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WorkloadTest, HotspotConcentratesTraffic) {
  HotspotWorkload wl(1000, 10, 0.9, 3);
  int hot = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (wl.Next() < 10) {
      ++hot;
    }
  }
  // 90% explicit + ~1% incidental from the uniform tail.
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.901, 0.02);
  double sum = 0;
  for (double p : wl.Distribution()) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WorkloadTest, ScanCyclesInOrder) {
  ScanWorkload wl(5);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 5; ++i) {
      EXPECT_EQ(wl.Next(), i);
    }
  }
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  ZipfWorkload a(100, 1.2, 7), b(100, 1.2, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(KeyedWorkloadTest, KeyForIndexIsCanonical) {
  EXPECT_EQ(KeyForIndex(0), Bytes({'k', 'e', 'y', '-', '0'}));
  EXPECT_EQ(KeyForIndex(42), KeyForIndex(42));
  EXPECT_NE(KeyForIndex(1), KeyForIndex(10));
}

TEST(KeyedWorkloadTest, ZipfKeysRespectHitRatioAndKeySpace) {
  constexpr uint64_t kNumKeys = 200;
  constexpr int kDraws = 20000;
  ZipfKeyWorkload wl(kNumKeys, 0.99, 0.7, 5);
  std::set<Bytes> key_space;
  for (uint64_t i = 0; i < kNumKeys; ++i) {
    key_space.insert(KeyForIndex(i));
  }
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    const KeyRequest request = wl.Next();
    if (request.hit) {
      ++hits;
      EXPECT_TRUE(key_space.count(request.key))
          << "hit key outside the key space";
    } else {
      EXPECT_FALSE(key_space.count(request.key))
          << "miss key collides with a stored key";
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.7, 0.02);
}

TEST(KeyedWorkloadTest, DeterministicGivenSeed) {
  ZipfKeyWorkload a(100, 1.0, 0.5, 9), b(100, 1.0, 0.5, 9);
  for (int i = 0; i < 200; ++i) {
    const KeyRequest ra = a.Next();
    const KeyRequest rb = b.Next();
    EXPECT_EQ(ra.hit, rb.hit);
    EXPECT_EQ(ra.key, rb.key);
  }
}

}  // namespace
}  // namespace shpir::workload

namespace shpir::model {
namespace {

TEST(QueueingTest, EmptyAndInvalidInputs) {
  EXPECT_DOUBLE_EQ(SimulateFifoQueue({}, 1.0, 1).mean_s, 0.0);
  EXPECT_DOUBLE_EQ(SimulateFifoQueue({1.0}, 0.0, 1).mean_s, 0.0);
}

TEST(QueueingTest, LightLoadSojournNearService) {
  // At negligible load, sojourn ~= service time.
  std::vector<double> service(5000, 0.010);
  const QueueStats stats = SimulateFifoQueue(service, 1.0, 2);
  EXPECT_NEAR(stats.utilization, 0.010, 1e-9);
  EXPECT_NEAR(stats.p50_s, 0.010, 0.002);
  EXPECT_LT(stats.p99_s, 0.05);
}

TEST(QueueingTest, MD1MeanWaitMatchesTheory) {
  // M/D/1: W_q = rho * s / (2 (1 - rho)). At rho = 0.5, s = 10ms:
  // W_q = 5ms, sojourn = 15ms.
  std::vector<double> service(200000, 0.010);
  const QueueStats stats = SimulateFifoQueue(service, 50.0, 3);
  EXPECT_NEAR(stats.utilization, 0.5, 1e-9);
  EXPECT_NEAR(stats.mean_s, 0.015, 0.002);
}

TEST(QueueingTest, ServiceSpikesInflateTheTail) {
  // Identical mean service; one stream has rare 100x spikes.
  std::vector<double> flat(20000, 0.010);
  std::vector<double> spiky = flat;
  for (size_t i = 0; i < spiky.size(); i += 200) {
    spiky[i] = 1.0;  // One 1s spike per 200 queries.
  }
  const double rate = 20.0;
  const QueueStats flat_stats = SimulateFifoQueue(flat, rate, 4);
  const QueueStats spiky_stats = SimulateFifoQueue(spiky, rate, 4);
  EXPECT_GT(spiky_stats.p99_s, 10 * flat_stats.p99_s);
}

TEST(QueueingTest, HigherLoadMeansLongerQueues) {
  std::vector<double> service(50000, 0.010);
  const QueueStats low = SimulateFifoQueue(service, 30.0, 5);
  const QueueStats high = SimulateFifoQueue(service, 90.0, 5);
  EXPECT_GT(high.mean_s, low.mean_s);
  EXPECT_GT(high.p99_s, low.p99_s);
}

}  // namespace
}  // namespace shpir::model

namespace shpir::workload {
namespace {

DiurnalBurstyWorkload::Options BurstyOptions(uint64_t seed) {
  DiurnalBurstyWorkload::Options options;
  options.num_pages = 128;
  options.base_qps = 50.0;
  options.mean_burst_interval_s = 10.0;
  options.burst_duration_s = 3.0;
  options.seed = seed;
  return options;
}

TEST(DiurnalBurstyWorkloadTest, SeededReplayIsExact) {
  // The controller bench depends on this: the same seed must replay the
  // byte-identical (arrival_ns, page) schedule, so adaptive and static
  // runs see the same traffic and regressions reproduce.
  DiurnalBurstyWorkload a(BurstyOptions(7));
  DiurnalBurstyWorkload b(BurstyOptions(7));
  DiurnalBurstyWorkload other(BurstyOptions(8));
  EXPECT_STREQ(a.name(), "diurnal-bursty");

  bool diverged = false;
  uint64_t last_arrival = 0;
  for (int i = 0; i < 5000; ++i) {
    const TimedRequest ra = a.Next();
    const TimedRequest rb = b.Next();
    const TimedRequest rc = other.Next();
    ASSERT_EQ(ra.arrival_ns, rb.arrival_ns) << "at request " << i;
    ASSERT_EQ(ra.page, rb.page) << "at request " << i;
    diverged = diverged || ra.arrival_ns != rc.arrival_ns ||
               ra.page != rc.page;
    EXPECT_LT(ra.page, 128u);
    EXPECT_GE(ra.arrival_ns, last_arrival);  // Monotone stream clock.
    last_arrival = ra.arrival_ns;
  }
  EXPECT_TRUE(diverged);  // A different seed is a different schedule.
}

TEST(DiurnalBurstyWorkloadTest, BurstsElevateTheArrivalRate) {
  DiurnalBurstyWorkload::Options options = BurstyOptions(21);
  options.burst_factor = 5.0;
  DiurnalBurstyWorkload wl(options);

  double burst_gap_sum = 0.0, quiet_gap_sum = 0.0;
  uint64_t burst_count = 0, quiet_count = 0;
  double previous_clock = 0.0;
  for (int i = 0; i < 20000; ++i) {
    (void)wl.Next();
    const double gap = wl.clock_seconds() - previous_clock;
    previous_clock = wl.clock_seconds();
    if (wl.in_burst()) {
      burst_gap_sum += gap;
      ++burst_count;
    } else {
      quiet_gap_sum += gap;
      ++quiet_count;
    }
  }
  // Both regimes appear, and inside a burst arrivals come much faster.
  ASSERT_GT(burst_count, 100u);
  ASSERT_GT(quiet_count, 100u);
  EXPECT_LT(burst_gap_sum / burst_count,
            0.5 * (quiet_gap_sum / quiet_count));
}

}  // namespace
}  // namespace shpir::workload
