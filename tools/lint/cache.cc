#include "lint/cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace shpir::lint {

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

FactsCache::FactsCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      dir_.clear();  // Unwritable cache dir: run uncached.
    }
  }
}

std::string FactsCache::EntryPath(const std::string& content) const {
  std::ostringstream name;
  name << std::hex << Fnv1a64(content) << '-' << std::dec
       << kFactsFormatVersion << ".facts";
  return (std::filesystem::path(dir_) / name.str()).string();
}

bool FactsCache::Load(const std::string& path, const std::string& content,
                      FileFacts* out) {
  if (dir_.empty()) {
    ++misses_;
    return false;
  }
  std::ifstream in(EntryPath(content), std::ios::binary);
  if (!in) {
    ++misses_;
    return false;
  }
  std::ostringstream blob;
  blob << in.rdbuf();
  FileFacts facts;
  if (!DeserializeFacts(blob.str(), &facts)) {
    ++misses_;
    return false;
  }
  facts.path = path;
  // Findings and allows carry the path too; rebind after a move between
  // checkouts (the serialized form is path-free except these).
  for (Finding& finding : facts.lex_findings) {
    finding.file = path;
  }
  *out = std::move(facts);
  ++hits_;
  return true;
}

void FactsCache::Store(const std::string& content, const FileFacts& facts) {
  if (dir_.empty()) {
    return;
  }
  const std::string entry = EntryPath(content);
  std::ofstream out(entry + ".tmp", std::ios::binary | std::ios::trunc);
  if (!out) {
    return;
  }
  out << SerializeFacts(facts);
  out.close();
  std::error_code ec;
  std::filesystem::rename(entry + ".tmp", entry, ec);  // Atomic publish.
}

}  // namespace shpir::lint
