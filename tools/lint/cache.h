#ifndef SHPIR_TOOLS_LINT_CACHE_H_
#define SHPIR_TOOLS_LINT_CACHE_H_

#include <cstdint>
#include <string>

#include "lint/facts.h"

/// Incremental facts cache.
///
/// FileFacts depend only on a file's bytes, so they are memoized under
/// a key derived from the content hash (FNV-1a 64) and the facts format
/// version. The global fixed point is recomputed on every run — only
/// lexing and fact extraction are skipped — which keeps caching sound
/// by construction: a change in one file can never invalidate another
/// file's cached facts, and cross-file effects live entirely in the
/// uncached global phase.

namespace shpir::lint {

uint64_t Fnv1a64(const std::string& bytes);

class FactsCache {
 public:
  /// `dir` empty disables the cache (Load misses, Store is a no-op).
  explicit FactsCache(std::string dir);

  /// Loads facts for a file with the given content. On hit, `out` is
  /// filled (with `out->path` rebound to `path`) and true is returned.
  bool Load(const std::string& path, const std::string& content,
            FileFacts* out);

  /// Stores facts under the content key. Failures are silent: the cache
  /// is an optimization, never a correctness dependency.
  void Store(const std::string& content, const FileFacts& facts);

  int hits() const { return hits_; }
  int misses() const { return misses_; }

 private:
  std::string EntryPath(const std::string& content) const;

  std::string dir_;
  int hits_ = 0;
  int misses_ = 0;
};

}  // namespace shpir::lint

#endif  // SHPIR_TOOLS_LINT_CACHE_H_
