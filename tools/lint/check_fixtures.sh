#!/bin/sh
# lint-negative gate: scan every fixture set named in
# tests/lint_fixtures/EXPECTED and fail unless shpir_lint exits 1 AND
# reports a finding with the exact expected rule id. Run by both ctest
# (shpir_lint_negative) and the static-analysis CI job, so a linter
# that silently goes blind on a rule cannot merge.
#
# Usage: check_fixtures.sh <shpir_lint binary> <fixtures dir>
set -u

LINT=$1
DIR=$2
status=0
checked=0

while IFS='	' read -r files rule; do
  case $files in '' | \#*) continue ;; esac
  set --
  for f in $files; do
    set -- "$@" "$DIR/$f"
  done
  out=$("$LINT" "$@" 2>&1)
  code=$?
  checked=$((checked + 1))
  if [ "$code" -ne 1 ]; then
    echo "lint-negative: $files: expected exit 1 (findings), got $code" >&2
    printf '%s\n' "$out" >&2
    status=1
    continue
  fi
  if ! printf '%s\n' "$out" | grep -q "\[$rule\]"; then
    echo "lint-negative: $files: no [$rule] finding fired" >&2
    printf '%s\n' "$out" >&2
    status=1
  fi
done <"$DIR/EXPECTED"

if [ "$checked" -eq 0 ]; then
  echo "lint-negative: EXPECTED manifest is empty or unreadable" >&2
  exit 1
fi
echo "lint-negative: $checked fixture expectations verified"
exit $status
