#include "lint/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <tuple>

namespace shpir::lint {

namespace {

const std::set<std::string>& MemcmpFamily() {
  static const std::set<std::string> kSet = {
      "memcmp", "bcmp", "strcmp", "strncmp", "strcasecmp", "strncasecmp"};
  return kSet;
}

const std::set<std::string>& LogSinks() {
  static const std::set<std::string> kSet = {
      "printf", "fprintf",  "sprintf",    "snprintf", "vprintf", "vfprintf",
      "puts",   "fputs",    "fwrite",     "perror",   "syslog",  "Log",
      "LogInfo", "LogWarning", "LogError", "LogDebug", "LOG",    "PLOG",
      "DLOG",   "VLOG",     "Record",     "Increment", "Set",    "Add",
      "Observe", "Emit"};
  return kSet;
}

// Only the leaf wire primitives are seeded. Higher-level serializers
// (Serialize/Append/...) are analyzed interprocedurally and inherit a
// wire sink only if they transitively reach one of these, so codecs
// that fill enclave-local buffers do not count as channel writes.
const std::set<std::string>& WireSinks() {
  static const std::set<std::string> kSet = {"WriteU8", "WriteU64",
                                             "WriteBytes", "WriteRaw"};
  return kSet;
}

/// Arity key for seeded external sinks: they apply to a call of any
/// argument count, unlike in-tree definitions which only bind when the
/// call's argument count is plausible for their parameter list.
constexpr int kSeedArity = -1;

/// A per-function taint summary, keyed by bare callee name and param
/// count (virtual dispatch and same-arity overloads merge
/// conservatively; a 3-param Open never poisons a 1-arg Open call).
struct Summary {
  bool returns_secret = false;
  // External-sink seed: `sink_rule` fires directly when a tainted value
  // reaches a sink param (sink_all) or a listed index.
  std::string sink_rule;
  bool sink_all = false;
  std::set<int> sink_params;
  // Computed: param index -> sink rules the param transitively reaches.
  std::map<int, std::set<std::string>> param_sinks;
  // Param indices whose value flows into the return value.
  std::set<int> param_to_return;
};

/// Rules whose sites feed param summaries. secret-branch is
/// deliberately absent: in-enclave case splits on secret state are
/// pervasive and individually audited, and propagating them
/// interprocedurally would drown the four observable-channel rules in
/// noise (documented limitation in docs/STATIC_ANALYSIS.md).
bool FeedsSummary(const std::string& rule) {
  return rule == "secret-index" || rule == "secret-compare" ||
         rule == "secret-loop-bound" || rule == "secret-log" ||
         rule == "secret-alloc" || rule == "secret-wire";
}

class Engine {
 public:
  explicit Engine(const std::vector<FileFacts>& files) : files_(files) {
    SeedSummaries();
    for (const FileFacts& file : files_) {
      for (const std::string& name : file.header_secrets) {
        result_.global_secrets.insert(name);
      }
    }
  }

  EngineResult Run() {
    for (int pass = 0; pass < 24; ++pass) {
      changed_ = false;
      merged_cache_.clear();
      for (const FileFacts& file : files_) {
        for (const FunctionFact& fn : file.functions) {
          AnalyzeFunction(file, fn, /*report=*/false);
        }
        AnalyzeFunction(file, file.file_scope, /*report=*/false);
      }
      if (!changed_) {
        break;
      }
    }
    merged_cache_.clear();
    for (const FileFacts& file : files_) {
      for (const FunctionFact& fn : file.functions) {
        AnalyzeFunction(file, fn, /*report=*/true);
      }
      AnalyzeFunction(file, file.file_scope, /*report=*/true);
      for (const Finding& finding : file.lex_findings) {
        Emit(finding);
      }
    }
    if (std::getenv("SHPIR_LINT_DEBUG") != nullptr) {
      for (const auto& [name, by_arity] : summaries_) {
        for (const auto& [arity, s] : by_arity) {
          if (arity == kSeedArity ||
              (!s.returns_secret && s.param_sinks.empty())) {
            continue;
          }
          std::fprintf(stderr, "summary %s/%d ret=%d sinks=", name.c_str(),
                       arity, s.returns_secret ? 1 : 0);
          for (const auto& [p, rules] : s.param_sinks) {
            std::fprintf(stderr, "%d:", p);
            for (const auto& r : rules) std::fprintf(stderr, "%s,", r.c_str());
          }
          std::fprintf(stderr, "\n");
        }
      }
      for (const auto& [cls, members] : member_taint_) {
        std::fprintf(stderr, "members %s:", cls.c_str());
        for (const auto& m : members) std::fprintf(stderr, " %s", m.c_str());
        std::fprintf(stderr, "\n");
      }
    }
    EmitUnusedSuppressions();
    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    BuildAudit();
    return std::move(result_);
  }

 private:
  void SeedSummaries() {
    for (const std::string& name : MemcmpFamily()) {
      Summary& s = summaries_[name][kSeedArity];
      s.sink_rule = "secret-compare";
      s.sink_all = true;
    }
    for (const std::string& name : LogSinks()) {
      Summary& s = summaries_[name][kSeedArity];
      s.sink_rule = "secret-log";
      s.sink_all = true;
    }
    for (const std::string& name : WireSinks()) {
      Summary& s = summaries_[name][kSeedArity];
      s.sink_rule = "secret-wire";
      s.sink_all = true;
    }
    // Allocation-size sinks: only the size argument is observable.
    for (const char* name : {"resize", "reserve", "malloc", "alloca"}) {
      Summary& s = summaries_[name][kSeedArity];
      s.sink_rule = "secret-alloc";
      s.sink_params.insert(0);
    }
    {
      Summary& s = summaries_["calloc"][kSeedArity];
      s.sink_rule = "secret-alloc";
      s.sink_all = true;
    }
    {
      Summary& s = summaries_["realloc"][kSeedArity];
      s.sink_rule = "secret-alloc";
      s.sink_params.insert(1);
    }
  }

  static void MergeInto(Summary* out, const Summary& s) {
    out->returns_secret |= s.returns_secret;
    if (out->sink_rule.empty()) {
      out->sink_rule = s.sink_rule;
    }
    out->sink_all |= s.sink_all;
    out->sink_params.insert(s.sink_params.begin(), s.sink_params.end());
    for (const auto& [p, rules] : s.param_sinks) {
      out->param_sinks[p].insert(rules.begin(), rules.end());
    }
    out->param_to_return.insert(s.param_to_return.begin(),
                                s.param_to_return.end());
  }

  /// The merged summary a call with `nargs` arguments binds to: the
  /// exact-arity definitions when any exist, otherwise larger-arity
  /// ones (trailing default arguments), otherwise everything under the
  /// name (conservative fallback for misparsed argument lists). Seeded
  /// external sinks always apply. Memoized per global pass.
  const Summary* FindSummary(const std::string& callee, size_t nargs) {
    const auto key = std::make_pair(callee, nargs);
    auto hit = merged_cache_.find(key);
    if (hit != merged_cache_.end()) {
      return hit->second ? &hit->second.value() : nullptr;
    }
    std::optional<Summary>& slot = merged_cache_[key];
    auto it = summaries_.find(callee);
    if (it == summaries_.end()) {
      return nullptr;
    }
    const int n = static_cast<int>(nargs);
    const bool exact = it->second.count(n) != 0;
    bool larger = false;
    for (const auto& [arity, s] : it->second) {
      larger |= arity > n;
    }
    Summary merged;
    bool any = false;
    for (const auto& [arity, s] : it->second) {
      if (arity != kSeedArity && arity != n) {
        if (exact || (larger && arity < n)) {
          continue;
        }
      }
      MergeInto(&merged, s);
      any = true;
    }
    if (!any) {
      return nullptr;
    }
    slot = std::move(merged);
    return &slot.value();
  }

  /// Sink rules a tainted value reaches when passed as param `idx`.
  static std::set<std::string> RulesForParam(const Summary& s, int idx) {
    std::set<std::string> rules;
    if (!s.sink_rule.empty() &&
        (s.sink_all || s.sink_params.count(idx) != 0)) {
      rules.insert(s.sink_rule);
    }
    auto it = s.param_sinks.find(idx);
    if (it != s.param_sinks.end()) {
      rules.insert(it->second.begin(), it->second.end());
    }
    return rules;
  }

  /// The rule a finding at a call site carries: the seed's own rule for
  /// a direct external sink, secret-arg for a transitive flow.
  static std::string FindingRule(const Summary& s, int idx,
                                 const std::set<std::string>& rules) {
    if (!s.sink_rule.empty() &&
        (s.sink_all || s.sink_params.count(idx) != 0) &&
        rules.count(s.sink_rule) != 0) {
      return s.sink_rule;
    }
    return "secret-arg";
  }

  void AnalyzeFunction(const FileFacts& file, const FunctionFact& fn,
                       bool report) {
    std::set<std::string> tainted;
    std::map<std::string, std::set<int>> symbolic;
    tainted.insert(result_.global_secrets.begin(),
                   result_.global_secrets.end());
    tainted.insert(file.file_roots.begin(), file.file_roots.end());
    tainted.insert(fn.local_roots.begin(), fn.local_roots.end());
    for (int p : fn.secret_params) {
      if (p >= 0 && p < static_cast<int>(fn.params.size()) &&
          !fn.params[p].empty()) {
        tainted.insert(fn.params[p]);
      }
    }
    if (!fn.cls.empty()) {
      auto it = member_taint_.find(fn.cls);
      if (it != member_taint_.end()) {
        tainted.insert(it->second.begin(), it->second.end());
      }
    }
    for (size_t p = 0; p < fn.params.size(); ++p) {
      if (!fn.params[p].empty()) {
        symbolic[fn.params[p]].insert(static_cast<int>(p));
      }
    }

    auto allowed = [&](int line, const std::string& rule) {
      auto it = file.allows.find(line);
      return it != file.allows.end() && it->second.rules.count(rule) != 0;
    };
    auto mark_used = [&](int line) { used_.insert({file.path, line}); };
    auto symbolic_of = [&](const std::vector<std::string>& names) {
      std::set<int> out;
      for (const std::string& name : names) {
        auto it = symbolic.find(name);
        if (it != symbolic.end()) {
          out.insert(it->second.begin(), it->second.end());
        }
      }
      return out;
    };
    auto any_tainted = [&](const std::vector<std::string>& names) {
      for (const std::string& name : names) {
        if (tainted.count(name) != 0) {
          return true;
        }
      }
      return false;
    };
    auto merge_symbolic = [&](const std::string& dst,
                              const std::set<int>& src) {
      if (src.empty()) {
        return false;
      }
      std::set<int>& slot = symbolic[dst];
      const size_t before = slot.size();
      slot.insert(src.begin(), src.end());
      return slot.size() != before;
    };

    // Local fixed point over the function's dataflow facts.
    bool local_changed = true;
    for (int iter = 0; iter < 12 && local_changed; ++iter) {
      local_changed = false;
      for (const AssignFact& a : fn.assigns) {
        const bool src_tainted = any_tainted(a.srcs);
        if (src_tainted && tainted.count(a.dst) == 0) {
          if (a.dst_is_member && allowed(a.line, "secret-member")) {
            mark_used(a.line);
          } else {
            tainted.insert(a.dst);
            local_changed = true;
          }
        }
        if (src_tainted && a.dst_is_member && !fn.cls.empty() && !report &&
            !allowed(a.line, "secret-member")) {
          if (member_taint_[fn.cls].insert(a.dst).second) {
            changed_ = true;
          }
        }
        local_changed |= merge_symbolic(a.dst, symbolic_of(a.srcs));
      }
      for (const CallFact& c : fn.calls) {
        const Summary* s = FindSummary(c.callee, c.args.size());
        if (s == nullptr || c.dst.empty()) {
          continue;
        }
        bool dst_secret = s->returns_secret;
        std::set<int> sym;
        for (int p : s->param_to_return) {
          if (p >= 0 && p < static_cast<int>(c.args.size())) {
            if (any_tainted(c.args[p])) {
              dst_secret = true;
            }
            const std::set<int> arg_sym = symbolic_of(c.args[p]);
            sym.insert(arg_sym.begin(), arg_sym.end());
          }
        }
        if (dst_secret && tainted.count(c.dst) == 0) {
          if (c.dst_is_member && allowed(c.line, "secret-member")) {
            mark_used(c.line);
          } else {
            tainted.insert(c.dst);
            local_changed = true;
            if (c.dst_is_member && !fn.cls.empty() && !report &&
                member_taint_[fn.cls].insert(c.dst).second) {
              changed_ = true;
            }
          }
        }
        local_changed |= merge_symbolic(c.dst, sym);
      }
    }

    if (!report) {
      Summarize(file, fn, tainted, symbolic, allowed, mark_used, symbolic_of,
                any_tainted);
      return;
    }

    // Report phase: concrete findings only.
    for (const SiteFact& site : fn.sites) {
      std::vector<std::string> hits;
      for (const std::string& name : site.names) {
        if (tainted.count(name) != 0) {
          hits.push_back(name);
        }
      }
      bool fires = site.rule == "insecure-rng" || !hits.empty();
      if (site.rule == "secret-index" && !site.container.empty() &&
          tainted.count(site.container) != 0) {
        fires = false;  // Secret-indexed secret container stays inside.
      }
      if (!fires) {
        continue;
      }
      if (allowed(site.line, site.rule)) {
        mark_used(site.line);
        continue;
      }
      std::string message = site.message;
      if (!hits.empty()) {
        message += " (secret: '" + hits.front() + "')";
      }
      Emit({file.path, site.line, site.rule, message});
    }
    for (const CallFact& c : fn.calls) {
      const Summary* s = FindSummary(c.callee, c.args.size());
      if (s == nullptr) {
        continue;
      }
      for (size_t i = 0; i < c.args.size(); ++i) {
        const std::set<std::string> rules =
            RulesForParam(*s, static_cast<int>(i));
        if (rules.empty()) {
          continue;
        }
        std::string hit;
        for (const std::string& name : c.args[i]) {
          if (tainted.count(name) != 0) {
            hit = name;
            break;
          }
        }
        if (hit.empty()) {
          continue;
        }
        const std::string rule =
            FindingRule(*s, static_cast<int>(i), rules);
        if (allowed(c.line, rule)) {
          mark_used(c.line);
          continue;
        }
        std::string message;
        if (rule == "secret-arg") {
          std::string sinks;
          for (const std::string& r : rules) {
            sinks += (sinks.empty() ? "" : ", ") + r;
          }
          message = "secret '" + hit + "' passed to '" + c.callee +
                    "' argument " + std::to_string(i + 1) +
                    ", which flows to a sink (" + sinks + ")";
        } else if (rule == "secret-compare") {
          message = "secret '" + hit + "' compared via '" + c.callee +
                    "'; use crypto::ConstantTimeEquals";
        } else if (rule == "secret-wire") {
          message = "secret '" + hit + "' written to the wire via '" +
                    c.callee + "'; seal before serializing";
        } else if (rule == "secret-alloc") {
          message = "secret-dependent size '" + hit +
                    "' passed to allocator '" + c.callee + "'";
        } else {
          message = "secret '" + hit + "' passed to logging/metrics sink '" +
                    c.callee + "'";
        }
        Emit({file.path, c.line, rule, message});
      }
    }
  }

  template <typename AllowedFn, typename MarkUsedFn, typename SymbolicFn,
            typename TaintedFn>
  void Summarize(const FileFacts& file, const FunctionFact& fn,
                 const std::set<std::string>& tainted,
                 const std::map<std::string, std::set<int>>& symbolic,
                 AllowedFn allowed, MarkUsedFn mark_used,
                 SymbolicFn symbolic_of, TaintedFn any_tainted) {
    (void)symbolic;
    bool returns_secret = false;
    std::set<int> param_to_return;
    for (const ReturnFact& r : fn.returns) {
      const bool hot = any_tainted(r.names);
      const std::set<int> sym = symbolic_of(r.names);
      if (allowed(r.line, "secret-return")) {
        if (hot || !sym.empty()) {
          mark_used(r.line);  // Audited declassification.
        }
        continue;
      }
      returns_secret |= hot;
      param_to_return.insert(sym.begin(), sym.end());
    }
    const bool debug = std::getenv("SHPIR_LINT_DEBUG") != nullptr;
    std::map<int, std::set<std::string>> param_sinks;
    auto feed = [&](int p, const std::string& rule, int line) {
      if (param_sinks[p].insert(rule).second && debug) {
        std::fprintf(stderr, "feed %s/%zu p%d %s @ %s:%d\n", fn.name.c_str(),
                     fn.params.size(), p, rule.c_str(), file.path.c_str(),
                     line);
      }
    };
    for (const SiteFact& site : fn.sites) {
      if (!FeedsSummary(site.rule)) {
        continue;
      }
      if (site.rule == "secret-index" && !site.container.empty() &&
          tainted.count(site.container) != 0) {
        continue;
      }
      const std::set<int> sym = symbolic_of(site.names);
      if (allowed(site.line, site.rule)) {
        // A suppressed leak point does not feed summaries: the audit at
        // the sink covers every caller-side path into it.
        if (!sym.empty()) {
          mark_used(site.line);
        }
        continue;
      }
      for (int p : sym) {
        feed(p, site.rule, site.line);
      }
    }
    for (const CallFact& c : fn.calls) {
      const Summary* s = FindSummary(c.callee, c.args.size());
      if (s == nullptr) {
        continue;
      }
      if (c.in_return) {
        if (allowed(c.line, "secret-return")) {
          if (s->returns_secret) {
            mark_used(c.line);
          }
        } else {
          returns_secret |= s->returns_secret;
          for (int p : s->param_to_return) {
            if (p >= 0 && p < static_cast<int>(c.args.size())) {
              const std::set<int> sym = symbolic_of(c.args[p]);
              param_to_return.insert(sym.begin(), sym.end());
            }
          }
        }
      }
      for (size_t i = 0; i < c.args.size(); ++i) {
        const std::set<std::string> rules =
            RulesForParam(*s, static_cast<int>(i));
        if (rules.empty()) {
          continue;
        }
        const std::set<int> sym = symbolic_of(c.args[i]);
        if (sym.empty()) {
          continue;
        }
        if (allowed(c.line, FindingRule(*s, static_cast<int>(i), rules))) {
          mark_used(c.line);
          continue;
        }
        for (int p : sym) {
          for (const std::string& rule : rules) {
            feed(p, rule, c.line);
          }
        }
      }
    }
    if (fn.name.empty() || fn.name[0] == '<') {
      return;  // File scope is not callable.
    }
    Summary& merged = summaries_[fn.name][static_cast<int>(fn.params.size())];
    if (returns_secret && !merged.returns_secret) {
      merged.returns_secret = true;
      changed_ = true;
    }
    for (int p : param_to_return) {
      if (merged.param_to_return.insert(p).second) {
        changed_ = true;
      }
    }
    for (const auto& [p, rules] : param_sinks) {
      std::set<std::string>& slot = merged.param_sinks[p];
      for (const std::string& rule : rules) {
        if (slot.insert(rule).second) {
          changed_ = true;
        }
      }
    }
    (void)file;
  }

  void Emit(const Finding& finding) {
    if (emitted_.insert({finding.file, finding.line, finding.rule}).second) {
      result_.findings.push_back(finding);
    }
  }

  void EmitUnusedSuppressions() {
    for (const FileFacts& file : files_) {
      for (const auto& [line, allow] : file.allows) {
        if (used_.count({file.path, line}) != 0) {
          continue;
        }
        std::string rules;
        for (const std::string& rule : allow.rules) {
          rules += (rules.empty() ? "" : ", ") + rule;
        }
        Emit({file.path, line, "unused-suppression",
              "shpir-lint-allow(" + rules +
                  ") does not match any finding; delete it or fix the "
                  "rule list"});
      }
    }
  }

  void BuildAudit() {
    for (const FileFacts& file : files_) {
      for (const auto& [line, allow] : file.allows) {
        AuditEntry entry;
        entry.file = file.path;
        entry.line = line;
        entry.rules.assign(allow.rules.begin(), allow.rules.end());
        entry.reason = allow.reason;
        entry.used = used_.count({file.path, line}) != 0;
        result_.audit.push_back(std::move(entry));
      }
    }
    std::sort(result_.audit.begin(), result_.audit.end(),
              [](const AuditEntry& a, const AuditEntry& b) {
                return std::tie(a.file, a.line) < std::tie(b.file, b.line);
              });
  }

  const std::vector<FileFacts>& files_;
  std::map<std::string, std::map<int, Summary>> summaries_;
  std::map<std::pair<std::string, size_t>, std::optional<Summary>>
      merged_cache_;
  std::map<std::string, std::set<std::string>> member_taint_;
  std::set<std::pair<std::string, int>> used_;
  std::set<std::tuple<std::string, int, std::string>> emitted_;
  bool changed_ = false;
  EngineResult result_;
};

}  // namespace

EngineResult Analyze(const std::vector<FileFacts>& files) {
  return Engine(files).Run();
}

}  // namespace shpir::lint
