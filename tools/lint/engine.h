#ifndef SHPIR_TOOLS_LINT_ENGINE_H_
#define SHPIR_TOOLS_LINT_ENGINE_H_

#include <set>
#include <string>
#include <vector>

#include "lint/facts.h"

/// Whole-program secret-flow analysis.
///
/// The engine consumes per-file FileFacts and runs two phases:
///
///  1. Summary phase: for every function, compute (a) whether its
///     return value carries taint, (b) which parameters flow into an
///     observable-channel sink (directly, or transitively through
///     further calls), and (c) which members it taints. Summaries start
///     from seeds for external sinks (printf family, memcmp family,
///     serde writers, allocator sizes) and are iterated over the whole
///     tree to a fixed point, so taint crosses calls, returns, member
///     writes, and translation-unit boundaries.
///
///  2. Report phase: re-walk every function with the final summaries
///     and emit findings for concrete taint reaching a site, applying
///     suppressions. A suppression placed at a leak point also stops
///     that site from feeding summaries, so one audited allow kills the
///     whole upstream cascade.
///
/// Rules (see docs/STATIC_ANALYSIS.md):
///   secret-branch      if/switch/ternary condition on a secret
///   secret-loop-bound  loop condition / bound / early exit on a secret
///   secret-index       secret subscript into a non-secret container
///   secret-compare     ==/!=/memcmp-family on a secret
///   secret-log         secret reaching a logging/metrics sink
///   secret-wire        secret reaching a serde writer / wire encoder
///   secret-alloc       secret-dependent allocation size
///   secret-arg         secret passed to a parameter whose summary says
///                      it flows to one of the sinks above
///   insecure-rng       non-cryptographic RNG inside the boundary
///   bad-suppression    malformed shpir-lint-allow
///   unused-suppression an allow that no longer matches anything
///
/// Two rules are suppression-only (they never fire as findings):
///   secret-return      declassifies a function's return value (MAC
///                      tags, ciphertexts, DRBG output, client-bound
///                      payloads) so callers are not tainted by it
///   secret-member      blocks taint of a member at a specific write

namespace shpir::lint {

/// One suppression with its re-audit verdict.
struct AuditEntry {
  std::string file;
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

struct EngineResult {
  std::vector<Finding> findings;  // Sorted by file/line/rule, deduped.
  std::vector<AuditEntry> audit;  // Every suppression in the tree.
  std::set<std::string> global_secrets;
};

EngineResult Analyze(const std::vector<FileFacts>& files);

}  // namespace shpir::lint

#endif  // SHPIR_TOOLS_LINT_ENGINE_H_
