#include "lint/facts.h"

#include <algorithm>
#include <sstream>

namespace shpir::lint {

namespace {

bool IsOpenBracket(const std::string& t) {
  return t == "(" || t == "[" || t == "{";
}
bool IsCloseBracket(const std::string& t) {
  return t == ")" || t == "]" || t == "}";
}

bool IsKeyword(const std::string& t) {
  static const std::set<std::string> kSet = {
      "if",     "for",    "while",  "switch",   "return", "sizeof",
      "alignof", "catch",  "new",    "delete",   "case",   "do",
      "else",   "goto",   "operator", "static_assert", "decltype",
      "throw",  "co_return", "co_await", "co_yield", "alignas"};
  return kSet.count(t) != 0;
}

const std::set<std::string>& StreamSinks() {
  static const std::set<std::string> kSet = {"cout", "cerr", "clog", "wcout",
                                             "wcerr"};
  return kSet;
}

const std::set<std::string>& InsecureRngs() {
  static const std::set<std::string> kSet = {
      "rand",          "srand",          "rand_r",
      "drand48",       "lrand48",        "mrand48",
      "erand48",       "srandom",        "random_shuffle",
      "mt19937",       "mt19937_64",     "minstd_rand",
      "minstd_rand0",  "default_random_engine",
      "knuth_b",       "ranlux24",       "ranlux24_base",
      "ranlux48",      "ranlux48_base",  "random_device"};
  return kSet;
}

/// Name declared by a `SHPIR_SECRET <decl>`: the last angle-depth-0
/// identifier before the first top-level `; = ( { [ , )`.
std::string DeclaredName(const std::vector<Token>& tokens, size_t start,
                         size_t limit) {
  std::string last;
  std::string prev_last;
  int angle = 0;
  for (size_t j = start; j < limit && j < start + 64; ++j) {
    const Token& tok = tokens[j];
    if (tok.text == "<") {
      ++angle;
      continue;
    }
    if (tok.text == ">") {
      angle = std::max(0, angle - 1);
      continue;
    }
    if (angle > 0) {
      continue;
    }
    // Thread-safety annotation macros trail the declarator; the name is
    // the identifier before them.
    if (tok.text == "(" && (last == "GUARDED_BY" || last == "ABSL_GUARDED_BY")) {
      last = prev_last;
      if (tok.match > 0 && static_cast<size_t>(tok.match) < limit) {
        j = static_cast<size_t>(tok.match);
        continue;
      }
      return last;
    }
    if (tok.text == ";" || tok.text == "=" || tok.text == "(" ||
        tok.text == "{" || tok.text == "[" || tok.text == "," ||
        tok.text == ")") {
      return last;
    }
    if (tok.kind == Token::Kind::kIdent) {
      prev_last = last;
      last = tok.text;
    }
  }
  return last;
}

/// Name declared by `Secret<T> name`; empty for temporaries.
std::string SecretTypeDeclName(const std::vector<Token>& tokens, size_t i) {
  // tokens[i] == "Secret", tokens[i+1] == "<".
  int angle = 0;
  for (size_t j = i + 1; j < tokens.size() && j < i + 64; ++j) {
    if (tokens[j].text == "<") {
      ++angle;
    } else if (tokens[j].text == ">" || tokens[j].text == ">>") {
      angle -= tokens[j].text == ">" ? 1 : 2;
      if (angle <= 0) {
        if (j + 1 < tokens.size() &&
            tokens[j + 1].kind == Token::Kind::kIdent) {
          return tokens[j + 1].text;
        }
        return "";
      }
    }
  }
  return "";
}

bool LooksLikeMember(const std::string& name) {
  return name.size() > 1 && name.back() == '_';
}

// ---------------------------------------------------------------------------
// Function definition recognition
// ---------------------------------------------------------------------------

/// If tokens[open] == "(" starts the parameter list of a function
/// definition, returns the index of the body '{'; otherwise -1. Handles
/// trailing qualifiers (const/noexcept/override/-> Type) and
/// constructor initializer lists.
int FunctionBodyBrace(const std::vector<Token>& toks, size_t open) {
  if (toks[open].match < 0) {
    return -1;
  }
  size_t j = static_cast<size_t>(toks[open].match) + 1;
  bool init_list = false;
  int guard = 0;
  int angle = 0;
  while (j < toks.size() && ++guard < 256) {
    const std::string& t = toks[j].text;
    if (t == "{") {
      if (!init_list) {
        return static_cast<int>(j);
      }
      const std::string& prev = toks[j - 1].text;
      if (prev == ")" || prev == "}") {
        return static_cast<int>(j);  // Body after the last initializer.
      }
      if (toks[j].match < 0) {
        return -1;
      }
      j = static_cast<size_t>(toks[j].match) + 1;  // Brace initializer.
      continue;
    }
    if (t == "(") {
      if (toks[j].match < 0) {
        return -1;
      }
      j = static_cast<size_t>(toks[j].match) + 1;  // noexcept(...) / init.
      continue;
    }
    if (t == ";" || t == "=" || t == "}") {
      return -1;  // Declaration, `= default/delete`, or end of scope.
    }
    if (t == ":") {
      init_list = true;
      ++j;
      continue;
    }
    if (t == "<") {
      ++angle;
      ++j;
      continue;
    }
    if (t == ">") {
      if (angle == 0) {
        return -1;
      }
      --angle;
      ++j;
      continue;
    }
    if (init_list || toks[j].kind == Token::Kind::kIdent || t == "&" ||
        t == "&&" || t == "*" || t == "->" || t == "::" || t == ",") {
      ++j;
      continue;
    }
    return -1;
  }
  return -1;
}

struct ClassRange {
  size_t begin;
  size_t end;
  std::string name;
};

/// Finds `class X ... { ... }` / `struct X ... { ... }` body ranges so
/// inline-defined methods can be attributed to their class.
std::vector<ClassRange> FindClassRanges(const std::vector<Token>& toks) {
  std::vector<ClassRange> out;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        (toks[i].text != "class" && toks[i].text != "struct")) {
      continue;
    }
    if (i > 0 && toks[i - 1].text == "enum") {
      continue;
    }
    // Name: the next identifier.
    size_t j = i + 1;
    while (j < toks.size() && toks[j].kind != Token::Kind::kIdent &&
           j < i + 6) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) {
      continue;
    }
    const std::string name = toks[j].text;
    // Scan to the body '{', failing on anything that means this was a
    // template parameter, forward declaration, or value context.
    int angle = 0;
    bool found = false;
    for (size_t k = j + 1; k < toks.size() && k < j + 64; ++k) {
      const std::string& t = toks[k].text;
      if (t == "{" && angle == 0) {
        if (toks[k].match > 0) {
          out.push_back({k, static_cast<size_t>(toks[k].match), name});
        }
        found = true;
        break;
      }
      if (t == "<") {
        ++angle;
      } else if (t == ">") {
        if (angle == 0) {
          break;
        }
        --angle;
      } else if (t == ">>") {
        angle -= 2;
        if (angle < 0) {
          break;
        }
      } else if (angle == 0 && (t == ";" || t == ")" || t == "=" ||
                                t == "(" || t == "}")) {
        break;
      }
    }
    (void)found;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Body fact extraction
// ---------------------------------------------------------------------------

class BodyWalker {
 public:
  BodyWalker(const std::vector<Token>& toks, size_t begin, size_t end,
             FunctionFact* fn, bool file_scope = false)
      : toks_(toks),
        begin_(begin),
        end_(end),
        fn_(fn),
        file_scope_(file_scope) {
    CollectLoopRanges();
  }

  void Walk() {
    int paren_depth = 0;
    for (size_t i = begin_; i < end_; ++i) {
      const Token& tok = toks_[i];
      if (tok.text == "(") {
        ++paren_depth;
      } else if (tok.text == ")") {
        paren_depth = std::max(0, paren_depth - 1);
      }
      if (tok.kind == Token::Kind::kIdent) {
        if (tok.text == "Secret" && i + 1 < end_ &&
            toks_[i + 1].text == "<") {
          // At file scope, a Secret/SHPIR_SECRET inside parentheses is a
          // parameter of a function *declaration*; the definition's own
          // parameter list marks it secret, so it is not a scope root.
          if (file_scope_ && paren_depth > 0) {
            continue;
          }
          const std::string name = SecretTypeDeclName(toks_, i);
          if (!name.empty()) {
            fn_->local_roots.push_back(name);
          }
        } else if (tok.text == "SHPIR_SECRET") {
          if (file_scope_ && paren_depth > 0) {
            continue;
          }
          const std::string name = DeclaredName(toks_, i + 1, end_);
          if (!name.empty()) {
            fn_->local_roots.push_back(name);
          }
        } else if (tok.text == "if" || tok.text == "switch") {
          OnBranch(i);
        } else if (tok.text == "while") {
          OnWhile(i);
        } else if (tok.text == "for") {
          OnFor(i);
        } else if (tok.text == "return") {
          OnReturn(i);
        } else if (StreamSinks().count(tok.text) != 0) {
          OnStream(i);
        } else if (InsecureRngs().count(tok.text) != 0) {
          fn_->sites.push_back(
              {"insecure-rng",
               tok.line,
               {},
               "",
               "'" + tok.text +
                   "' is not a cryptographic RNG; use "
                   "crypto::SecureRandom inside the trust boundary"});
        } else if (!IsKeyword(tok.text) && i + 1 < end_ &&
                   toks_[i + 1].text == "(" && toks_[i + 1].match >= 0) {
          OnCall(i);
        }
      } else if (tok.text == "[") {
        OnSubscript(i);
      } else if (tok.text == "?") {
        OnTernary(i);
      } else if (tok.text == "==" || tok.text == "!=") {
        OnEquality(i);
      } else if (tok.kind == Token::Kind::kPunct &&
                 (tok.text == "=" || tok.text == "+=" || tok.text == "-=" ||
                  tok.text == "*=" || tok.text == "/=" || tok.text == "%=" ||
                  tok.text == "&=" || tok.text == "|=" || tok.text == "^=" ||
                  tok.text == "<<=" || tok.text == ">>=")) {
        OnAssign(i);
      }
    }
  }

 private:
  /// Structural accessors: the element count / emptiness of a secret
  /// container is a public scheme parameter (n pages, m cache slots),
  /// not the secret content, so `x.size()` is not a mention of x.
  static bool IsSizeAccessor(const std::string& name) {
    return name == "size" || name == "empty" || name == "capacity" ||
           name == "length";
  }

  std::vector<std::string> NamesIn(size_t from, size_t to) const {
    std::vector<std::string> names;
    for (size_t j = from; j < to && j < end_; ++j) {
      if (toks_[j].kind != Token::Kind::kIdent || IsKeyword(toks_[j].text)) {
        continue;
      }
      if (j + 3 < end_ &&
          (toks_[j + 1].text == "." || toks_[j + 1].text == "->") &&
          IsSizeAccessor(toks_[j + 2].text) && toks_[j + 3].text == "(") {
        continue;  // `x.size()`: skip x; the accessor is skipped below.
      }
      if (IsSizeAccessor(toks_[j].text) && j > begin_ &&
          (toks_[j - 1].text == "." || toks_[j - 1].text == "->") &&
          j + 1 < end_ && toks_[j + 1].text == "(") {
        continue;
      }
      if (std::find(names.begin(), names.end(), toks_[j].text) ==
          names.end()) {
        names.push_back(toks_[j].text);
      }
    }
    return names;
  }

  /// End (exclusive) of an assignment RHS starting at `begin`: the next
  /// top-level `;` or the close of an enclosing bracket.
  size_t RhsEnd(size_t from) const {
    int depth = 0;
    for (size_t j = from; j < end_; ++j) {
      const std::string& t = toks_[j].text;
      if (IsOpenBracket(t)) {
        ++depth;
      } else if (IsCloseBracket(t)) {
        if (--depth < 0) {
          return j;
        }
      } else if (t == ";" && depth == 0) {
        return j;
      }
    }
    return end_;
  }

  void CollectLoopRanges() {
    for (size_t i = begin_; i < end_; ++i) {
      const Token& tok = toks_[i];
      if (tok.kind != Token::Kind::kIdent) {
        continue;
      }
      size_t body = 0;
      if (tok.text == "do") {
        body = i + 1;
      } else if (tok.text == "for" || tok.text == "while") {
        if (i + 1 >= end_ || toks_[i + 1].text != "(" ||
            toks_[i + 1].match < 0) {
          continue;
        }
        body = static_cast<size_t>(toks_[i + 1].match) + 1;
      } else {
        continue;
      }
      if (body >= end_) {
        continue;
      }
      if (toks_[body].text == "{" && toks_[body].match > 0) {
        loops_.emplace_back(body, static_cast<size_t>(toks_[body].match));
      } else if (toks_[body].text != ";") {
        size_t j = body;
        int depth = 0;
        while (j < end_ && (depth > 0 || toks_[j].text != ";")) {
          if (IsOpenBracket(toks_[j].text)) {
            ++depth;
          } else if (IsCloseBracket(toks_[j].text)) {
            --depth;
          }
          ++j;
        }
        loops_.emplace_back(body, j);
      }
    }
  }

  bool InLoop(size_t i) const {
    for (const auto& range : loops_) {
      if (i >= range.first && i < range.second) {
        return true;
      }
    }
    return false;
  }

  void OnBranch(size_t i) {
    size_t open = i + 1;
    if (open < end_ && toks_[open].text == "constexpr") {
      ++open;  // if constexpr: compile-time, not data-dependent.
    }
    if (open >= end_ || toks_[open].text != "(" || toks_[open].match < 0) {
      return;
    }
    const size_t close = static_cast<size_t>(toks_[open].match);
    auto names = NamesIn(open + 1, close);
    if (names.empty()) {
      return;
    }
    // A secret-guarded break/continue/return inside a loop makes the
    // iteration count secret-dependent: a timing channel, reported as
    // secret-loop-bound rather than a plain branch.
    if (toks_[i].text == "if" && InLoop(i)) {
      size_t body = close + 1;
      size_t body_end = body;
      if (body < end_ && toks_[body].text == "{" && toks_[body].match > 0) {
        body_end = static_cast<size_t>(toks_[body].match);
      } else {
        body_end = body;
        int depth = 0;
        while (body_end < end_ &&
               (depth > 0 || toks_[body_end].text != ";")) {
          if (IsOpenBracket(toks_[body_end].text)) {
            ++depth;
          } else if (IsCloseBracket(toks_[body_end].text)) {
            --depth;
          }
          ++body_end;
        }
      }
      for (size_t j = body; j < body_end && j < end_; ++j) {
        if (toks_[j].kind == Token::Kind::kIdent &&
            (toks_[j].text == "break" || toks_[j].text == "continue" ||
             toks_[j].text == "return")) {
          fn_->sites.push_back(
              {"secret-loop-bound", toks_[i].line, std::move(names), "",
               "loop early exit ('" + toks_[j].text +
                   "') guarded by secret data makes the iteration count "
                   "observable"});
          return;
        }
      }
    }
    fn_->sites.push_back({"secret-branch", toks_[i].line, std::move(names),
                          "",
                          "'" + toks_[i].text +
                              "' condition depends on secret data"});
  }

  void OnWhile(size_t i) {
    if (i + 1 >= end_ || toks_[i + 1].text != "(" ||
        toks_[i + 1].match < 0) {
      return;
    }
    auto names =
        NamesIn(i + 2, static_cast<size_t>(toks_[i + 1].match));
    if (names.empty()) {
      return;
    }
    fn_->sites.push_back(
        {"secret-loop-bound", toks_[i].line, std::move(names), "",
         "'while' condition depends on secret data (iteration count is "
         "timing-observable)"});
  }

  void OnFor(size_t i) {
    if (i + 1 >= end_ || toks_[i + 1].text != "(" ||
        toks_[i + 1].match < 0) {
      return;
    }
    const size_t open = i + 1;
    const size_t close = static_cast<size_t>(toks_[open].match);
    int depth = 0;
    size_t first = 0;
    size_t second = 0;
    size_t colon = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const std::string& t = toks_[j].text;
      if (IsOpenBracket(t)) {
        ++depth;
      } else if (IsCloseBracket(t)) {
        --depth;
      } else if (t == ";" && depth == 0) {
        if (first == 0) {
          first = j;
        } else if (second == 0) {
          second = j;
        }
      } else if (t == ":" && depth == 0 && first == 0 && colon == 0) {
        colon = j;
      }
    }
    if (colon != 0 && first == 0) {
      // Range-for: `for (decl : expr)` assigns each element to decl.
      const std::string dst = DeclaredName(toks_, open + 1, colon);
      auto srcs = NamesIn(colon + 1, close);
      if (!dst.empty() && !srcs.empty()) {
        fn_->assigns.push_back(
            {dst, LooksLikeMember(dst), toks_[i].line, std::move(srcs)});
      }
      return;
    }
    if (first == 0 || second == 0) {
      return;
    }
    auto names = NamesIn(first + 1, second);
    if (names.empty()) {
      return;
    }
    fn_->sites.push_back(
        {"secret-loop-bound", toks_[i].line, std::move(names), "",
         "'for' loop bound depends on secret data (iteration count is "
         "timing-observable)"});
  }

  void OnTernary(size_t i) {
    size_t from = begin_;
    for (size_t j = i; j-- > begin_;) {
      const Token& tok = toks_[j];
      if (tok.text == ";" || tok.text == "{" || tok.text == "}" ||
          tok.text == "=" || tok.text == "," || tok.text == "return" ||
          tok.text == ":" || tok.text == "?") {
        from = j + 1;
        break;
      }
      if (IsOpenBracket(tok.text) && tok.match > static_cast<int>(i)) {
        from = j + 1;  // Opening bracket enclosing the ternary.
        break;
      }
      if (IsCloseBracket(tok.text) && tok.match >= 0) {
        j = static_cast<size_t>(tok.match) + 1;  // Skip bracketed group.
        continue;
      }
    }
    auto names = NamesIn(from, i);
    if (names.empty()) {
      return;
    }
    fn_->sites.push_back({"secret-branch", toks_[i].line, std::move(names),
                          "", "ternary condition depends on secret data"});
  }

  void OnEquality(size_t i) {
    auto boundary = [&](const Token& tok, bool left) {
      if (tok.text == "&&" || tok.text == "||" || tok.text == ";" ||
          tok.text == "," || tok.text == "?" || tok.text == ":" ||
          tok.text == "{" || tok.text == "}" || tok.text == "return" ||
          tok.text == "=") {
        return true;
      }
      if (left) {
        return IsOpenBracket(tok.text) && tok.match > static_cast<int>(i);
      }
      return IsCloseBracket(tok.text) && tok.match >= 0 &&
             tok.match < static_cast<int>(i);
    };
    // Null-pointer checks (`x == nullptr`, `p != NULL`) reveal pointer
    // validity, never secret content: not a compare site.
    if ((i > begin_ + 1 &&
         (toks_[i - 1].text == "nullptr" || toks_[i - 1].text == "NULL")) ||
        (i + 1 < end_ &&
         (toks_[i + 1].text == "nullptr" || toks_[i + 1].text == "NULL"))) {
      return;
    }
    // Balanced bracket groups on either side are skipped whole: a call
    // result compared with == is opaque here (a call ON a secret is the
    // sink machinery's business; reporting both would double up on
    // `memcmp(...) == 0`).
    std::vector<std::string> names;
    for (size_t j = i; j-- > begin_;) {
      const Token& tok = toks_[j];
      if (IsCloseBracket(tok.text) && tok.match >= 0 &&
          static_cast<size_t>(tok.match) < j) {
        j = static_cast<size_t>(tok.match);
        continue;
      }
      if (boundary(tok, /*left=*/true)) {
        break;
      }
      // `x.size()`: walking right-to-left we land on the accessor after
      // its () group was skipped; drop it and the base it hangs off, as
      // NamesIn does (structural metadata is a public parameter).
      if (tok.kind == Token::Kind::kIdent && IsSizeAccessor(tok.text) &&
          j + 1 < end_ && toks_[j + 1].text == "(" && j >= begin_ + 2 &&
          (toks_[j - 1].text == "." || toks_[j - 1].text == "->") &&
          toks_[j - 2].kind == Token::Kind::kIdent) {
        j -= 2;
        continue;
      }
      if (tok.kind == Token::Kind::kIdent && !IsKeyword(tok.text)) {
        names.push_back(tok.text);
      }
    }
    for (size_t j = i + 1; j < end_; ++j) {
      const Token& tok = toks_[j];
      if (IsOpenBracket(tok.text) && tok.match >= 0 &&
          static_cast<size_t>(tok.match) > j) {
        j = static_cast<size_t>(tok.match);
        continue;
      }
      if (boundary(tok, /*left=*/false)) {
        break;
      }
      if (tok.kind == Token::Kind::kIdent && j + 3 < end_ &&
          (toks_[j + 1].text == "." || toks_[j + 1].text == "->") &&
          IsSizeAccessor(toks_[j + 2].text) && toks_[j + 3].text == "(") {
        j += 2;  // Skip `x . size`; the () group is skipped above.
        continue;
      }
      if (tok.kind == Token::Kind::kIdent && !IsKeyword(tok.text)) {
        names.push_back(tok.text);
      }
    }
    if (names.empty()) {
      return;
    }
    fn_->sites.push_back(
        {"secret-compare", toks_[i].line, std::move(names), "",
         "early-exit '" + toks_[i].text +
             "' on secret data; use crypto::ConstantTimeEquals"});
  }

  void OnSubscript(size_t i) {
    if (toks_[i].match < 0 || i == begin_ || i == 0) {
      return;
    }
    const Token& prev = toks_[i - 1];
    // Attribute [[...]]: skip both brackets.
    if (prev.text == "[" || (i + 1 < end_ && toks_[i + 1].text == "[")) {
      return;
    }
    const bool is_subscript = prev.kind == Token::Kind::kIdent ||
                              prev.text == ")" || prev.text == "]";
    if (!is_subscript) {
      return;  // Lambda capture list.
    }
    auto names = NamesIn(i + 1, static_cast<size_t>(toks_[i].match));
    if (names.empty()) {
      return;
    }
    // `new T[n]`: a secret-dependent allocation size, not a subscript.
    if (prev.kind == Token::Kind::kIdent) {
      for (size_t j = i - 1; j-- > begin_ && j + 8 > i;) {
        const Token& back = toks_[j];
        if (back.kind == Token::Kind::kIdent) {
          if (back.text == "new") {
            fn_->sites.push_back(
                {"secret-alloc", toks_[i].line, std::move(names), "",
                 "secret-dependent 'new[]' size is observable through the "
                 "allocator"});
            return;
          }
          continue;
        }
        if (back.text != "::" && back.text != "<" && back.text != ">" &&
            back.text != "*") {
          break;
        }
      }
    }
    std::string container =
        prev.kind == Token::Kind::kIdent ? prev.text : "";
    fn_->sites.push_back(
        {"secret-index", toks_[i].line, std::move(names), container,
         "secret-dependent array subscript into non-secret container"});
  }

  void OnStream(size_t i) {
    bool shifted = false;
    std::vector<std::string> names;
    for (size_t j = i + 1; j < end_; ++j) {
      const std::string& t = toks_[j].text;
      if (t == ";") {
        break;
      }
      if (t == "<<") {
        shifted = true;
      }
      if (toks_[j].kind == Token::Kind::kIdent && !IsKeyword(t)) {
        names.push_back(t);
      }
    }
    if (!shifted || names.empty()) {
      return;
    }
    fn_->sites.push_back({"secret-log", toks_[i].line, std::move(names), "",
                          "secret value streamed to '" + toks_[i].text +
                              "'"});
  }

  void OnReturn(size_t i) {
    size_t stop = i + 1;
    int depth = 0;
    while (stop < end_ && (depth > 0 || toks_[stop].text != ";")) {
      if (IsOpenBracket(toks_[stop].text)) {
        ++depth;
      } else if (IsCloseBracket(toks_[stop].text)) {
        if (--depth < 0) {
          break;
        }
      }
      ++stop;
    }
    auto names = NamesIn(i + 1, stop);
    if (!names.empty()) {
      fn_->returns.push_back({toks_[i].line, std::move(names)});
    }
  }

  /// `base` heuristic for an lvalue token range: the first identifier
  /// followed by `[`/`.`/`->`, else the last identifier.
  std::string LvalueBase(size_t from, size_t to) const {
    std::string last;
    for (size_t j = from; j < to && j < end_; ++j) {
      if (toks_[j].kind != Token::Kind::kIdent || IsKeyword(toks_[j].text)) {
        continue;
      }
      if (j + 1 < to && (toks_[j + 1].text == "[" ||
                         toks_[j + 1].text == "." ||
                         toks_[j + 1].text == "->")) {
        return toks_[j].text;
      }
      last = toks_[j].text;
    }
    return last;
  }

  void OnCall(size_t i) {
    const size_t open = i + 1;
    const size_t close = static_cast<size_t>(toks_[open].match);
    CallFact call;
    call.callee = toks_[i].text;
    call.line = toks_[i].line;
    // Split arguments on top-level commas.
    std::vector<std::pair<size_t, size_t>> arg_ranges;
    {
      int depth = 0;
      size_t start = open + 1;
      for (size_t j = open + 1; j < close; ++j) {
        const std::string& t = toks_[j].text;
        if (IsOpenBracket(t)) {
          ++depth;
        } else if (IsCloseBracket(t)) {
          --depth;
        } else if (t == "," && depth == 0) {
          arg_ranges.emplace_back(start, j);
          start = j + 1;
        }
      }
      if (start < close) {
        arg_ranges.emplace_back(start, close);
      }
    }
    for (const auto& range : arg_ranges) {
      call.args.push_back(NamesIn(range.first, range.second));
    }
    // `SHPIR_ASSIGN_OR_RETURN(lhs, expr)` threads expr into lhs.
    if (call.callee == "SHPIR_ASSIGN_OR_RETURN" && arg_ranges.size() >= 2) {
      const std::string dst =
          LvalueBase(arg_ranges[0].first, arg_ranges[0].second);
      std::vector<std::string> srcs;
      for (size_t a = 1; a < call.args.size(); ++a) {
        for (const std::string& name : call.args[a]) {
          srcs.push_back(name);
        }
      }
      if (!dst.empty()) {
        fn_->assigns.push_back(
            {dst, LooksLikeMember(dst), call.line, std::move(srcs)});
        // Rebind the result of the first call inside expr to lhs so a
        // secret-returning callee taints it.
        for (size_t j = arg_ranges[1].first; j + 1 < arg_ranges[1].second;
             ++j) {
          if (toks_[j].kind == Token::Kind::kIdent &&
              !IsKeyword(toks_[j].text) && toks_[j + 1].text == "(" &&
              toks_[j + 1].match >= 0) {
            CallFact inner;
            inner.callee = toks_[j].text;
            inner.line = toks_[j].line;
            inner.dst = dst;
            inner.dst_is_member = LooksLikeMember(dst);
            fn_->calls.push_back(std::move(inner));
            break;
          }
        }
      }
      fn_->calls.push_back(std::move(call));
      return;
    }
    // Assignment / return context: walk back over the `obj.`/`ptr->`/
    // `Cls::` chain to see what receives the result.
    size_t k = i;
    while (k >= begin_ + 2 && (toks_[k - 1].text == "." ||
                               toks_[k - 1].text == "->" ||
                               toks_[k - 1].text == "::") &&
           toks_[k - 2].kind == Token::Kind::kIdent) {
      k -= 2;
    }
    if (k > begin_) {
      const Token& prev = toks_[k - 1];
      if (prev.kind == Token::Kind::kPunct && prev.text == "=" &&
          k >= begin_ + 2) {
        const Token& lhs = toks_[k - 2];
        if (lhs.kind == Token::Kind::kIdent && !IsKeyword(lhs.text)) {
          call.dst = lhs.text;
          call.dst_is_member = LooksLikeMember(lhs.text);
        } else if (lhs.text == "]" && lhs.match >= 1 &&
                   toks_[static_cast<size_t>(lhs.match) - 1].kind ==
                       Token::Kind::kIdent) {
          call.dst = toks_[static_cast<size_t>(lhs.match) - 1].text;
          call.dst_is_member = LooksLikeMember(call.dst);
        }
      } else if (prev.kind == Token::Kind::kIdent && prev.text == "return") {
        call.in_return = true;
      }
    }
    fn_->calls.push_back(std::move(call));
  }

  void OnAssign(size_t i) {
    if (i == begin_ || i == 0) {
      return;
    }
    std::string lhs;
    const Token& prev = toks_[i - 1];
    if (prev.kind == Token::Kind::kIdent && !IsKeyword(prev.text)) {
      lhs = prev.text;
    } else if (prev.text == "]" && prev.match >= 1 &&
               toks_[static_cast<size_t>(prev.match) - 1].kind ==
                   Token::Kind::kIdent) {
      lhs = toks_[static_cast<size_t>(prev.match) - 1].text;
    }
    if (lhs.empty()) {
      return;
    }
    auto srcs = NamesIn(i + 1, RhsEnd(i + 1));
    if (srcs.empty()) {
      return;
    }
    fn_->assigns.push_back(
        {lhs, LooksLikeMember(lhs), toks_[i].line, std::move(srcs)});
  }

  const std::vector<Token>& toks_;
  const size_t begin_;
  const size_t end_;
  FunctionFact* fn_;
  const bool file_scope_;
  std::vector<std::pair<size_t, size_t>> loops_;
};

void ParseParams(const std::vector<Token>& toks, size_t open, size_t close,
                 FunctionFact* fn) {
  std::vector<std::pair<size_t, size_t>> ranges;
  int depth = 0;
  int angle = 0;
  size_t start = open + 1;
  for (size_t j = open + 1; j < close; ++j) {
    const std::string& t = toks[j].text;
    if (IsOpenBracket(t)) {
      ++depth;
    } else if (IsCloseBracket(t)) {
      --depth;
    } else if (t == "<") {
      ++angle;
    } else if (t == ">") {
      angle = std::max(0, angle - 1);
    } else if (t == ">>") {
      angle = std::max(0, angle - 2);
    } else if (t == "," && depth == 0 && angle == 0) {
      ranges.emplace_back(start, j);
      start = j + 1;
    }
  }
  if (start < close) {
    ranges.emplace_back(start, close);
  }
  for (const auto& range : ranges) {
    // Name: last angle-depth-0 identifier before any `=` default.
    std::string name;
    bool secret = false;
    int a = 0;
    for (size_t j = range.first; j < range.second; ++j) {
      const Token& tok = toks[j];
      if (tok.text == "<") {
        ++a;
        continue;
      }
      if (tok.text == ">") {
        a = std::max(0, a - 1);
        continue;
      }
      if (tok.text == ">>") {
        a = std::max(0, a - 2);
        continue;
      }
      if (tok.text == "=" && a == 0) {
        break;
      }
      if (tok.kind == Token::Kind::kIdent) {
        if (tok.text == "SHPIR_SECRET" ||
            (tok.text == "Secret" && j + 1 < range.second &&
             toks[j + 1].text == "<")) {
          secret = true;
        }
        if (a == 0) {
          name = tok.text;
        }
      }
    }
    fn->params.push_back(name);
    if (secret && !name.empty()) {
      fn->secret_params.push_back(static_cast<int>(fn->params.size()) - 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Serialization (cache format)
// ---------------------------------------------------------------------------

void PutString(std::ostringstream& out, const std::string& s) {
  out << s.size() << ':' << s;
}

void PutNames(std::ostringstream& out, const std::vector<std::string>& v) {
  out << v.size() << ';';
  for (const std::string& s : v) {
    PutString(out, s);
  }
}

class FactsReader {
 public:
  explicit FactsReader(const std::string& blob) : blob_(blob) {}

  bool ok() const { return ok_; }

  long Int() {
    long v = 0;
    bool neg = false;
    if (pos_ < blob_.size() && blob_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    size_t digits = 0;
    while (pos_ < blob_.size() && blob_[pos_] >= '0' && blob_[pos_] <= '9') {
      v = v * 10 + (blob_[pos_] - '0');
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      ok_ = false;
    }
    return neg ? -v : v;
  }

  bool Expect(char c) {
    if (pos_ < blob_.size() && blob_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }

  std::string String() {
    const long len = Int();
    if (!Expect(':') || len < 0 ||
        pos_ + static_cast<size_t>(len) > blob_.size()) {
      ok_ = false;
      return "";
    }
    std::string s = blob_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return s;
  }

  std::vector<std::string> Names() {
    std::vector<std::string> v;
    const long n = Int();
    if (!Expect(';') || n < 0 || n > 1'000'000) {
      ok_ = false;
      return v;
    }
    for (long i = 0; i < n && ok_; ++i) {
      v.push_back(String());
    }
    return v;
  }

 private:
  const std::string& blob_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void PutFunction(std::ostringstream& out, const FunctionFact& fn) {
  PutString(out, fn.name);
  PutString(out, fn.cls);
  out << fn.line << ';';
  PutNames(out, fn.params);
  out << fn.secret_params.size() << ';';
  for (int p : fn.secret_params) {
    out << p << ';';
  }
  PutNames(out, fn.local_roots);
  out << fn.assigns.size() << ';';
  for (const AssignFact& a : fn.assigns) {
    PutString(out, a.dst);
    out << (a.dst_is_member ? 1 : 0) << ';' << a.line << ';';
    PutNames(out, a.srcs);
  }
  out << fn.calls.size() << ';';
  for (const CallFact& c : fn.calls) {
    PutString(out, c.callee);
    out << c.line << ';' << c.args.size() << ';';
    for (const auto& arg : c.args) {
      PutNames(out, arg);
    }
    PutString(out, c.dst);
    out << (c.dst_is_member ? 1 : 0) << ';' << (c.in_return ? 1 : 0) << ';';
  }
  out << fn.returns.size() << ';';
  for (const ReturnFact& r : fn.returns) {
    out << r.line << ';';
    PutNames(out, r.names);
  }
  out << fn.sites.size() << ';';
  for (const SiteFact& s : fn.sites) {
    PutString(out, s.rule);
    out << s.line << ';';
    PutNames(out, s.names);
    PutString(out, s.container);
    PutString(out, s.message);
  }
}

bool ReadFunction(FactsReader& in, FunctionFact* fn) {
  fn->name = in.String();
  fn->cls = in.String();
  fn->line = static_cast<int>(in.Int());
  in.Expect(';');
  fn->params = in.Names();
  long n = in.Int();
  in.Expect(';');
  for (long i = 0; i < n && in.ok(); ++i) {
    fn->secret_params.push_back(static_cast<int>(in.Int()));
    in.Expect(';');
  }
  fn->local_roots = in.Names();
  n = in.Int();
  in.Expect(';');
  for (long i = 0; i < n && in.ok(); ++i) {
    AssignFact a;
    a.dst = in.String();
    a.dst_is_member = in.Int() != 0;
    in.Expect(';');
    a.line = static_cast<int>(in.Int());
    in.Expect(';');
    a.srcs = in.Names();
    fn->assigns.push_back(std::move(a));
  }
  n = in.Int();
  in.Expect(';');
  for (long i = 0; i < n && in.ok(); ++i) {
    CallFact c;
    c.callee = in.String();
    c.line = static_cast<int>(in.Int());
    in.Expect(';');
    const long args = in.Int();
    in.Expect(';');
    for (long a = 0; a < args && in.ok(); ++a) {
      c.args.push_back(in.Names());
    }
    c.dst = in.String();
    c.dst_is_member = in.Int() != 0;
    in.Expect(';');
    c.in_return = in.Int() != 0;
    in.Expect(';');
    fn->calls.push_back(std::move(c));
  }
  n = in.Int();
  in.Expect(';');
  for (long i = 0; i < n && in.ok(); ++i) {
    ReturnFact r;
    r.line = static_cast<int>(in.Int());
    in.Expect(';');
    r.names = in.Names();
    fn->returns.push_back(std::move(r));
  }
  n = in.Int();
  in.Expect(';');
  for (long i = 0; i < n && in.ok(); ++i) {
    SiteFact s;
    s.rule = in.String();
    s.line = static_cast<int>(in.Int());
    in.Expect(';');
    s.names = in.Names();
    s.container = in.String();
    s.message = in.String();
    fn->sites.push_back(std::move(s));
  }
  return in.ok();
}

}  // namespace

FileFacts ExtractFacts(const std::string& path, const LexedFile& lexed) {
  FileFacts facts;
  facts.path = path;
  facts.is_header =
      (path.size() >= 2 &&
       path.compare(path.size() - 2, 2, ".h") == 0) ||
      (path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0);
  facts.allows = lexed.allows;
  facts.lex_findings = lexed.lex_findings;

  const std::vector<Token>& toks = lexed.tokens;
  const std::vector<ClassRange> classes = FindClassRanges(toks);

  // Pass 1: function definitions (skipping candidates inside an already
  // recognized body — a nested local definition stays attributed to its
  // enclosing function).
  struct FnRange {
    size_t open;   // '(' of the parameter list.
    size_t body;   // '{'.
    size_t close;  // matching '}'.
  };
  std::vector<std::pair<FnRange, FunctionFact>> fns;
  size_t body_end = 0;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (i < body_end) {
      continue;
    }
    if (toks[i].text != "(" || toks[i].match < 0 ||
        toks[i - 1].kind != Token::Kind::kIdent ||
        IsKeyword(toks[i - 1].text)) {
      continue;
    }
    const int body = FunctionBodyBrace(toks, i);
    if (body < 0 || toks[static_cast<size_t>(body)].match < 0) {
      continue;
    }
    FunctionFact fn;
    fn.name = toks[i - 1].text;
    fn.line = toks[i - 1].line;
    if (i >= 3 && toks[i - 2].text == "::" &&
        toks[i - 3].kind == Token::Kind::kIdent) {
      fn.cls = toks[i - 3].text;
    } else {
      for (const ClassRange& cls : classes) {
        if (i > cls.begin && i < cls.end) {
          fn.cls = cls.name;  // Innermost wins (later ranges are inner).
        }
      }
    }
    ParseParams(toks, i, static_cast<size_t>(toks[i].match), &fn);
    FnRange range{i, static_cast<size_t>(body),
                  static_cast<size_t>(toks[static_cast<size_t>(body)].match)};
    body_end = range.close;
    fns.emplace_back(range, std::move(fn));
  }

  // Pass 2: body facts per function; everything else is file scope.
  std::vector<char> in_function(toks.size(), 0);
  for (auto& [range, fn] : fns) {
    BodyWalker walker(toks, range.body + 1, range.close, &fn);
    walker.Walk();
    for (size_t j = range.open; j <= range.close && j < toks.size(); ++j) {
      in_function[j] = 1;
    }
    facts.functions.push_back(std::move(fn));
  }

  // Pass 3: file-scope declarations (and stray file-scope facts, walked
  // over synthetic gap ranges so bracket spans stay local).
  facts.file_scope.name = "<file-scope>";
  size_t gap_start = 0;
  auto flush_gap = [&](size_t gap_end) {
    if (gap_start < gap_end) {
      BodyWalker walker(toks, gap_start, gap_end, &facts.file_scope,
                        /*file_scope=*/true);
      walker.Walk();
    }
  };
  for (auto& [range, fn] : fns) {
    (void)fn;
    flush_gap(range.open);
    gap_start = range.close + 1;
  }
  flush_gap(toks.size());

  // File-scope Secret/SHPIR_SECRET declarations: global roots when they
  // appear in a header, file-wide roots in a .cc file. (The walker above
  // already collected them into file_scope.local_roots.)
  for (const std::string& name : facts.file_scope.local_roots) {
    if (facts.is_header) {
      facts.header_secrets.push_back(name);
    } else {
      facts.file_roots.push_back(name);
    }
  }
  facts.file_scope.local_roots.clear();
  return facts;
}

std::string SerializeFacts(const FileFacts& facts) {
  std::ostringstream out;
  out << "shpir-lint-facts " << kFactsFormatVersion << '\n';
  out << (facts.is_header ? 1 : 0) << ';';
  PutNames(out, facts.header_secrets);
  PutNames(out, facts.file_roots);
  PutFunction(out, facts.file_scope);
  out << facts.functions.size() << ';';
  for (const FunctionFact& fn : facts.functions) {
    PutFunction(out, fn);
  }
  out << facts.allows.size() << ';';
  for (const auto& [line, allow] : facts.allows) {
    out << line << ';';
    PutNames(out, std::vector<std::string>(allow.rules.begin(),
                                           allow.rules.end()));
    PutString(out, allow.reason);
  }
  out << facts.lex_findings.size() << ';';
  for (const Finding& finding : facts.lex_findings) {
    out << finding.line << ';';
    PutString(out, finding.rule);
    PutString(out, finding.message);
  }
  return out.str();
}

bool DeserializeFacts(const std::string& blob, FileFacts* out) {
  std::ostringstream header;
  header << "shpir-lint-facts " << kFactsFormatVersion << '\n';
  const std::string expected = header.str();
  if (blob.compare(0, expected.size(), expected) != 0) {
    return false;
  }
  const std::string payload = blob.substr(expected.size());
  FactsReader in(payload);
  out->is_header = in.Int() != 0;
  in.Expect(';');
  out->header_secrets = in.Names();
  out->file_roots = in.Names();
  if (!ReadFunction(in, &out->file_scope)) {
    return false;
  }
  long n = in.Int();
  in.Expect(';');
  if (n < 0 || n > 1'000'000) {
    return false;
  }
  for (long i = 0; i < n && in.ok(); ++i) {
    FunctionFact fn;
    if (!ReadFunction(in, &fn)) {
      return false;
    }
    out->functions.push_back(std::move(fn));
  }
  n = in.Int();
  in.Expect(';');
  for (long i = 0; i < n && in.ok(); ++i) {
    const int line = static_cast<int>(in.Int());
    in.Expect(';');
    Suppression allow;
    for (const std::string& rule : in.Names()) {
      allow.rules.insert(rule);
    }
    allow.reason = in.String();
    allow.has_reason = !allow.reason.empty();
    out->allows[line] = std::move(allow);
  }
  n = in.Int();
  in.Expect(';');
  for (long i = 0; i < n && in.ok(); ++i) {
    Finding finding;
    finding.line = static_cast<int>(in.Int());
    in.Expect(';');
    finding.rule = in.String();
    finding.message = in.String();
    out->lex_findings.push_back(std::move(finding));
  }
  return in.ok();
}

}  // namespace shpir::lint
