#ifndef SHPIR_TOOLS_LINT_FACTS_H_
#define SHPIR_TOOLS_LINT_FACTS_H_

#include <map>
#include <string>
#include <vector>

#include "lint/lex.h"

/// Per-file intermediate representation for the interprocedural engine.
///
/// A FileFacts is everything the global analysis needs to know about one
/// translation unit, extracted in a single pass over the token stream:
/// declared secrets, function definitions with their parameter lists,
/// and — per function — dataflow events (assignments, calls, returns)
/// and candidate check sites (branches, loop bounds, subscripts,
/// comparisons, stream inserts, RNG uses, array-new allocations). Facts
/// depend only on the file's own bytes, which is what makes the
/// content-hash cache in cache.h sound: the global fixed point is
/// recomputed on every run, but lexing and parsing are skipped for
/// unchanged files.
///
/// Bump kFactsFormatVersion whenever any struct below (or the extractor)
/// changes; stale cache entries are discarded by version mismatch.

namespace shpir::lint {

inline constexpr int kFactsFormatVersion = 9;

/// A candidate finding: fires iff any of `names` is tainted at the
/// site's scope (for secret-index, unless `container` is itself secret;
/// for insecure-rng, unconditionally).
struct SiteFact {
  std::string rule;
  int line = 0;
  std::vector<std::string> names;
  std::string container;  // secret-index only: the subscripted base.
  std::string message;
};

struct AssignFact {
  std::string dst;
  bool dst_is_member = false;  // Trailing-underscore heuristic.
  int line = 0;
  std::vector<std::string> srcs;
};

struct CallFact {
  std::string callee;
  int line = 0;
  std::vector<std::vector<std::string>> args;  // Identifier names per arg.
  std::string dst;        // Name the result is assigned to ("" if none).
  bool dst_is_member = false;
  bool in_return = false;  // `return Callee(...)`.
};

struct ReturnFact {
  int line = 0;
  std::vector<std::string> names;
};

struct FunctionFact {
  std::string name;  // Bare name ("" never occurs; file scope is below).
  std::string cls;   // Enclosing class / explicit qualifier, or "".
  int line = 0;
  std::vector<std::string> params;       // Positional names ("" if unnamed).
  std::vector<int> secret_params;        // Indices typed Secret<T>/SHPIR_SECRET.
  std::vector<std::string> local_roots;  // Secret<T>/SHPIR_SECRET locals.
  std::vector<AssignFact> assigns;
  std::vector<CallFact> calls;
  std::vector<ReturnFact> returns;
  std::vector<SiteFact> sites;
};

struct FileFacts {
  std::string path;  // Reporting only; rebound when loaded from cache.
  bool is_header = false;
  /// SHPIR_SECRET declarations in a header: global taint roots (members
  /// are declared in headers and used across translation units).
  std::vector<std::string> header_secrets;
  /// File-scope SHPIR_SECRET / Secret<T> declarations in a .cc file:
  /// taint roots for every function in this file only.
  std::vector<std::string> file_roots;
  /// Facts for tokens outside any recognized function body.
  FunctionFact file_scope;
  std::vector<FunctionFact> functions;
  std::map<int, Suppression> allows;
  std::vector<Finding> lex_findings;
};

/// Extracts facts from a lexed file. `path` is used for reporting and
/// for the header/.cc scoping decision.
FileFacts ExtractFacts(const std::string& path, const LexedFile& lexed);

/// Compact text serialization for the facts cache. Deserialize returns
/// false on version mismatch or corruption (caller falls back to a
/// fresh parse).
std::string SerializeFacts(const FileFacts& facts);
bool DeserializeFacts(const std::string& blob, FileFacts* out);

}  // namespace shpir::lint

#endif  // SHPIR_TOOLS_LINT_FACTS_H_
