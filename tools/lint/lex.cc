#include "lint/lex.h"

#include <algorithm>
#include <sstream>

namespace shpir::lint {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

std::string Trim(const std::string& s) {
  size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) {
    return "";
  }
  size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

// Parses an allow comment out of a comment body: the shpir-lint-allow
// tag immediately followed by a parenthesized rule list and ": reason".
void ParseSuppression(const std::string& comment, int line,
                      const std::string& path, LexedFile* out) {
  static const std::string kNextLine = "shpir-lint-allow-next-line";
  static const std::string kSameLine = "shpir-lint-allow";
  size_t pos = comment.find(kNextLine);
  int target = line + 1;
  size_t tag_len = kNextLine.size();
  if (pos == std::string::npos) {
    pos = comment.find(kSameLine);
    target = line;
    tag_len = kSameLine.size();
    if (pos == std::string::npos) {
      return;
    }
  }
  // Prose mentions ("carries a shpir-lint-allow") are not suppressions:
  // only the exact tag immediately followed by `(` counts.
  if (pos + tag_len >= comment.size() || comment[pos + tag_len] != '(') {
    return;
  }
  const size_t open = pos + tag_len;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) {
    out->lex_findings.push_back(
        {path, line, "bad-suppression",
         "malformed shpir-lint-allow: expected (rule[, rule...]): reason"});
    return;
  }
  Suppression suppression;
  std::stringstream rules(comment.substr(open + 1, close - open - 1));
  std::string rule;
  while (std::getline(rules, rule, ',')) {
    rule = Trim(rule);
    if (!rule.empty()) {
      suppression.rules.insert(rule);
    }
  }
  const size_t colon = comment.find(':', close);
  if (colon != std::string::npos) {
    suppression.reason = Trim(comment.substr(colon + 1));
  }
  suppression.has_reason = !suppression.reason.empty();
  if (suppression.rules.empty() || !suppression.has_reason) {
    out->lex_findings.push_back(
        {path, line, "bad-suppression",
         "shpir-lint-allow requires a rule list and a non-empty "
         "justification after ':'"});
    return;
  }
  out->allows[target] = std::move(suppression);
}

const char* const kMultiPunct[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "++",  "--",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "<<",  ">>"};

}  // namespace

LexedFile Lex(const std::string& path, const std::string& source) {
  LexedFile out;
  int line = 1;
  bool at_line_start = true;
  size_t i = 0;
  const size_t n = source.size();
  auto peek = [&](size_t k) { return i + k < n ? source[i + k] : '\0'; };
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the (possibly continued) line.
    if (c == '#' && at_line_start) {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && peek(1) == '/') {
      const size_t end = source.find('\n', i);
      const std::string body =
          source.substr(i + 2, (end == std::string::npos ? n : end) - i - 2);
      ParseSuppression(body, line, path, &out);
      i = end == std::string::npos ? n : end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      size_t end = source.find("*/", i + 2);
      if (end == std::string::npos) {
        end = n;
      }
      const std::string body = source.substr(i + 2, end - i - 2);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      ParseSuppression(body, start_line, path, &out);
      i = end == n ? n : end + 2;
      continue;
    }
    if (c == '"') {
      // Raw string?
      const bool raw = !out.tokens.empty() &&
                       out.tokens.back().kind == Token::Kind::kIdent &&
                       (out.tokens.back().text == "R" ||
                        out.tokens.back().text == "u8R" ||
                        out.tokens.back().text == "uR" ||
                        out.tokens.back().text == "LR");
      if (raw) {
        const size_t open_paren = source.find('(', i);
        const std::string delim =
            open_paren == std::string::npos
                ? ""
                : source.substr(i + 1, open_paren - i - 1);
        const std::string closer = ")" + delim + "\"";
        size_t end = source.find(closer, open_paren);
        end = end == std::string::npos ? n : end + closer.size();
        const std::string body = source.substr(i, end - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.tokens.pop_back();  // The R prefix.
        out.tokens.push_back({Token::Kind::kString, "<raw-string>", line, -1});
        i = end;
        continue;
      }
      size_t j = i + 1;
      while (j < n && source[j] != '"') {
        j += source[j] == '\\' ? 2 : 1;
      }
      out.tokens.push_back({Token::Kind::kString, "<string>", line, -1});
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && source[j] != '\'') {
        j += source[j] == '\\' ? 2 : 1;
      }
      out.tokens.push_back({Token::Kind::kString, "<char>", line, -1});
      i = j + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) {
        ++j;
      }
      out.tokens.push_back(
          {Token::Kind::kIdent, source.substr(i, j - i), line, -1});
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      size_t j = i;
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       (source[j] == '\'' && j + 1 < n &&
                        IsIdentChar(source[j + 1])))) {
        ++j;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, source.substr(i, j - i), line, -1});
      i = j;
      continue;
    }
    // Punctuation: longest match first.
    std::string punct(1, c);
    for (const char* op : kMultiPunct) {
      const size_t len = std::string(op).size();
      if (source.compare(i, len, op) == 0) {
        punct = op;
        break;
      }
    }
    out.tokens.push_back({Token::Kind::kPunct, punct, line, -1});
    i += punct.size();
  }
  // Bracket matching.
  std::vector<size_t> stack;
  for (size_t t = 0; t < out.tokens.size(); ++t) {
    const std::string& text = out.tokens[t].text;
    if (text == "(" || text == "[" || text == "{") {
      stack.push_back(t);
    } else if (text == ")" || text == "]" || text == "}") {
      if (!stack.empty()) {
        out.tokens[stack.back()].match = static_cast<int>(t);
        out.tokens[t].match = static_cast<int>(stack.back());
        stack.pop_back();
      }
    }
  }
  return out;
}

}  // namespace shpir::lint
