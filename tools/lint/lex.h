#ifndef SHPIR_TOOLS_LINT_LEX_H_
#define SHPIR_TOOLS_LINT_LEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

/// Tokenizer for the secret-flow engine. Produces a flat token stream
/// with line numbers and matched bracket indices, plus the suppression
/// table parsed out of comments. The grammar for a suppression is
///   shpir-lint-allow (rule[, rule...]): <justification>
/// written with the rule list immediately after the tag (see
/// docs/STATIC_ANALYSIS.md; this comment spells it with a space so the
/// lexer does not read the documentation as a live suppression), or the
/// -next-line variant targeting the following line.

namespace shpir::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;
  int line = 0;
  int match = -1;  // Matching bracket index for ()[]{}.
};

struct Suppression {
  std::set<std::string> rules;
  bool has_reason = false;
  std::string reason;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::map<int, Suppression> allows;  // target line -> suppression
  std::vector<Finding> lex_findings;  // bad-suppression etc.
};

LexedFile Lex(const std::string& path, const std::string& source);

}  // namespace shpir::lint

#endif  // SHPIR_TOOLS_LINT_LEX_H_
