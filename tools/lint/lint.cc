#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace shpir::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;
  int line = 0;
  int match = -1;  // Matching bracket index for ()[]{}.
};

struct Suppression {
  std::set<std::string> rules;
  bool has_reason = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::map<int, Suppression> allows;  // line -> suppression
  std::vector<Finding> lex_findings;  // bad-suppression etc.
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

std::string Trim(const std::string& s) {
  size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) {
    return "";
  }
  size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

// Parses "shpir-lint-allow(rule, rule): reason" out of a comment body.
void ParseSuppression(const std::string& comment, int line,
                      const std::string& path, LexedFile* out) {
  static const std::string kNextLine = "shpir-lint-allow-next-line";
  static const std::string kSameLine = "shpir-lint-allow";
  size_t pos = comment.find(kNextLine);
  int target = line + 1;
  size_t tag_len = kNextLine.size();
  if (pos == std::string::npos) {
    pos = comment.find(kSameLine);
    target = line;
    tag_len = kSameLine.size();
    if (pos == std::string::npos) {
      return;
    }
  }
  // Prose mentions ("carries a shpir-lint-allow") are not suppressions:
  // only the exact form `shpir-lint-allow(` (or -next-line) counts.
  if (pos + tag_len >= comment.size() || comment[pos + tag_len] != '(') {
    return;
  }
  const size_t open = pos + tag_len;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) {
    out->lex_findings.push_back(
        {path, line, "bad-suppression",
         "malformed shpir-lint-allow: expected (rule[, rule...]): reason"});
    return;
  }
  Suppression suppression;
  std::stringstream rules(comment.substr(open + 1, close - open - 1));
  std::string rule;
  while (std::getline(rules, rule, ',')) {
    rule = Trim(rule);
    if (!rule.empty()) {
      suppression.rules.insert(rule);
    }
  }
  const size_t colon = comment.find(':', close);
  suppression.has_reason =
      colon != std::string::npos && !Trim(comment.substr(colon + 1)).empty();
  if (suppression.rules.empty() || !suppression.has_reason) {
    out->lex_findings.push_back(
        {path, line, "bad-suppression",
         "shpir-lint-allow requires a rule list and a non-empty "
         "justification after ':'"});
    return;
  }
  out->allows[target] = std::move(suppression);
}

const char* const kMultiPunct[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "++",  "--",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "<<",  ">>"};

LexedFile Lex(const std::string& path, const std::string& source) {
  LexedFile out;
  int line = 1;
  bool at_line_start = true;
  size_t i = 0;
  const size_t n = source.size();
  auto peek = [&](size_t k) { return i + k < n ? source[i + k] : '\0'; };
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the (possibly continued) line.
    if (c == '#' && at_line_start) {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && peek(1) == '/') {
      const size_t end = source.find('\n', i);
      const std::string body =
          source.substr(i + 2, (end == std::string::npos ? n : end) - i - 2);
      ParseSuppression(body, line, path, &out);
      i = end == std::string::npos ? n : end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      size_t end = source.find("*/", i + 2);
      if (end == std::string::npos) {
        end = n;
      }
      const std::string body = source.substr(i + 2, end - i - 2);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      ParseSuppression(body, start_line, path, &out);
      i = end == n ? n : end + 2;
      continue;
    }
    if (c == '"') {
      // Raw string?
      const bool raw = !out.tokens.empty() &&
                       out.tokens.back().kind == Token::Kind::kIdent &&
                       (out.tokens.back().text == "R" ||
                        out.tokens.back().text == "u8R" ||
                        out.tokens.back().text == "uR" ||
                        out.tokens.back().text == "LR");
      if (raw) {
        const size_t open_paren = source.find('(', i);
        const std::string delim =
            open_paren == std::string::npos
                ? ""
                : source.substr(i + 1, open_paren - i - 1);
        const std::string closer = ")" + delim + "\"";
        size_t end = source.find(closer, open_paren);
        end = end == std::string::npos ? n : end + closer.size();
        const std::string body = source.substr(i, end - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.tokens.pop_back();  // The R prefix.
        out.tokens.push_back({Token::Kind::kString, "<raw-string>", line});
        i = end;
        continue;
      }
      size_t j = i + 1;
      while (j < n && source[j] != '"') {
        j += source[j] == '\\' ? 2 : 1;
      }
      out.tokens.push_back({Token::Kind::kString, "<string>", line});
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && source[j] != '\'') {
        j += source[j] == '\\' ? 2 : 1;
      }
      out.tokens.push_back({Token::Kind::kString, "<char>", line});
      i = j + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) {
        ++j;
      }
      out.tokens.push_back(
          {Token::Kind::kIdent, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      size_t j = i;
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       (source[j] == '\'' && j + 1 < n &&
                        IsIdentChar(source[j + 1])))) {
        ++j;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: longest match first.
    std::string punct(1, c);
    for (const char* op : kMultiPunct) {
      const size_t len = std::string(op).size();
      if (source.compare(i, len, op) == 0) {
        punct = op;
        break;
      }
    }
    out.tokens.push_back({Token::Kind::kPunct, punct, line});
    i += punct.size();
  }
  // Bracket matching.
  std::vector<size_t> stack;
  for (size_t t = 0; t < out.tokens.size(); ++t) {
    const std::string& text = out.tokens[t].text;
    if (text == "(" || text == "[" || text == "{") {
      stack.push_back(t);
    } else if (text == ")" || text == "]" || text == "}") {
      if (!stack.empty()) {
        out.tokens[stack.back()].match = static_cast<int>(t);
        out.tokens[t].match = static_cast<int>(stack.back());
        stack.pop_back();
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Secret collection
// ---------------------------------------------------------------------------

bool IsOpenBracket(const std::string& t) {
  return t == "(" || t == "[" || t == "{";
}
bool IsCloseBracket(const std::string& t) {
  return t == ")" || t == "]" || t == "}";
}

/// Name declared by a `SHPIR_SECRET <decl>`: the last angle-depth-0
/// identifier before the first top-level `; = ( { [ , )`.
std::string DeclaredName(const std::vector<Token>& tokens, size_t start) {
  std::string last;
  int angle = 0;
  for (size_t j = start; j < tokens.size() && j < start + 64; ++j) {
    const Token& tok = tokens[j];
    if (tok.text == "<") {
      ++angle;
      continue;
    }
    if (tok.text == ">") {
      angle = std::max(0, angle - 1);
      continue;
    }
    if (angle > 0) {
      continue;
    }
    if (tok.text == ";" || tok.text == "=" || tok.text == "(" ||
        tok.text == "{" || tok.text == "[" || tok.text == "," ||
        tok.text == ")") {
      return last;
    }
    if (tok.kind == Token::Kind::kIdent) {
      last = tok.text;
    }
  }
  return last;
}

/// Name declared by `Secret<T> name`; empty for temporaries.
std::string SecretTypeDeclName(const std::vector<Token>& tokens, size_t i) {
  // tokens[i] == "Secret", tokens[i+1] == "<".
  int angle = 0;
  for (size_t j = i + 1; j < tokens.size() && j < i + 64; ++j) {
    if (tokens[j].text == "<") {
      ++angle;
    } else if (tokens[j].text == ">") {
      if (--angle == 0) {
        if (j + 1 < tokens.size() &&
            tokens[j + 1].kind == Token::Kind::kIdent) {
          return tokens[j + 1].text;
        }
        return "";
      }
    } else if (tokens[j].text == ">>") {
      angle -= 2;
      if (angle <= 0) {
        if (j + 1 < tokens.size() &&
            tokens[j + 1].kind == Token::Kind::kIdent) {
          return tokens[j + 1].text;
        }
        return "";
      }
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

const std::set<std::string>& MemcmpFamily() {
  static const std::set<std::string> kSet = {
      "memcmp", "bcmp", "strcmp", "strncmp", "strcasecmp", "strncasecmp"};
  return kSet;
}

const std::set<std::string>& CallSinks() {
  static const std::set<std::string> kSet = {
      "printf", "fprintf",  "sprintf",    "snprintf", "vprintf", "vfprintf",
      "puts",   "fputs",    "fwrite",     "perror",   "syslog",  "Log",
      "LogInfo", "LogWarning", "LogError", "LogDebug", "LOG",    "PLOG",
      "DLOG",   "VLOG",     "Record",     "Increment", "Set",    "Add",
      "Observe", "Emit"};
  return kSet;
}

const std::set<std::string>& StreamSinks() {
  static const std::set<std::string> kSet = {"cout", "cerr", "clog", "wcout",
                                             "wcerr"};
  return kSet;
}

const std::set<std::string>& InsecureRngs() {
  static const std::set<std::string> kSet = {
      "rand",          "srand",          "rand_r",
      "drand48",       "lrand48",        "mrand48",
      "erand48",       "srandom",        "random_shuffle",
      "mt19937",       "mt19937_64",     "minstd_rand",
      "minstd_rand0",  "default_random_engine",
      "knuth_b",       "ranlux24",       "ranlux24_base",
      "ranlux48",      "ranlux48_base",  "random_device"};
  return kSet;
}

class FileChecker {
 public:
  FileChecker(const std::string& path, const LexedFile& lexed,
              const std::set<std::string>& global_secrets,
              std::vector<Finding>* findings)
      : path_(path),
        tokens_(lexed.tokens),
        allows_(lexed.allows),
        secrets_(global_secrets),
        findings_(findings) {}

  void CollectLocalSecrets() {
    // Roots: variables of wrapper type Secret<T>, plus SHPIR_SECRET
    // declarations in this file (for .cc files these are file-local;
    // header declarations were already collected globally).
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i].kind != Token::Kind::kIdent) {
        continue;
      }
      if (tokens_[i].text == "Secret" && tokens_[i + 1].text == "<") {
        const std::string name = SecretTypeDeclName(tokens_, i);
        if (!name.empty()) {
          secrets_.insert(name);
        }
      } else if (tokens_[i].text == "SHPIR_SECRET") {
        const std::string name = DeclaredName(tokens_, i + 1);
        if (!name.empty()) {
          secrets_.insert(name);
        }
      }
    }
    // Taint propagation through assignments, to a fixed point.
    for (int round = 0; round < 20; ++round) {
      bool changed = false;
      for (size_t i = 1; i + 1 < tokens_.size(); ++i) {
        if (tokens_[i].text != "=" ||
            tokens_[i].kind != Token::Kind::kPunct) {
          continue;
        }
        std::string lhs;
        const Token& prev = tokens_[i - 1];
        if (prev.kind == Token::Kind::kIdent) {
          lhs = prev.text;
        } else if (prev.text == "]" && prev.match >= 1 &&
                   tokens_[static_cast<size_t>(prev.match) - 1].kind ==
                       Token::Kind::kIdent) {
          lhs = tokens_[static_cast<size_t>(prev.match) - 1].text;
        }
        if (lhs.empty() || secrets_.count(lhs) != 0) {
          continue;
        }
        if (SpanHasSecret(i + 1, RhsEnd(i + 1))) {
          secrets_.insert(lhs);
          changed = true;
        }
      }
      if (!changed) {
        break;
      }
    }
  }

  void Check() {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      const Token& tok = tokens_[i];
      if (tok.kind == Token::Kind::kIdent) {
        if (tok.text == "if" || tok.text == "while" || tok.text == "switch") {
          CheckBranch(i);
        } else if (tok.text == "for") {
          CheckForLoop(i);
        } else if (MemcmpFamily().count(tok.text) != 0) {
          CheckCall(i, "secret-compare",
                    "byte comparison '" + tok.text +
                        "' on secret data; use crypto::ConstantTimeEquals");
        } else if (CallSinks().count(tok.text) != 0) {
          CheckCall(i, "secret-log",
                    "secret value reaches logging/metrics sink '" + tok.text +
                        "'");
        } else if (StreamSinks().count(tok.text) != 0) {
          CheckStream(i);
        } else if (InsecureRngs().count(tok.text) != 0) {
          Report(tok.line, "insecure-rng",
                 "'" + tok.text +
                     "' is not a cryptographic RNG; use "
                     "crypto::SecureRandom inside the trust boundary");
        }
      } else if (tok.text == "[") {
        CheckSubscript(i);
      } else if (tok.text == "?") {
        CheckTernary(i);
      } else if (tok.text == "==" || tok.text == "!=") {
        CheckEquality(i);
      }
    }
  }

 private:
  bool IsSecret(const Token& tok) const {
    return tok.kind == Token::Kind::kIdent && secrets_.count(tok.text) != 0;
  }

  bool SpanHasSecret(size_t begin, size_t end) const {
    for (size_t j = begin; j < end && j < tokens_.size(); ++j) {
      if (IsSecret(tokens_[j])) {
        return true;
      }
    }
    return false;
  }

  /// End (exclusive) of an assignment RHS starting at `begin`: the next
  /// `;`/`{`/`}` or the close of an enclosing bracket.
  size_t RhsEnd(size_t begin) const {
    int depth = 0;
    for (size_t j = begin; j < tokens_.size(); ++j) {
      const std::string& t = tokens_[j].text;
      if (IsOpenBracket(t)) {
        ++depth;
      } else if (IsCloseBracket(t)) {
        if (--depth < 0) {
          return j;
        }
      } else if ((t == ";") && depth == 0) {
        return j;
      }
    }
    return tokens_.size();
  }

  void Report(int line, const std::string& rule, const std::string& message) {
    auto it = allows_.find(line);
    if (it != allows_.end() && it->second.has_reason &&
        (it->second.rules.count(rule) != 0 ||
         it->second.rules.count("all") != 0)) {
      return;
    }
    findings_->push_back({path_, line, rule, message});
  }

  void CheckBranch(size_t i) {
    size_t open = i + 1;
    if (open < tokens_.size() && tokens_[open].text == "constexpr") {
      ++open;  // if constexpr: compile-time, not data-dependent.
    }
    if (open >= tokens_.size() || tokens_[open].text != "(" ||
        tokens_[open].match < 0) {
      return;
    }
    if (SpanHasSecret(open + 1, static_cast<size_t>(tokens_[open].match))) {
      Report(tokens_[i].line, "secret-branch",
             "'" + tokens_[i].text + "' condition depends on secret data");
    }
  }

  void CheckForLoop(size_t i) {
    const size_t open = i + 1;
    if (open >= tokens_.size() || tokens_[open].text != "(" ||
        tokens_[open].match < 0) {
      return;
    }
    const size_t close = static_cast<size_t>(tokens_[open].match);
    // Find the two top-level semicolons; the condition sits between.
    int depth = 0;
    size_t first = 0;
    size_t second = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const std::string& t = tokens_[j].text;
      if (IsOpenBracket(t)) {
        ++depth;
      } else if (IsCloseBracket(t)) {
        --depth;
      } else if (t == ";" && depth == 0) {
        if (first == 0) {
          first = j;
        } else {
          second = j;
          break;
        }
      }
    }
    if (first == 0 || second == 0) {
      return;  // Range-for.
    }
    if (SpanHasSecret(first + 1, second)) {
      Report(tokens_[i].line, "secret-branch",
             "'for' loop condition depends on secret data");
    }
  }

  void CheckSubscript(size_t i) {
    if (tokens_[i].match < 0 || i == 0) {
      return;
    }
    const Token& prev = tokens_[i - 1];
    // Attribute [[...]]: skip both brackets.
    if (prev.text == "[" ||
        (i + 1 < tokens_.size() && tokens_[i + 1].text == "[")) {
      return;
    }
    const bool is_subscript = prev.kind == Token::Kind::kIdent ||
                              prev.text == ")" || prev.text == "]";
    if (!is_subscript) {
      return;  // Lambda capture list.
    }
    if (!SpanHasSecret(i + 1, static_cast<size_t>(tokens_[i].match))) {
      return;
    }
    // Indexing a secret-annotated container with a secret index stays
    // inside the boundary; indexing anything else publishes the secret
    // as an address.
    if (prev.kind == Token::Kind::kIdent && secrets_.count(prev.text) != 0) {
      return;
    }
    Report(tokens_[i].line, "secret-index",
           "secret-dependent array subscript into non-secret container");
  }

  void CheckTernary(size_t i) {
    size_t begin = 0;
    for (size_t j = i; j-- > 0;) {
      const Token& tok = tokens_[j];
      if (tok.text == ";" || tok.text == "{" || tok.text == "}" ||
          tok.text == "=" || tok.text == "," || tok.text == "return" ||
          tok.text == ":" || tok.text == "?") {
        begin = j + 1;
        break;
      }
      if (IsOpenBracket(tok.text) && tok.match > static_cast<int>(i)) {
        begin = j + 1;  // Opening bracket enclosing the ternary.
        break;
      }
      if (IsCloseBracket(tok.text) && tok.match >= 0) {
        j = static_cast<size_t>(tok.match) + 1;  // Skip bracketed group.
        continue;
      }
    }
    if (SpanHasSecret(begin, i)) {
      Report(tokens_[i].line, "secret-branch",
             "ternary condition depends on secret data");
    }
  }

  void CheckEquality(size_t i) {
    auto boundary = [&](const Token& tok, bool left) {
      if (tok.text == "&&" || tok.text == "||" || tok.text == ";" ||
          tok.text == "," || tok.text == "?" || tok.text == ":" ||
          tok.text == "{" || tok.text == "}" || tok.text == "return" ||
          tok.text == "=") {
        return true;
      }
      if (left) {
        return IsOpenBracket(tok.text) && tok.match > static_cast<int>(i);
      }
      return IsCloseBracket(tok.text) && tok.match >= 0 &&
             tok.match < static_cast<int>(i);
    };
    // Balanced bracket groups on either side are skipped whole: a call
    // result compared with == is opaque here (a call ON a secret is the
    // memcmp/sink checks' business, and reporting both would double up
    // on `memcmp(...) == 0`).
    bool secret = false;
    for (size_t j = i; j-- > 0;) {
      const Token& tok = tokens_[j];
      if (IsCloseBracket(tok.text) && tok.match >= 0 &&
          static_cast<size_t>(tok.match) < j) {
        j = static_cast<size_t>(tok.match);
        continue;
      }
      if (boundary(tok, /*left=*/true)) {
        break;
      }
      if (IsSecret(tok)) {
        secret = true;
        break;
      }
    }
    for (size_t j = i + 1; !secret && j < tokens_.size(); ++j) {
      const Token& tok = tokens_[j];
      if (IsOpenBracket(tok.text) && tok.match >= 0 &&
          static_cast<size_t>(tok.match) > j) {
        j = static_cast<size_t>(tok.match);
        continue;
      }
      if (boundary(tok, /*left=*/false)) {
        break;
      }
      if (IsSecret(tok)) {
        secret = true;
      }
    }
    if (secret) {
      Report(tokens_[i].line, "secret-compare",
             "early-exit '" + tokens_[i].text +
                 "' on secret data; use crypto::ConstantTimeEquals");
    }
  }

  void CheckCall(size_t i, const std::string& rule,
                 const std::string& message) {
    if (i + 1 >= tokens_.size() || tokens_[i + 1].text != "(" ||
        tokens_[i + 1].match < 0) {
      return;
    }
    if (SpanHasSecret(i + 2, static_cast<size_t>(tokens_[i + 1].match))) {
      Report(tokens_[i].line, rule, message);
    }
  }

  void CheckStream(size_t i) {
    bool shifted = false;
    bool secret = false;
    for (size_t j = i + 1; j < tokens_.size(); ++j) {
      const std::string& t = tokens_[j].text;
      if (t == ";") {
        break;
      }
      if (t == "<<") {
        shifted = true;
      }
      if (IsSecret(tokens_[j])) {
        secret = true;
      }
    }
    if (shifted && secret) {
      Report(tokens_[i].line, "secret-log",
             "secret value streamed to '" + tokens_[i].text + "'");
    }
  }

  const std::string path_;
  const std::vector<Token>& tokens_;
  const std::map<int, Suppression>& allows_;
  std::set<std::string> secrets_;  // Global roots + file-local taint.
  std::vector<Finding>* findings_;
};

}  // namespace

void Linter::AddSource(const std::string& path, const std::string& content) {
  files_.push_back({path, content});
}

bool Linter::AddFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  AddSource(path, buffer.str());
  return true;
}

int Linter::AddTree(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      break;
    }
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  int added = 0;
  for (const std::string& path : paths) {
    if (AddFile(path)) {
      ++added;
    }
  }
  return added;
}

std::vector<Finding> Linter::Run() {
  std::vector<Finding> findings;
  std::vector<LexedFile> lexed;
  lexed.reserve(files_.size());
  global_secrets_.clear();
  // Pass 1: lex everything and collect SHPIR_SECRET roots from HEADERS
  // globally (members are declared in headers, used in .cc files).
  // SHPIR_SECRET in a .cc file marks a local and stays file-scoped —
  // common local names would otherwise leak taint across the tree.
  for (const File& file : files_) {
    lexed.push_back(Lex(file.path, file.content));
    const bool is_header =
        file.path.size() >= 2 &&
        (file.path.compare(file.path.size() - 2, 2, ".h") == 0 ||
         (file.path.size() >= 4 &&
          file.path.compare(file.path.size() - 4, 4, ".hpp") == 0));
    const std::vector<Token>& tokens = lexed.back().tokens;
    for (size_t i = 0; is_header && i < tokens.size(); ++i) {
      if (tokens[i].kind == Token::Kind::kIdent &&
          tokens[i].text == "SHPIR_SECRET") {
        const std::string name = DeclaredName(tokens, i + 1);
        if (!name.empty()) {
          global_secrets_.insert(name);
        }
      }
    }
    for (const Finding& finding : lexed.back().lex_findings) {
      findings.push_back(finding);
    }
  }
  // Pass 2: per-file taint + checks.
  for (size_t f = 0; f < files_.size(); ++f) {
    FileChecker checker(files_[f].path, lexed[f], global_secrets_,
                        &findings);
    checker.CollectLocalSecrets();
    checker.Check();
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.rule < b.rule;
            });
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": error: [" << finding.rule
      << "] " << finding.message;
  return out.str();
}

}  // namespace shpir::lint
