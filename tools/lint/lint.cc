#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/cache.h"

namespace shpir::lint {

namespace {

// Findings, SARIF records, and audit keys must not depend on how the
// scan was invoked (absolute vs relative arguments, working directory):
// when the file lives inside a git checkout, display it relative to the
// checkout root. GitHub's SARIF ingestion also requires repo-relative
// paths for annotations.
std::string DisplayPath(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path canon = fs::weakly_canonical(path, ec);
  if (ec) {
    return path;
  }
  for (fs::path dir = canon.parent_path(); !dir.empty();
       dir = dir.parent_path()) {
    if (fs::exists(dir / ".git", ec)) {
      const fs::path rel = fs::relative(canon, dir, ec);
      return ec ? path : rel.generic_string();
    }
    if (dir == dir.parent_path()) {
      break;
    }
  }
  return path;
}

}  // namespace

void Linter::AddSource(const std::string& path, const std::string& content) {
  files_.push_back({path, content});
}

bool Linter::AddFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  AddSource(DisplayPath(path), content.str());
  return true;
}

int Linter::AddTree(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  int added = 0;
  for (const std::string& path : paths) {
    if (AddFile(path)) {
      ++added;
    }
  }
  return added;
}

std::vector<Finding> Linter::Run() {
  FactsCache cache(cache_dir_);
  std::vector<FileFacts> facts;
  facts.reserve(files_.size());
  for (const File& file : files_) {
    FileFacts cached;
    if (cache.Load(file.path, file.content, &cached)) {
      facts.push_back(std::move(cached));
      continue;
    }
    FileFacts fresh = ExtractFacts(file.path, Lex(file.path, file.content));
    cache.Store(file.content, fresh);
    facts.push_back(std::move(fresh));
  }
  cache_hits_ = cache.hits();
  cache_misses_ = cache.misses();
  EngineResult result = Analyze(facts);
  global_secrets_ = std::move(result.global_secrets);
  audit_ = std::move(result.audit);
  return std::move(result.findings);
}

}  // namespace shpir::lint
