#ifndef SHPIR_TOOLS_LINT_LINT_H_
#define SHPIR_TOOLS_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/report.h"

/// shpir_lint: the interprocedural secret-flow lint behind the
/// trust-boundary rules in docs/OBSERVABILITY.md and
/// docs/STATIC_ANALYSIS.md.
///
/// The linter is a purpose-built whole-program analyzer (no compiler
/// dependency, so it runs on every build host and in the fixture
/// tests). Each file is lexed and reduced to per-file facts — declared
/// secrets, function definitions, assignments, calls, returns, and
/// candidate check sites (see lint/facts.h) — then the engine in
/// lint/engine.h iterates per-function taint summaries over the whole
/// tree to a fixed point, so a secret flowing through a call chain,
/// a member write, or a translation-unit boundary still reaches the
/// check site that observes it.
///
/// A finding on a line carrying
///   // shpir-lint-allow (rule[, rule...]): <justification>
/// written with the rule list directly after the tag (or the
/// ...-allow-next-line variant on the preceding line) is suppressed;
/// the justification is mandatory, a suppression without one is itself
/// reported (rule "bad-suppression"), and a suppression matching
/// nothing is reported too (rule "unused-suppression"). The set of
/// suppressions in the tree is the audited list of places the protocol
/// deliberately touches secret state inside the enclave;
/// `shpir_lint --audit` regenerates tools/lint/suppressions.audit
/// from it.

namespace shpir::lint {

class Linter {
 public:
  /// Registers one source file (path is used for reporting only).
  void AddSource(const std::string& path, const std::string& content);

  /// Reads a file from disk and registers it. Returns false (and
  /// reports nothing) if the file cannot be read.
  bool AddFile(const std::string& path);

  /// Recursively adds *.h/*.cc/*.cpp under `dir`. Returns number added.
  int AddTree(const std::string& dir);

  /// Directory for the per-file facts cache; empty (default) disables
  /// caching. Must be set before Run().
  void set_cache_dir(const std::string& dir) { cache_dir_ = dir; }

  /// Runs the whole-program analysis over everything added. Findings
  /// are sorted by file/line/rule.
  std::vector<Finding> Run();

  /// Names collected as global secret roots (debugging / tests).
  /// Populated by Run().
  const std::set<std::string>& global_secrets() const {
    return global_secrets_;
  }

  /// Suppression audit from the last Run().
  const std::vector<AuditEntry>& audit() const { return audit_; }

  /// Facts-cache statistics from the last Run().
  int cache_hits() const { return cache_hits_; }
  int cache_misses() const { return cache_misses_; }

 private:
  struct File {
    std::string path;
    std::string content;
  };
  std::vector<File> files_;
  std::string cache_dir_;
  std::set<std::string> global_secrets_;
  std::vector<AuditEntry> audit_;
  int cache_hits_ = 0;
  int cache_misses_ = 0;
};

}  // namespace shpir::lint

#endif  // SHPIR_TOOLS_LINT_LINT_H_
