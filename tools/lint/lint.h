#ifndef SHPIR_TOOLS_LINT_LINT_H_
#define SHPIR_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

/// shpir_lint: the secret-flow lint behind the trust-boundary rules in
/// docs/OBSERVABILITY.md and docs/STATIC_ANALYSIS.md.
///
/// The linter is a purpose-built token-level analyzer (no compiler
/// dependency, so it runs on every build host and in the fixture
/// tests). It knows two things about the code:
///
///  1. Which identifiers hold secrets: declarations marked SHPIR_SECRET
///     (header declarations are collected across every scanned file,
///     since members are declared in headers and used in .cc files;
///     SHPIR_SECRET on a local in a .cc file stays file-scoped),
///     variables of type Secret<T> (file-local), and — per file, to a
///     fixed point — any identifier assigned from an expression that
///     mentions a secret.
///
///  2. Which patterns are banned when a secret is involved:
///       secret-branch   if/else-if/switch/while/for-condition/ternary
///                       on a secret
///       secret-index    subscripting a non-secret container with an
///                       expression mentioning a secret (indexing a
///                       container that is itself SHPIR_SECRET stays
///                       inside the boundary and is allowed)
///       secret-compare  ==/!=/memcmp/str*cmp touching a secret — use
///                       crypto::ConstantTimeEquals
///       secret-log      a secret reaching a logging/metrics sink
///                       (printf family, LOG/Log*, cout/cerr, or the
///                       obs instrument methods Record/Increment/Set/
///                       Add/Observe)
///       insecure-rng    rand()/std::mt19937/std::random_device &c.
///                       anywhere in the boundary — use
///                       crypto::SecureRandom
///
/// A finding on a line carrying
///   // shpir-lint-allow(rule[, rule...]): <justification>
/// (or ...-allow-next-line on the preceding line) is suppressed; the
/// justification is mandatory and a suppression without one is itself
/// reported (rule "bad-suppression"). The set of suppressions in the
/// tree is the audited list of places the protocol deliberately
/// touches secret state inside the enclave.

namespace shpir::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

class Linter {
 public:
  /// Registers one source file (path is used for reporting only).
  void AddSource(const std::string& path, const std::string& content);

  /// Reads a file from disk and registers it. Returns false (and
  /// reports nothing) if the file cannot be read.
  bool AddFile(const std::string& path);

  /// Recursively adds *.h/*.cc/*.cpp under `dir`. Returns number added.
  int AddTree(const std::string& dir);

  /// Runs the analysis over everything added, in two passes (global
  /// secret roots, then per-file checks). Findings are sorted by
  /// file/line.
  std::vector<Finding> Run();

  /// Names collected as global secret roots (debugging / tests).
  const std::set<std::string>& global_secrets() const {
    return global_secrets_;
  }

 private:
  struct File {
    std::string path;
    std::string content;
  };
  std::vector<File> files_;
  std::set<std::string> global_secrets_;
};

/// Formats one finding as "path:line: error: [rule] message".
std::string FormatFinding(const Finding& finding);

}  // namespace shpir::lint

#endif  // SHPIR_TOOLS_LINT_LINT_H_
