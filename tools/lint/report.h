#ifndef SHPIR_TOOLS_LINT_REPORT_H_
#define SHPIR_TOOLS_LINT_REPORT_H_

#include <string>
#include <vector>

#include "lint/engine.h"

/// Output formatting for the secret-flow engine: the classic
/// compiler-style text line, machine-readable JSON, SARIF 2.1.0 for CI
/// annotation/upload, and the suppression audit file.

namespace shpir::lint {

/// Formats one finding as "path:line: error: [rule] message".
std::string FormatFinding(const Finding& finding);

/// All findings as a JSON document:
///   {"findings": [{"file", "line", "rule", "message"}, ...]}
std::string FindingsJson(const std::vector<Finding>& findings);

/// All findings as a minimal SARIF 2.1.0 log (one run, one rule entry
/// per distinct rule id), accepted by `github/codeql-action/upload-sarif`.
std::string FindingsSarif(const std::vector<Finding>& findings);

/// The machine-readable suppression audit, one record per line:
///   <status>\t<file>:<line>\t<rules>\t<reason>
/// where <status> is "used" or "UNUSED". Sorted by file/line so the
/// committed tools/lint/suppressions.audit diffs cleanly.
std::string AuditReport(const std::vector<AuditEntry>& audit);

}  // namespace shpir::lint

#endif  // SHPIR_TOOLS_LINT_REPORT_H_
