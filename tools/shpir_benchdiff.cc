// Bench-regression gate: compares two bench_report.h JSON artifacts
// (a committed baseline and a fresh run) and fails when a gated metric
// moved against its declared direction by more than its noise
// tolerance, or when a budgeted metric exceeds its absolute bound.
//
//   shpir_benchdiff --baseline FILE --current FILE
//
// Exit codes: 0 = within tolerances, 1 = regression detected,
// 2 = usage / parse / schema mismatch.
//
// The tool reads only the schema_version / benchmark / metrics surface
// of the report (sections are free-form and ignored), and the gating
// policy lives in the producing benchmark: each metric carries its own
// direction ("lower_better" / "higher_better" / "none"), tolerance_pct,
// and optional budget_max. Metrics new in the current run pass with a
// note; gated metrics that disappeared fail — a silently dropped gate
// is itself a regression.
//
// Deliberately dependency-free: the parser below handles exactly the
// JSON subset bench_report.h emits (objects, arrays, strings without
// escapes we don't produce, numbers, booleans, null).

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

  size_t error_pos() const { return pos_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: return false;  // \uXXXX etc.: not produced by us.
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      out->kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return false;
        }
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->object.emplace(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      out->kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    // Number.
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Report model.

struct Metric {
  std::string name;
  double value = 0;
  std::string direction;  // "lower_better" | "higher_better" | "none".
  double tolerance_pct = 0;
  bool has_budget = false;
  double budget_max = 0;
};

struct Report {
  int schema_version = 0;
  std::string benchmark;
  std::vector<Metric> metrics;
};

bool LoadReport(const std::string& path, Report* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonValue root;
  JsonParser parser(text);
  if (!parser.Parse(&root) || root.kind != JsonValue::Kind::kObject) {
    *error = path + ": JSON parse error near byte " +
             std::to_string(parser.error_pos());
    return false;
  }
  const JsonValue* schema = root.Find("schema_version");
  const JsonValue* benchmark = root.Find("benchmark");
  const JsonValue* metrics = root.Find("metrics");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kNumber ||
      benchmark == nullptr ||
      benchmark->kind != JsonValue::Kind::kString || metrics == nullptr ||
      metrics->kind != JsonValue::Kind::kArray) {
    *error = path + ": not a bench_report.h artifact "
             "(schema_version/benchmark/metrics missing)";
    return false;
  }
  out->schema_version = static_cast<int>(schema->number);
  out->benchmark = benchmark->string_value;
  for (const JsonValue& entry : metrics->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      *error = path + ": metrics entries must be objects";
      return false;
    }
    const JsonValue* name = entry.Find("name");
    const JsonValue* value = entry.Find("value");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        value == nullptr || value->kind != JsonValue::Kind::kNumber) {
      *error = path + ": metric missing name/value";
      return false;
    }
    Metric m;
    m.name = name->string_value;
    m.value = value->number;
    if (const JsonValue* d = entry.Find("direction");
        d != nullptr && d->kind == JsonValue::Kind::kString) {
      m.direction = d->string_value;
    } else {
      m.direction = "none";
    }
    if (const JsonValue* t = entry.Find("tolerance_pct");
        t != nullptr && t->kind == JsonValue::Kind::kNumber) {
      m.tolerance_pct = t->number;
    }
    if (const JsonValue* b = entry.Find("budget_max");
        b != nullptr && b->kind == JsonValue::Kind::kNumber) {
      m.has_budget = true;
      m.budget_max = b->number;
    }
    out->metrics.push_back(std::move(m));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Gate logic.

bool IsGated(const Metric& m) {
  return m.direction == "lower_better" || m.direction == "higher_better";
}

int Compare(const Report& baseline, const Report& current) {
  if (baseline.schema_version != current.schema_version) {
    std::fprintf(stderr,
                 "error: schema_version mismatch (baseline %d, current "
                 "%d) — regenerate the baseline\n",
                 baseline.schema_version, current.schema_version);
    return 2;
  }
  if (baseline.benchmark != current.benchmark) {
    std::fprintf(stderr,
                 "error: comparing different benchmarks (baseline "
                 "\"%s\", current \"%s\")\n",
                 baseline.benchmark.c_str(), current.benchmark.c_str());
    return 2;
  }

  std::map<std::string, const Metric*> base_by_name;
  for (const Metric& m : baseline.metrics) {
    base_by_name[m.name] = &m;
  }
  std::map<std::string, const Metric*> current_by_name;
  for (const Metric& m : current.metrics) {
    current_by_name[m.name] = &m;
  }

  int failures = 0;
  std::printf("benchmark: %s (schema v%d)\n", current.benchmark.c_str(),
              current.schema_version);
  std::printf("%-32s %14s %14s %9s  %s\n", "metric", "baseline", "current",
              "delta", "verdict");

  for (const Metric& cur : current.metrics) {
    const Metric* base = nullptr;
    if (auto it = base_by_name.find(cur.name); it != base_by_name.end()) {
      base = it->second;
    }
    const double base_value = base != nullptr ? base->value : 0.0;
    const double delta_pct =
        base != nullptr && base->value != 0.0
            ? 100.0 * (cur.value - base->value) / std::fabs(base->value)
            : 0.0;

    std::string verdict = "ok";
    if (cur.has_budget && cur.value > cur.budget_max) {
      verdict = "FAIL (budget " + std::to_string(cur.budget_max) + ")";
      ++failures;
    } else if (base == nullptr) {
      verdict = IsGated(cur) || cur.has_budget ? "new (no baseline)"
                                               : "info";
    } else if (cur.direction == "lower_better") {
      if (base->value == 0.0 ? cur.value > 0.0
                             : delta_pct > cur.tolerance_pct) {
        verdict = "FAIL (regressed)";
        ++failures;
      }
    } else if (cur.direction == "higher_better") {
      if (base->value == 0.0 ? cur.value < 0.0
                             : delta_pct < -cur.tolerance_pct) {
        verdict = "FAIL (regressed)";
        ++failures;
      }
    } else if (!cur.has_budget) {
      verdict = "info";
    }
    std::printf("%-32s %14.4f %14.4f %8.2f%%  %s\n", cur.name.c_str(),
                base_value, cur.value, delta_pct, verdict.c_str());
  }

  // A gated metric that vanished is a silently dropped gate.
  for (const Metric& base : baseline.metrics) {
    if ((IsGated(base) || base.has_budget) &&
        current_by_name.find(base.name) == current_by_name.end()) {
      std::printf("%-32s %14.4f %14s %9s  FAIL (metric dropped)\n",
                  base.name.c_str(), base.value, "-", "-");
      ++failures;
    }
  }

  if (failures > 0) {
    std::printf("\n%d metric(s) regressed\n", failures);
    return 1;
  }
  std::printf("\nall metrics within tolerance\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--current") == 0) {
      current_path = argv[i + 1];
    } else {
      baseline_path.clear();
      break;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --baseline FILE --current FILE\n"
                 "exit 0 = pass, 1 = regression, 2 = usage/parse error\n",
                 argv[0]);
    return 2;
  }
  Report baseline;
  Report current;
  std::string error;
  if (!LoadReport(baseline_path, &baseline, &error) ||
      !LoadReport(current_path, &current, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  return Compare(baseline, current);
}
