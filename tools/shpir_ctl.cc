// Privacy/cost controller CLI: inspects and steers the adaptive
// controller (src/control/) a running shpir endpoint hosts (see
// docs/CONTROL.md).
//
// Two-party model — speaks the plaintext CONTROL_STATUS wire op against
// a shpir_provider storage server:
//
//   shpir_ctl <status|watch|freeze|unfreeze|set-bounds KMIN KMAX>
//             [--host H] [--port P]
//
// Three-party model — performs the hub handshake and issues the verbs
// through the sealed session, so only holders of the pre-shared key can
// steer the controller:
//
//   shpir_ctl hub <status|watch|freeze|unfreeze|set-bounds KMIN KMAX>
//                 [--host H] [--port P] [--psk STR] [--client-id N]
//
// Every verb prints the controller's post-action status JSON (bounds,
// per-shard k / c / ladder, the auditable decision trail). `watch`
// re-polls status every --interval-ms (default 1000); --iterations N
// bounds the polls (0 = forever). `set-bounds` takes KMAX 0 as
// unbounded.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "net/tcp_transport.h"
#include "net/wire.h"

namespace {

using namespace shpir;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr,
                                              10);
  }
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// One connected endpoint, either model; `Call` issues one control verb
/// and returns the post-action status JSON.
class Endpoint {
 public:
  static Result<std::unique_ptr<Endpoint>> Connect(const Flags& flags,
                                                   bool hub) {
    SHPIR_ASSIGN_OR_RETURN(
        std::unique_ptr<net::TcpTransport> transport,
        net::TcpTransport::Connect(
            flags.Get("host", "127.0.0.1"),
            static_cast<uint16_t>(flags.GetU64("port", 9000))));
    auto endpoint = std::unique_ptr<Endpoint>(new Endpoint());
    endpoint->transport_ = std::move(transport);
    if (!hub) {
      return endpoint;
    }
    const std::string psk_text = flags.Get("psk", "shpir");
    const Bytes psk(psk_text.begin(), psk_text.end());
    crypto::SecureRandom rng;  // OS entropy.
    const uint64_t client_id = flags.values.count("client-id")
                                   ? flags.GetU64("client-id", 0)
                                   : rng.NextUint64();
    Bytes nonce(net::SecureSession::kNonceSize);
    rng.Fill(nonce);
    SHPIR_ASSIGN_OR_RETURN(
        Bytes hello_reply,
        endpoint->transport_->RoundTrip(
            net::ServiceHub::MakeHello(client_id, nonce)));
    SHPIR_ASSIGN_OR_RETURN(net::SecureSession session,
                           net::ServiceHub::CompleteHandshake(
                               hello_reply, psk, client_id, nonce));
    net::TcpTransport* wire = endpoint->transport_.get();
    endpoint->client_ = std::make_unique<net::PirServiceClient>(
        std::move(session), [wire, client_id](ByteSpan record) {
          return wire->RoundTrip(
              net::ServiceHub::MakeData(client_id, record));
        });
    return endpoint;
  }

  Result<Bytes> Call(const net::ControlRequest& control) {
    if (client_ != nullptr) {
      switch (control.verb) {
        case net::ControlVerb::kStatus:
          return client_->ControlStatus();
        case net::ControlVerb::kFreeze:
          return client_->ControlFreeze();
        case net::ControlVerb::kUnfreeze:
          return client_->ControlUnfreeze();
        case net::ControlVerb::kSetBounds:
          return client_->ControlSetBounds(control.k_min, control.k_max);
      }
      return InvalidArgumentError("unknown control verb");
    }
    net::Request request;
    request.op = net::Op::kControlStatus;
    request.payload = net::EncodeControlRequest(control);
    SHPIR_ASSIGN_OR_RETURN(
        Bytes reply, transport_->RoundTrip(net::EncodeRequest(request)));
    return net::DecodeResponse(reply);
  }

 private:
  Endpoint() = default;

  std::unique_ptr<net::TcpTransport> transport_;
  std::unique_ptr<net::PirServiceClient> client_;  // Hub mode only.
};

int Emit(const Bytes& json) {
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
  return 0;
}

int Watch(const Flags& flags, Endpoint* endpoint) {
  const uint64_t interval_ms = flags.GetU64("interval-ms", 1000);
  const uint64_t iterations = flags.GetU64("iterations", 0);
  net::ControlRequest status;  // Read-only verb.
  bool first = true;
  for (uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (!first) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    first = false;
    Result<Bytes> json = endpoint->Call(status);
    if (!json.ok()) {
      return Fail(json.status());
    }
    Emit(*json);
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [hub] status [--host H] [--port P]\n"
      "       %s [hub] watch [--interval-ms T] [--iterations N]\n"
      "           [--host H] [--port P]\n"
      "       %s [hub] freeze|unfreeze [--host H] [--port P]\n"
      "       %s [hub] set-bounds KMIN KMAX [--host H] [--port P]\n"
      "hub mode also accepts [--psk STR] [--client-id N]\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int index = 1;
  bool hub = false;
  if (index < argc && std::strcmp(argv[index], "hub") == 0) {
    hub = true;
    ++index;
  }
  if (index >= argc) {
    return Usage(argv[0]);
  }
  const std::string command = argv[index++];
  net::ControlRequest control;
  if (command == "status" || command == "watch") {
    control.verb = net::ControlVerb::kStatus;
  } else if (command == "freeze") {
    control.verb = net::ControlVerb::kFreeze;
  } else if (command == "unfreeze") {
    control.verb = net::ControlVerb::kUnfreeze;
  } else if (command == "set-bounds") {
    control.verb = net::ControlVerb::kSetBounds;
    if (index + 1 >= argc || std::strncmp(argv[index], "--", 2) == 0) {
      return Usage(argv[0]);
    }
    control.k_min = std::strtoull(argv[index++], nullptr, 10);
    control.k_max = std::strtoull(argv[index++], nullptr, 10);
  } else {
    return Usage(argv[0]);
  }
  Flags flags;
  for (int i = index; i < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) {
      return Usage(argv[0]);
    }
    flags.values[argv[i] + 2] = argv[i + 1];
  }
  Result<std::unique_ptr<Endpoint>> endpoint =
      Endpoint::Connect(flags, hub);
  if (!endpoint.ok()) {
    return Fail(endpoint.status());
  }
  if (command == "watch") {
    return Watch(flags, endpoint->get());
  }
  Result<Bytes> json = (*endpoint)->Call(control);
  if (!json.ok()) {
    return Fail(json.status());
  }
  return Emit(*json);
}
