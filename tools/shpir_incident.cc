// Flight-recorder CLI: lists, fetches and tails the incident bundles a
// running shpir endpoint has sealed (see obs/flight_recorder.h and
// docs/OBSERVABILITY.md).
//
// Two-party model — polls a shpir_provider's storage server over the
// plaintext INCIDENT_DUMP wire op:
//
//   shpir_incident <list|show ID|watch> [--host H] [--port P]
//
// Three-party model — performs the hub handshake and fetches bundles
// through the sealed session, so only holders of the pre-shared key can
// read them:
//
//   shpir_incident hub <list|show ID|watch> [--host H] [--port P]
//                      [--psk STR] [--client-id N]
//
// `list` prints the summary JSON; `show ID` prints one full bundle;
// `watch` polls the summary every --interval-ms (default 1000) and
// prints it whenever the sealed count grows (--iterations N bounds the
// number of polls; 0 = forever). Default output is stdout; --out writes
// to FILE instead.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "net/tcp_transport.h"
#include "net/wire.h"

namespace {

using namespace shpir;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr,
                                              10);
  }
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Emit(const Flags& flags, const Bytes& json) {
  const std::string out_path = flags.Get("out");
  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(json.data()),
            static_cast<std::streamsize>(json.size()));
  if (!out) {
    // shpir-lint-allow-next-line(secret-log): operator CLI status line naming the operator-chosen output path; the provider-observable channel is only the PIR stream underneath
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  // shpir-lint-allow-next-line(secret-log): operator CLI status line naming the operator-chosen output path; the provider-observable channel is only the PIR stream underneath
  std::fprintf(stderr, "wrote %zu bytes to %s\n", json.size(),
               out_path.c_str());
  return 0;
}

/// One connected endpoint, either model; `Fetch` speaks the
/// INCIDENT_DUMP convention (mode byte 0 = list, 1 = show; the id rides
/// the location/id field).
class Endpoint {
 public:
  static Result<std::unique_ptr<Endpoint>> Connect(const Flags& flags,
                                                   bool hub) {
    SHPIR_ASSIGN_OR_RETURN(
        std::unique_ptr<net::TcpTransport> transport,
        net::TcpTransport::Connect(
            flags.Get("host", "127.0.0.1"),
            static_cast<uint16_t>(flags.GetU64("port", 9000))));
    auto endpoint = std::unique_ptr<Endpoint>(new Endpoint());
    endpoint->transport_ = std::move(transport);
    if (!hub) {
      return endpoint;
    }
    const std::string psk_text = flags.Get("psk", "shpir");
    const Bytes psk(psk_text.begin(), psk_text.end());
    crypto::SecureRandom rng;  // OS entropy.
    const uint64_t client_id = flags.values.count("client-id")
                                   ? flags.GetU64("client-id", 0)
                                   : rng.NextUint64();
    Bytes nonce(net::SecureSession::kNonceSize);
    rng.Fill(nonce);
    SHPIR_ASSIGN_OR_RETURN(
        Bytes hello_reply,
        endpoint->transport_->RoundTrip(
            net::ServiceHub::MakeHello(client_id, nonce)));
    SHPIR_ASSIGN_OR_RETURN(net::SecureSession session,
                           net::ServiceHub::CompleteHandshake(
                               hello_reply, psk, client_id, nonce));
    net::TcpTransport* wire = endpoint->transport_.get();
    endpoint->client_ = std::make_unique<net::PirServiceClient>(
        std::move(session), [wire, client_id](ByteSpan record) {
          return wire->RoundTrip(
              net::ServiceHub::MakeData(client_id, record));
        });
    return endpoint;
  }

  Result<Bytes> Fetch(bool show, uint64_t id) {
    if (client_ != nullptr) {
      return show ? client_->IncidentShow(id) : client_->IncidentList();
    }
    net::Request request;
    request.op = net::Op::kIncidentDump;
    request.location = id;
    request.payload = {static_cast<uint8_t>(show ? 1 : 0)};
    SHPIR_ASSIGN_OR_RETURN(
        Bytes reply, transport_->RoundTrip(net::EncodeRequest(request)));
    return net::DecodeResponse(reply);
  }

 private:
  Endpoint() = default;

  std::unique_ptr<net::TcpTransport> transport_;
  std::unique_ptr<net::PirServiceClient> client_;  // Hub mode only.
};

/// Reads the `"sealed":N` field out of the list JSON (closed schema,
/// first key — see FlightRecorder::ListJson).
uint64_t ParseSealedCount(const Bytes& json) {
  const std::string text(json.begin(), json.end());
  const size_t key = text.find("\"sealed\":");
  if (key == std::string::npos) {
    return 0;
  }
  return std::strtoull(text.c_str() + key + 9, nullptr, 10);
}

int Watch(const Flags& flags, Endpoint* endpoint) {
  const uint64_t interval_ms = flags.GetU64("interval-ms", 1000);
  const uint64_t iterations = flags.GetU64("iterations", 0);
  uint64_t last_sealed = 0;
  bool first = true;
  for (uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (!first) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    first = false;
    Result<Bytes> list = endpoint->Fetch(/*show=*/false, 0);
    if (!list.ok()) {
      return Fail(list.status());
    }
    const uint64_t sealed = ParseSealedCount(*list);
    if (sealed > last_sealed) {
      last_sealed = sealed;
      const int code = Emit(flags, *list);
      if (code != 0) {
        return code;
      }
    }
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [hub] list [--host H] [--port P] [--out FILE]\n"
      "       %s [hub] show ID [--host H] [--port P] [--out FILE]\n"
      "       %s [hub] watch [--interval-ms T] [--iterations N]\n"
      "           [--host H] [--port P] [--out FILE]\n"
      "hub mode also accepts [--psk STR] [--client-id N]\n",
      argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int index = 1;
  bool hub = false;
  if (index < argc && std::strcmp(argv[index], "hub") == 0) {
    hub = true;
    ++index;
  }
  if (index >= argc) {
    return Usage(argv[0]);
  }
  const std::string command = argv[index++];
  uint64_t show_id = 0;
  if (command == "show") {
    if (index >= argc || std::strncmp(argv[index], "--", 2) == 0) {
      return Usage(argv[0]);
    }
    show_id = std::strtoull(argv[index++], nullptr, 10);
  } else if (command != "list" && command != "watch") {
    return Usage(argv[0]);
  }
  Flags flags;
  for (int i = index; i < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) {
      return Usage(argv[0]);
    }
    flags.values[argv[i] + 2] = argv[i + 1];
  }
  Result<std::unique_ptr<Endpoint>> endpoint =
      Endpoint::Connect(flags, hub);
  if (!endpoint.ok()) {
    return Fail(endpoint.status());
  }
  if (command == "watch") {
    return Watch(flags, endpoint->get());
  }
  Result<Bytes> json =
      (*endpoint)->Fetch(/*show=*/command == "show", show_id);
  if (!json.ok()) {
    return Fail(json.status());
  }
  return Emit(flags, *json);
}
