// Keyword PIR key-value store CLI: builds keyword stores offline, runs
// private lookups against them over an in-process c-approximate engine,
// and micro-benchmarks builds at scale.
//
//   shpir_kv build --in FILE --store DIR [--kind cuckoo|fuse]
//                  [--page-size B] [--value-size V] [--seed S]
//                  [--build-version V]
//
// FILE holds one tab-separated "key<TAB>value" pair per line. Writes
// DIR/manifest.bin (the public map artifact) and DIR/pages.bin (the
// store pages, concatenated in page-id order).
//
//   shpir_kv get --store DIR --key K [--cache M] [--c C]
//
// Loads the store into an in-process c-approximate engine and performs
// one private lookup; prints the value or reports a miss. Exit status 0
// on a hit, 3 on a clean miss.
//
//   shpir_kv bench --keys N [--queries Q] [--kind cuckoo|fuse]
//                  [--hit-ratio R] [--page-size B] [--seed S]
//
// Builds an N-key store over the canonical key space (workload::
// KeyForIndex) and times the build and map-level resolve+extract
// throughput with a Zipfian hit/miss key mix; verifies every answer
// against ground truth.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/capprox_pir.h"
#include "hardware/coprocessor.h"
#include "keyword/keyword_client.h"
#include "keyword/keyword_cuckoo.h"
#include "keyword/keyword_fuse.h"
#include "storage/disk.h"
#include "storage/page_cipher.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::strtoull(
                                               it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtod(it->second.c_str(), nullptr);
  }
};

Flags ParseFlags(int argc, char** argv, int start) {
  Flags flags;
  for (int i = start; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flags.values[argv[i] + 2] = argv[i + 1];
    }
  }
  return flags;
}

size_t SealedSlotSize(size_t page_size) {
  return storage::PageCipher::kNonceSize + 8 + page_size +
         storage::PageCipher::kTagSize;
}

int Usage() {
  std::fprintf(stderr,
               "usage: shpir_kv build --in FILE --store DIR [options]\n"
               "       shpir_kv get --store DIR --key K [options]\n"
               "       shpir_kv bench --keys N [options]\n");
  return 2;
}

Result<std::vector<keyword::KeyValue>> ReadTsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open input file " + path);
  }
  std::vector<keyword::KeyValue> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return InvalidArgumentError("input line without a tab separator: " +
                                  line.substr(0, 40));
    }
    keyword::KeyValue entry;
    entry.key.assign(line.begin(),
                     line.begin() + static_cast<ptrdiff_t>(tab));
    entry.value.assign(line.begin() + static_cast<ptrdiff_t>(tab) + 1,
                      line.end());
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status WriteFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("cannot write " + path);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? OkStatus() : InternalError("short write to " + path);
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

Result<keyword::BuiltKeywordStore> BuildStore(
    const std::vector<keyword::KeyValue>& entries, const Flags& flags) {
  const std::string kind = flags.Get("kind", "cuckoo");
  if (kind == "cuckoo") {
    keyword::CuckooOptions options;
    options.page_size = flags.GetU64("page-size", 256);
    options.seed = flags.GetU64("seed", 1);
    options.build_version = flags.GetU64("build-version", 1);
    return keyword::BuildCuckooStore(entries, options);
  }
  if (kind == "fuse") {
    keyword::FuseOptions options;
    size_t max_value = 8;
    for (const keyword::KeyValue& entry : entries) {
      max_value = std::max(max_value, entry.value.size());
    }
    options.value_size = flags.GetU64("value-size", max_value);
    options.page_size = flags.GetU64(
        "page-size", keyword::kEntryOverhead + options.value_size);
    options.seed = flags.GetU64("seed", 1);
    options.build_version = flags.GetU64("build-version", 1);
    return keyword::BuildFuseStore(entries, options);
  }
  return InvalidArgumentError("unknown --kind " + kind +
                              " (expected cuckoo or fuse)");
}

int RunBuild(const Flags& flags) {
  const std::string in = flags.Get("in");
  const std::string store = flags.Get("store");
  if (in.empty() || store.empty()) {
    return Usage();
  }
  Result<std::vector<keyword::KeyValue>> entries = ReadTsv(in);
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!entries.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", entries.status().ToString().c_str());
    return 1;
  }
  const auto start = std::chrono::steady_clock::now();
  // shpir-lint-allow-next-line(secret-arg): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  Result<keyword::BuiltKeywordStore> built = BuildStore(*entries, flags);
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!built.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  Bytes pages;
  // shpir-lint-allow-next-line(secret-alloc): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  pages.reserve(built->pages.size() * built->map->page_size());
  for (const storage::Page& page : built->pages) {
    pages.insert(pages.end(), page.data.begin(), page.data.end());
  }
  Status status = WriteFile(store + "/manifest.bin", built->manifest);
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (status.ok()) {
    status = WriteFile(store + "/pages.bin", pages);
  }
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!status.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  std::printf(
      "built %s store: %llu keys, %llu pages of %zu bytes, "
      "%zu-byte manifest, %.3f s\n",
      built->map->name(),
      static_cast<unsigned long long>(built->map->num_keys()),
      static_cast<unsigned long long>(built->map->num_pages()),
      built->map->page_size(), built->manifest.size(), build_s);
  return 0;
}

int RunGet(const Flags& flags) {
  const std::string store = flags.Get("store");
  const std::string key = flags.Get("key");
  if (store.empty() || key.empty()) {
    return Usage();
  }
  Result<Bytes> manifest = ReadFileBytes(store + "/manifest.bin");
  Result<Bytes> page_bytes = ReadFileBytes(store + "/pages.bin");
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!manifest.ok() || !page_bytes.ok()) {
    const Status& bad =
        // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
        manifest.ok() ? page_bytes.status() : manifest.status();
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", bad.ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<keyword::KeywordMap>> map =
      // shpir-lint-allow-next-line(secret-arg): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
      keyword::KeywordMap::Deserialize(*manifest);
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!map.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", map.status().ToString().c_str());
    return 1;
  }
  const size_t page_size = (*map)->page_size();
  const uint64_t num_pages = (*map)->num_pages();
  // shpir-lint-allow-next-line(secret-branch, secret-compare): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (page_bytes->size() != num_pages * page_size) {
    std::fprintf(stderr, "error: pages.bin size mismatch\n");
    return 1;
  }

  // Spin up the private engine over the store pages.
  core::CApproxPir::Options options;
  options.num_pages = num_pages;
  options.page_size = page_size;
  options.cache_pages =
      flags.GetU64("cache", std::max<uint64_t>(8, num_pages / 16));
  options.privacy_c = flags.GetDouble("c", 2.0);
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  if (!slots.ok()) {
    std::fprintf(stderr, "error: %s\n", slots.status().ToString().c_str());
    return 1;
  }
  storage::MemoryDisk disk(*slots, SealedSlotSize(page_size));
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      // shpir-lint-allow-next-line(secret-arg): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
      hardware::SecureCoprocessor::Create(
          hardware::HardwareProfile::Ibm4764(), &disk, page_size,
          flags.GetU64("seed", 42));
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!cpu.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", cpu.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<core::CApproxPir>> engine =
      // shpir-lint-allow-next-line(secret-arg): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
      core::CApproxPir::Create(cpu->get(), options);
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!engine.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::vector<storage::Page> pages;
  // shpir-lint-allow-next-line(secret-alloc): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  pages.reserve(num_pages);
  // shpir-lint-allow-next-line(secret-loop-bound): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  for (uint64_t id = 0; id < num_pages; ++id) {
    pages.emplace_back(
        id, Bytes(page_bytes->begin() + static_cast<ptrdiff_t>(id * page_size),
                  page_bytes->begin() +
                      static_cast<ptrdiff_t>((id + 1) * page_size)));
  }
  Status init = (*engine)->Initialize(pages);
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!init.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", init.ToString().c_str());
    return 1;
  }

  Result<std::unique_ptr<keyword::KeywordClient>> client =
      // shpir-lint-allow-next-line(secret-arg): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
      keyword::KeywordClient::Create(
          // shpir-lint-allow-next-line(secret-arg): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
          *manifest, keyword::KeywordClient::EngineFetch(engine->get()));
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!client.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }
  Result<std::optional<Bytes>> value =
      (*client)->Get(common::Secret<Bytes>(Bytes(key.begin(), key.end())));
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!value.ok()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    return 1;
  }
  // shpir-lint-allow-next-line(secret-branch): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  if (!value->has_value()) {
    std::printf("(not found)\n");
    return 3;
  }
  // shpir-lint-allow-next-line(secret-log): operator CLI: handles and prints the operator's own keys, values, and progress on their machine; the provider sees only the PIR stream underneath
  std::fwrite((*value)->data(), 1, (*value)->size(), stdout);
  std::printf("\n");
  return 0;
}

int RunBench(const Flags& flags) {
  const uint64_t num_keys = flags.GetU64("keys", 0);
  if (num_keys == 0) {
    return Usage();
  }
  const uint64_t queries = flags.GetU64("queries", 10000);
  const double hit_ratio = flags.GetDouble("hit-ratio", 0.8);
  std::vector<keyword::KeyValue> entries(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    entries[i].key = workload::KeyForIndex(i);
    const std::string value = "value-" + std::to_string(i);
    entries[i].value.assign(value.begin(), value.end());
  }
  const auto build_start = std::chrono::steady_clock::now();
  Result<keyword::BuiltKeywordStore> built = BuildStore(entries, flags);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const double build_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - build_start)
                             .count();
  // Map-level lookups (resolve + page scan, no PIR engine): measures the
  // front-end data structure alone. Verified against ground truth.
  std::vector<Bytes> page_store;
  page_store.reserve(built->pages.size());
  for (const storage::Page& page : built->pages) {
    page_store.push_back(page.data);
  }
  workload::ZipfKeyWorkload keys(num_keys, 0.99, hit_ratio,
                                 flags.GetU64("seed", 7));
  uint64_t hits = 0;
  const auto query_start = std::chrono::steady_clock::now();
  for (uint64_t q = 0; q < queries; ++q) {
    const workload::KeyRequest request = keys.Next();
    const keyword::KeywordDigest digest =
        keyword::DigestKey(request.key, built->map->seed());
    std::vector<Bytes> fetched;
    for (const storage::PageId id : built->map->Probes(digest)) {
      fetched.push_back(page_store[id]);
    }
    Result<std::optional<Bytes>> value =
        built->map->Extract(digest, fetched);
    if (!value.ok()) {
      std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
      return 1;
    }
    if (value->has_value() != request.hit) {
      std::fprintf(stderr, "error: wrong %s for key %s\n",
                   request.hit ? "miss" : "hit",
                   std::string(request.key.begin(), request.key.end())
                       .c_str());
      return 1;
    }
    hits += value->has_value() ? 1 : 0;
  }
  const double query_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - query_start)
                             .count();
  std::printf(
      "%s: %llu keys built in %.3f s; %llu map-level queries "
      "(%.0f%% hits) in %.3f s (%.0f q/s), all verified\n",
      built->map->name(), static_cast<unsigned long long>(num_keys), build_s,
      static_cast<unsigned long long>(queries),
      100.0 * static_cast<double>(hits) / static_cast<double>(queries),
      query_s, static_cast<double>(queries) / query_s);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string mode = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (mode == "build") {
    return RunBuild(flags);
  }
  if (mode == "get") {
    return RunGet(flags);
  }
  if (mode == "bench") {
    return RunBench(flags);
  }
  return Usage();
}
