// shpir_lint: secret-flow lint for the trust boundary.
//
// Usage: shpir_lint [--print-secrets] <file-or-dir>...
//
// Scans the given files (or *.h/*.cc/*.cpp under the given directories)
// and reports violations of the secret-flow rules documented in
// docs/STATIC_ANALYSIS.md. Exits 0 when clean, 1 when any finding
// survives its suppressions, 2 on usage or I/O errors.

#include <cstdio>
#include <string>
#include <vector>

#include <filesystem>

#include "lint/lint.h"

int main(int argc, char** argv) {
  bool print_secrets = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-secrets") {
      print_secrets = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: shpir_lint [--print-secrets] <file-or-dir>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "shpir_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: shpir_lint [--print-secrets] <file-or-dir>...\n");
    return 2;
  }

  shpir::lint::Linter linter;
  int scanned = 0;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      scanned += linter.AddTree(path);
    } else if (linter.AddFile(path)) {
      ++scanned;
    } else {
      std::fprintf(stderr, "shpir_lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
  }

  const std::vector<shpir::lint::Finding> findings = linter.Run();
  for (const shpir::lint::Finding& finding : findings) {
    std::fprintf(stderr, "%s\n",
                 shpir::lint::FormatFinding(finding).c_str());
  }
  if (print_secrets) {
    for (const std::string& name : linter.global_secrets()) {
      std::printf("secret: %s\n", name.c_str());
    }
  }
  std::fprintf(stderr, "shpir_lint: %zu finding(s) in %d file(s)\n",
               findings.size(), scanned);
  return findings.empty() ? 0 : 1;
}
