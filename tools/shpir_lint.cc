// shpir_lint: interprocedural secret-flow lint for the trust boundary.
//
// Usage: shpir_lint [options] <file-or-dir>...
//
//   --json             print findings as JSON on stdout
//   --sarif=<path>     write findings as SARIF 2.1.0 to <path>
//   --audit=<path>     write the suppression audit to <path>
//   --audit-check=<path>  fail (exit 1) if <path> differs from the
//                      audit the scan would generate
//   --cache-dir=<dir>  per-file facts cache (content-hash keyed)
//   --print-secrets    list global secret roots on stdout
//
// Scans the given files (or *.h/*.cc/*.cpp under the given directories)
// and reports violations of the secret-flow rules documented in
// docs/STATIC_ANALYSIS.md. Exits 0 when clean, 1 when any finding
// survives its suppressions (or --audit-check detects drift), 2 on
// usage or I/O errors (including an empty scan set).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "lint/lint.h"

namespace {

constexpr char kUsage[] =
    "usage: shpir_lint [--json] [--sarif=<path>] [--audit=<path>]\n"
    "                  [--audit-check=<path>] [--cache-dir=<dir>]\n"
    "                  [--print-secrets] <file-or-dir>...\n";

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool print_secrets = false;
  bool json = false;
  std::string sarif_path;
  std::string audit_path;
  std::string audit_check_path;
  std::string cache_dir;
  std::vector<std::string> paths;
  auto value_of = [](const std::string& arg) {
    return arg.substr(arg.find('=') + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-secrets") {
      print_secrets = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = value_of(arg);
    } else if (arg.rfind("--audit=", 0) == 0) {
      audit_path = value_of(arg);
    } else if (arg.rfind("--audit-check=", 0) == 0) {
      audit_check_path = value_of(arg);
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = value_of(arg);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "shpir_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  shpir::lint::Linter linter;
  linter.set_cache_dir(cache_dir);
  int scanned = 0;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      scanned += linter.AddTree(path);
    } else if (linter.AddFile(path)) {
      ++scanned;
    } else {
      std::fprintf(stderr, "shpir_lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
  }
  if (scanned == 0) {
    std::fprintf(stderr, "shpir_lint: no source files under the given paths\n");
    return 2;
  }

  const std::vector<shpir::lint::Finding> findings = linter.Run();
  if (json) {
    std::printf("%s", shpir::lint::FindingsJson(findings).c_str());
  } else {
    for (const shpir::lint::Finding& finding : findings) {
      std::fprintf(stderr, "%s\n",
                   shpir::lint::FormatFinding(finding).c_str());
    }
  }
  if (!sarif_path.empty() &&
      !WriteFile(sarif_path, shpir::lint::FindingsSarif(findings))) {
    std::fprintf(stderr, "shpir_lint: cannot write '%s'\n",
                 sarif_path.c_str());
    return 2;
  }
  const std::string audit = shpir::lint::AuditReport(linter.audit());
  if (!audit_path.empty() && !WriteFile(audit_path, audit)) {
    std::fprintf(stderr, "shpir_lint: cannot write '%s'\n",
                 audit_path.c_str());
    return 2;
  }
  bool audit_drift = false;
  if (!audit_check_path.empty()) {
    std::ifstream in(audit_check_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "shpir_lint: cannot read '%s'\n",
                   audit_check_path.c_str());
      return 2;
    }
    std::ostringstream committed;
    committed << in.rdbuf();
    if (committed.str() != audit) {
      audit_drift = true;
      std::fprintf(stderr,
                   "shpir_lint: suppression audit drift: regenerate with\n"
                   "  shpir_lint --audit=%s <same paths>\n",
                   audit_check_path.c_str());
    }
  }
  if (print_secrets) {
    for (const std::string& name : linter.global_secrets()) {
      std::printf("secret: %s\n", name.c_str());
    }
  }
  std::fprintf(stderr,
               "shpir_lint: %zu finding(s) in %d file(s) "
               "(facts cache: %d hit, %d miss)\n",
               findings.size(), scanned, linter.cache_hits(),
               linter.cache_misses());
  return findings.empty() && !audit_drift ? 0 : 1;
}
