// Data-owner CLI for the two-party model: manages a private page store
// hosted at an untrusted shpir_provider over TCP. The owner machine
// plays the secure-hardware role; its state snapshot is sealed under
// the passphrase between invocations.
//
//   shpir_owner init   --pages N [--page-size B] [--cache M] [--c C]
//                      [--reserve R] <common flags>
//   shpir_owner get    --id I   <common flags>
//   shpir_owner put    --id I --data TEXT <common flags>
//   shpir_owner insert --data TEXT <common flags>
//   shpir_owner remove --id I   <common flags>
//   shpir_owner stats  <common flags>
//
// common flags: --host H (default 127.0.0.1) --port P
//               --state FILE (default shpir_owner.state)
//               --passphrase PASS (default "shpir")
//               --trace-sample N (head-sample 1-in-N commands; 0 = off)
//               --trace-out FILE (dump the owner-side spans as Chrome
//                 trace JSON after the command; provider-side spans are
//                 fetched separately with shpir_trace)
//               --profile-sample N (profile 1-in-N engine rounds; 0 =
//                 off) and --profile-out FILE (write the owner-side
//                 collapsed flame-graph profile after the command;
//                 provider-side profiles come from shpir_profile)
//
// Example session:
//   slots=$(...)                         # printed by `init`
//   shpir_provider /tmp/db.bin $slots 1076 9000 &
//   shpir_owner init --port 9000 --pages 1000
//   shpir_owner put --port 9000 --id 7 --data "hello"
//   shpir_owner get --port 9000 --id 7
//
// Known limitation: the state file is rewritten after each operation;
// killing the process between the remote writes and the state save
// desynchronizes them (the next restore will fail its consistency
// checks). A production deployment would journal state updates.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/blob_cipher.h"
#include "crypto/hmac.h"
#include "hardware/coprocessor.h"
#include "net/remote_disk.h"
#include "net/tcp_transport.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace {

using namespace shpir;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr,
                                              10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtod(it->second.c_str(), nullptr);
  }
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// The device seed (hence its keys) is derived from the passphrase so
// restarts reconstruct the same keys.
uint64_t DeviceSeed(const std::string& passphrase) {
  crypto::HmacSha256 kdf(ByteSpan(
      reinterpret_cast<const uint8_t*>(passphrase.data()),
      passphrase.size()));
  const auto tag = kdf.Compute(ByteSpan(
      reinterpret_cast<const uint8_t*>("shpir-device-seed"), 17));
  return LoadLE64(tag.data());
}

Result<Bytes> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

Status WriteFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("cannot write " + path);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? OkStatus() : InternalError("short write to " + path);
}

struct Session {
  std::unique_ptr<net::TcpTransport> transport;
  std::unique_ptr<net::RemoteDisk> disk;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<obs::Tracer> tracer;  // Null unless --trace-sample.
  std::unique_ptr<obs::Profiler> profiler;  // Null unless --profile-sample.
  std::unique_ptr<core::CApproxPir> engine;
  core::CApproxPir::Options options;
  crypto::BlobCipher cipher;
  std::string state_path;

  explicit Session(crypto::BlobCipher c) : cipher(std::move(c)) {}

  Status SaveState() {
    SHPIR_ASSIGN_OR_RETURN(Bytes state, engine->SerializeState());
    SHPIR_ASSIGN_OR_RETURN(Bytes sealed, cipher.Seal(state, cpu->rng()));
    return WriteFile(state_path, sealed);
  }
};

// The options are persisted (plaintext geometry header) next to the
// sealed state so later invocations can rebuild the stack.
Bytes EncodeMeta(const core::CApproxPir::Options& options) {
  Bytes out(8 * 5);
  StoreLE64(options.num_pages, out.data());
  StoreLE64(options.page_size, out.data() + 8);
  StoreLE64(options.cache_pages, out.data() + 16);
  StoreLE64(options.block_size, out.data() + 24);
  StoreLE64(options.insert_reserve, out.data() + 32);
  return out;
}

Result<core::CApproxPir::Options> DecodeMeta(ByteSpan data) {
  if (data.size() < 40) {
    return DataLossError("corrupt state file header");
  }
  core::CApproxPir::Options options;
  options.num_pages = LoadLE64(data.data());
  options.page_size = LoadLE64(data.data() + 8);
  options.cache_pages = LoadLE64(data.data() + 16);
  options.block_size = LoadLE64(data.data() + 24);
  options.insert_reserve = LoadLE64(data.data() + 32);
  return options;
}

Result<std::unique_ptr<Session>> Connect(
    const Flags& flags, const core::CApproxPir::Options& options) {
  const std::string passphrase = flags.Get("passphrase", "shpir");
  SHPIR_ASSIGN_OR_RETURN(crypto::BlobCipher cipher,
                         crypto::BlobCipher::FromPassphrase(passphrase));
  auto session = std::make_unique<Session>(std::move(cipher));
  session->options = options;
  session->state_path = flags.Get("state", "shpir_owner.state");
  SHPIR_ASSIGN_OR_RETURN(
      session->transport,
      net::TcpTransport::Connect(
          flags.Get("host", "127.0.0.1"),
          static_cast<uint16_t>(flags.GetU64("port", 9000))));
  SHPIR_ASSIGN_OR_RETURN(session->disk,
                         net::RemoteDisk::Connect(session->transport.get()));
  SHPIR_ASSIGN_OR_RETURN(
      session->cpu,
      hardware::SecureCoprocessor::Create(
          hardware::HardwareProfile::TwoPartyOwner(8ull * hardware::kGB),
          session->disk.get(), options.page_size, DeviceSeed(passphrase)));
  session->disk->set_accountant(&session->cpu->cost());
  SHPIR_ASSIGN_OR_RETURN(
      session->engine,
      core::CApproxPir::Create(session->cpu.get(), session->options));
  session->cpu->AttachMetrics(&obs::MetricsRegistry::Global());
  session->engine->EnableMetrics(&obs::MetricsRegistry::Global());
  const uint64_t trace_sample = flags.GetU64("trace-sample", 0);
  if (trace_sample > 0) {
    obs::Tracer::Options trace_options;
    trace_options.sample_every = trace_sample;
    session->tracer = std::make_unique<obs::Tracer>(trace_options);
    session->disk->set_tracer(session->tracer.get());
    session->engine->EnableTracing(session->tracer.get());
  }
  const uint64_t profile_sample = flags.GetU64("profile-sample", 0);
  if (profile_sample > 0) {
    obs::Profiler::Options profile_options;
    profile_options.sample_every = profile_sample;
    session->profiler = std::make_unique<obs::Profiler>(profile_options);
    session->engine->EnableProfiling(session->profiler.get());
  }
  return session;
}

Result<std::unique_ptr<Session>> Resume(const Flags& flags) {
  const std::string state_path = flags.Get("state", "shpir_owner.state");
  SHPIR_ASSIGN_OR_RETURN(Bytes file, ReadFile(state_path));
  SHPIR_ASSIGN_OR_RETURN(core::CApproxPir::Options options,
                         DecodeMeta(file));
  SHPIR_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                         Connect(flags, options));
  SHPIR_ASSIGN_OR_RETURN(
      Bytes state,
      session->cipher.Open(ByteSpan(file.data() + 40, file.size() - 40)));
  SHPIR_RETURN_IF_ERROR(session->engine->RestoreState(state));
  return session;
}

Status SaveWithMeta(Session& session) {
  SHPIR_ASSIGN_OR_RETURN(Bytes state, session.engine->SerializeState());
  SHPIR_ASSIGN_OR_RETURN(Bytes sealed,
                         session.cipher.Seal(state, session.cpu->rng()));
  Bytes file = EncodeMeta(session.options);
  file.insert(file.end(), sealed.begin(), sealed.end());
  return WriteFile(session.state_path, file);
}

int CmdInit(const Flags& flags) {
  core::CApproxPir::Options options;
  options.num_pages = flags.GetU64("pages", 0);
  options.page_size = flags.GetU64("page-size", 1024);
  options.cache_pages = flags.GetU64("cache", 64);
  options.privacy_c = flags.GetDouble("c", 2.0);
  options.insert_reserve = flags.GetU64("reserve", 0);
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  if (!slots.ok()) {
    return Fail(slots.status());
  }
  const uint64_t slot_size = 12 + 8 + options.page_size + 32;
  std::printf("geometry: %llu slots x %llu bytes (start the provider "
              "with these)\n",
              (unsigned long long)*slots, (unsigned long long)slot_size);
  Result<std::unique_ptr<Session>> session = Connect(flags, options);
  if (!session.ok()) {
    return Fail(session.status());
  }
  // Freeze the derived block size into the persisted options so later
  // invocations reconstruct the identical geometry.
  (*session)->options.block_size = (*session)->engine->block_size();
  Status status = (*session)->engine->Initialize({});
  if (!status.ok()) {
    return Fail(status);
  }
  status = SaveWithMeta(**session);
  if (!status.ok()) {
    return Fail(status);
  }
  std::printf("initialized: n=%llu B=%zu m=%llu k=%llu c=%.3f\n",
              (unsigned long long)options.num_pages, options.page_size,
              (unsigned long long)options.cache_pages,
              (unsigned long long)(*session)->engine->block_size(),
              (*session)->engine->achieved_privacy());
  return 0;
}

int RunCommand(const std::string& command, const Flags& flags,
               Session& session, const obs::TraceContext& ctx) {
  core::CApproxPir& engine = *session.engine;
  if (command == "get") {
    Result<Bytes> data = engine.TracedRetrieve(flags.GetU64("id", 0), ctx);
    // shpir-lint-allow-next-line(secret-branch): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    if (!data.ok()) {
      // shpir-lint-allow-next-line(secret-arg): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
      return Fail(data.status());
    }
    const auto end = std::find(data->begin(), data->end(), uint8_t{0});
    // shpir-lint-allow-next-line(secret-log): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    std::printf("%.*s\n", static_cast<int>(end - data->begin()),
                reinterpret_cast<const char*>(data->data()));
  } else if (command == "put") {
    const std::string text = flags.Get("data");
    const Status status = engine.Modify(
        flags.GetU64("id", 0), Bytes(text.begin(), text.end()));
    // shpir-lint-allow-next-line(secret-branch): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    if (!status.ok()) {
      // shpir-lint-allow-next-line(secret-arg): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
      return Fail(status);
    }
    std::printf("ok\n");
  } else if (command == "insert") {
    const std::string text = flags.Get("data");
    Result<storage::PageId> id =
        engine.Insert(Bytes(text.begin(), text.end()));
    // shpir-lint-allow-next-line(secret-branch): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    if (!id.ok()) {
      // shpir-lint-allow-next-line(secret-arg): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
      return Fail(id.status());
    }
    // shpir-lint-allow-next-line(secret-log): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    std::printf("id %llu\n", (unsigned long long)*id);
  } else if (command == "remove") {
    const Status status = engine.Remove(flags.GetU64("id", 0));
    // shpir-lint-allow-next-line(secret-branch): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    if (!status.ok()) {
      // shpir-lint-allow-next-line(secret-arg): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
      return Fail(status);
    }
    std::printf("ok\n");
  } else if (command == "stats") {
    const auto& stats = engine.stats();
    std::printf("queries=%llu cache_hits=%llu block_hits=%llu "
                "inserts=%llu removes=%llu modifies=%llu k=%llu c=%.3f\n",
                (unsigned long long)stats.queries,
                (unsigned long long)stats.cache_hits,
                (unsigned long long)stats.block_hits,
                (unsigned long long)stats.inserts,
                (unsigned long long)stats.removes,
                (unsigned long long)stats.modifies,
                (unsigned long long)engine.block_size(),
                engine.achieved_privacy());
    std::fputs(
        obs::RenderTable(obs::MetricsRegistry::Global().Snapshot()).c_str(),
        stdout);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  }
  return 0;
}

int CmdOp(const std::string& command, const Flags& flags) {
  Result<std::unique_ptr<Session>> session = Resume(flags);
  if (!session.ok()) {
    return Fail(session.status());
  }
  int rc;
  {
    // The root span covers the whole command; the context rides every
    // remote disk op to the provider (inert unless sampled).
    obs::TraceSpan root((*session)->tracer.get(), "client_query");
    if (root.context().active()) {
      (*session)->disk->set_trace_context(root.context());
    }
    rc = RunCommand(command, flags, **session, root.context());
    (*session)->disk->clear_trace_context();
  }
  // shpir-lint-allow-next-line(secret-branch, secret-compare): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
  if (rc != 0) {
    return rc;
  }
  const Status saved = SaveWithMeta(**session);
  if (!saved.ok()) {
    return Fail(saved);
  }
  const std::string trace_out = flags.Get("trace-out");
  if (!trace_out.empty() && (*session)->tracer != nullptr) {
    const std::string json =
        obs::ToChromeTraceJson((*session)->tracer->Snapshot());
    const Status written = WriteFile(
        trace_out, ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                            json.size()));
    // shpir-lint-allow-next-line(secret-branch): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    if (!written.ok()) {
      // shpir-lint-allow-next-line(secret-arg): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
      return Fail(written);
    }
  }
  const std::string profile_out = flags.Get("profile-out");
  if (!profile_out.empty() && (*session)->profiler != nullptr) {
    const std::string folded = (*session)->profiler->ToCollapsed();
    const Status written = WriteFile(
        profile_out,
        ByteSpan(reinterpret_cast<const uint8_t*>(folded.data()),
                 folded.size()));
    // shpir-lint-allow-next-line(secret-branch): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
    if (!written.ok()) {
      // shpir-lint-allow-next-line(secret-arg): operator CLI: owner-side administration output on the operator's own terminal; the provider sees only the PIR stream underneath
      return Fail(written);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s init|get|put|insert|remove|stats [--flag "
                 "value]...\n",
                 argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  Flags flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "bad flag: %s\n", argv[i]);
      return 2;
    }
    flags.values[argv[i] + 2] = argv[i + 1];
  }
  if (command == "init") {
    return CmdInit(flags);
  }
  return CmdOp(command, flags);
}
