// Continuous-profiling CLI: fetches the aggregated profile from a
// running shpir endpoint, either as the closed-schema JSON stack table
// or as flame-graph-compatible collapsed text (pipe the latter into
// flamegraph.pl / speedscope; see docs/OBSERVABILITY.md).
//
// Two-party model — polls a shpir_provider's storage server over the
// plaintext PROFILE_DUMP wire op:
//
//   shpir_profile [--host H] [--port P] [--format json|collapsed]
//                 [--out FILE]
//
// Three-party model — performs the hub handshake and fetches the dump
// through the sealed session, so only holders of the pre-shared key can
// read the (aggregate, target-independent) profile:
//
//   shpir_profile hub [--host H] [--port P] [--psk STR] [--client-id N]
//                     [--format json|collapsed] [--out FILE]
//
// Default output is stdout; --out writes to FILE.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "net/tcp_transport.h"
#include "net/wire.h"

namespace {

using namespace shpir;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr,
                                              10);
  }
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

bool WantCollapsed(const Flags& flags) {
  return flags.Get("format", "json") == "collapsed";
}

int Emit(const Flags& flags, const Bytes& body) {
  const std::string out_path = flags.Get("out");
  if (out_path.empty()) {
    std::fwrite(body.data(), 1, body.size(), stdout);
    if (body.empty() || body.back() != '\n') {
      std::fputc('\n', stdout);
    }
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
  if (!out) {
    // shpir-lint-allow-next-line(secret-log): operator CLI status line naming the operator-chosen output path; the provider-observable channel is only the PIR stream underneath
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  // shpir-lint-allow-next-line(secret-log): operator CLI status line naming the operator-chosen output path; the provider-observable channel is only the PIR stream underneath
  std::fprintf(stderr, "wrote %zu bytes to %s\n", body.size(),
               out_path.c_str());
  return 0;
}

/// Two-party model: the provider serves its own profile plaintext — the
/// provider is the untrusted party, and its profile covers work it
/// already observes (request kinds and timing), never page identities.
int DumpStorage(const Flags& flags) {
  Result<std::unique_ptr<net::TcpTransport>> transport =
      net::TcpTransport::Connect(
          flags.Get("host", "127.0.0.1"),
          static_cast<uint16_t>(flags.GetU64("port", 9000)));
  if (!transport.ok()) {
    return Fail(transport.status());
  }
  net::Request request;
  request.op = net::Op::kProfileDump;
  request.payload.push_back(WantCollapsed(flags) ? 1 : 0);
  Result<Bytes> reply =
      (*transport)->RoundTrip(net::EncodeRequest(request));
  if (!reply.ok()) {
    return Fail(reply.status());
  }
  Result<Bytes> payload = net::DecodeResponse(*reply);
  if (!payload.ok()) {
    return Fail(payload.status());
  }
  return Emit(flags, *payload);
}

/// Three-party model: handshake with the hub, then fetch the dump
/// through the sealed session (authenticated PROFILE_DUMP op).
int DumpHub(const Flags& flags) {
  Result<std::unique_ptr<net::TcpTransport>> transport =
      net::TcpTransport::Connect(
          flags.Get("host", "127.0.0.1"),
          static_cast<uint16_t>(flags.GetU64("port", 9000)));
  if (!transport.ok()) {
    return Fail(transport.status());
  }
  const std::string psk_text = flags.Get("psk", "shpir");
  const Bytes psk(psk_text.begin(), psk_text.end());
  crypto::SecureRandom rng;  // OS entropy.
  const uint64_t client_id = flags.values.count("client-id")
                                 ? flags.GetU64("client-id", 0)
                                 : rng.NextUint64();
  Bytes nonce(net::SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> hello_reply = (*transport)->RoundTrip(
      net::ServiceHub::MakeHello(client_id, nonce));
  if (!hello_reply.ok()) {
    return Fail(hello_reply.status());
  }
  Result<net::SecureSession> session = net::ServiceHub::CompleteHandshake(
      *hello_reply, psk, client_id, nonce);
  if (!session.ok()) {
    return Fail(session.status());
  }
  net::TcpTransport* wire = transport->get();
  net::PirServiceClient client(
      std::move(session).value(), [wire, client_id](ByteSpan record) {
        return wire->RoundTrip(net::ServiceHub::MakeData(client_id, record));
      });
  Result<Bytes> body = client.ProfileDump(WantCollapsed(flags));
  if (!body.ok()) {
    return Fail(body.status());
  }
  return Emit(flags, *body);
}

}  // namespace

int main(int argc, char** argv) {
  const bool hub = argc >= 2 && std::strcmp(argv[1], "hub") == 0;
  Flags flags;
  for (int i = hub ? 2 : 1; i < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) {
      std::fprintf(
          stderr,
          "usage: %s [--host H] [--port P] [--format json|collapsed] "
          "[--out FILE]\n"
          "       %s hub [--host H] [--port P] [--psk STR] "
          "[--client-id N] [--format json|collapsed] [--out FILE]\n",
          argv[0], argv[0]);
      return 2;
    }
    flags.values[argv[i] + 2] = argv[i + 1];
  }
  const std::string format = flags.Get("format", "json");
  if (format != "json" && format != "collapsed") {
    std::fprintf(stderr, "error: --format must be json or collapsed\n");
    return 2;
  }
  return hub ? DumpHub(flags) : DumpStorage(flags);
}
