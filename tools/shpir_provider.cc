// Storage-provider daemon for the two-party model: hosts a file-backed
// block store and serves the shpir wire protocol over TCP. The provider
// only ever sees sealed pages.
//
//   shpir_provider <disk-file> <slots> <slot-size> [port]
//                  [--trace-buffer SPANS]
//
// Creates the disk file if it does not exist. Prints the bound port and
// serves until killed. --trace-buffer enables distributed tracing with
// a bounded span buffer: requests arriving in a sampled TRACED envelope
// (an owner run with --trace-sample) record provider-side spans,
// retrievable with shpir_trace via the TRACE_DUMP op.
//
// Hub mode instead runs the full three-party service in-process over
// the sharded serving runtime (src/shard/): S independent c-approximate
// engines behind a bounded-queue dispatcher, serving the ServiceHub
// frame protocol. Clients speak the same sealed-record protocol as
// against a single engine; the sharding (and its cover traffic) is
// invisible to them.
//
//   shpir_provider hub --pages N [--page-size B] [--cache M] [--c C]
//                      [--shards S] [--queue-depth D] [--deadline-ms T]
//                      [--port P] [--psk STR] [--seed X]
//                      [--trace-buffer SPANS] [--profile-sample N]
//                      [--slo-latency-ms T]
//
// --cache is the per-shard (per-device) cache m; see docs/SHARDING.md.
// --trace-buffer enables tracing across the hub and every shard; fetch
// dumps with `shpir_trace hub` (authenticated TRACE_DUMP op).
//
// Both modes accept --profile-sample N (continuous profiling, 1-in-N
// head sampling; fetch with shpir_profile / the PROFILE_DUMP op) and
// --slo-latency-ms T (SLO tracking with latency threshold T; fetch with
// `shpir_stats --slo 1` / the SLO_STATUS op). Profiles and SLO state
// are aggregate and target-independent by construction (see
// docs/OBSERVABILITY.md).
//
// Both modes also accept --eventlog N (structured event log with an
// N-event ring; fetch with the EVENT_DUMP op) and --incidents K
// (flight recorder keeping the last K incident bundles; fetch with
// shpir_incident / the INCIDENT_DUMP op; bundles also spill to
// $SHPIR_INCIDENT_DIR when set). The HEALTH op is always answered.
//
// Hub mode additionally accepts --control-c-bound C: runs the
// privacy/cost controller (src/control/), which retunes each shard's
// block size k online between [--control-kmin, --control-kmax] to hold
// latency while keeping Eq. 5 c below C. --control-interval-ms sets the
// tick period (default 1000); --control-frozen 1 starts it frozen
// (observe only). Inspect and steer with shpir_ctl / `shpir_stats
// --control` (CONTROL_STATUS op).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.h"
#include "net/service_hub.h"
#include "net/storage_server.h"
#include "net/tcp_transport.h"
#include "obs/build_info.h"
#include "obs/eventlog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "shard/sharded_engine.h"
#include "storage/file_disk.h"
#include "storage/metered_disk.h"

namespace {

using namespace shpir;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr,
                                              10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtod(it->second.c_str(), nullptr);
  }
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i + 1 < argc; i += 2) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) == 0) {
      flags.values[arg + 2] = argv[i + 1];
    }
  }
  return flags;
}

int ServeHub(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv, 2);
  shard::ShardedPirEngine::Options options;
  options.num_pages = flags.GetU64("pages", 0);
  options.page_size = flags.GetU64("page-size", 1024);
  options.cache_pages = flags.GetU64("cache", 64);
  options.privacy_c = flags.GetDouble("c", 2.0);
  options.shards = flags.GetU64("shards", 1);
  options.queue_depth = flags.GetU64("queue-depth", 64);
  const uint64_t deadline_ms = flags.GetU64("deadline-ms", 0);
  if (deadline_ms > 0) {
    options.deadline = std::chrono::milliseconds(deadline_ms);
  }
  const uint64_t seed = flags.GetU64("seed", 0);
  if (seed != 0) {
    options.seed = seed;
  }
  if (options.num_pages == 0) {
    std::fprintf(stderr, "error: hub mode requires --pages\n");
    return 2;
  }
  const uint16_t port =
      static_cast<uint16_t>(flags.GetU64("port", 0));
  const std::string psk_text = flags.Get("psk", "shpir");
  Bytes psk(psk_text.begin(), psk_text.end());

  Result<std::unique_ptr<shard::ShardedPirEngine>> engine =
      shard::ShardedPirEngine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  Status loaded = (*engine)->Initialize({});
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.ToString().c_str());
    return 1;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::PublishBuildInfo(&metrics);
  (*engine)->EnableMetrics(&metrics);

  // Sampling is decided by clients (head sampling at the root span);
  // the hub-side tracer only buffers spans for propagated contexts.
  std::unique_ptr<obs::Tracer> tracer;
  const uint64_t trace_buffer = flags.GetU64("trace-buffer", 0);
  if (trace_buffer > 0) {
    obs::Tracer::Options trace_options;
    trace_options.buffer_capacity = trace_buffer;
    tracer = std::make_unique<obs::Tracer>(trace_options);
    (*engine)->EnableTracing(tracer.get());
  }

  std::unique_ptr<obs::Profiler> profiler;
  net::PirServiceServer::ProfileProvider profile_dump;
  const uint64_t profile_sample = flags.GetU64("profile-sample", 0);
  if (profile_sample > 0) {
    obs::Profiler::Options profile_options;
    profile_options.sample_every = profile_sample;
    profiler = std::make_unique<obs::Profiler>(profile_options);
    profiler->PublishMetrics(&metrics);
    (*engine)->EnableProfiling(profiler.get());
    obs::Profiler* p = profiler.get();
    profile_dump = [p](bool folded) {
      const std::string body = folded ? p->ToCollapsed() : p->ToJson();
      return Bytes(body.begin(), body.end());
    };
  }

  net::PirServiceServer::SloProvider slo_status;
  const uint64_t slo_latency_ms = flags.GetU64("slo-latency-ms", 0);
  if (slo_latency_ms > 0) {
    obs::SloTracker::Objectives objectives;
    objectives.latency_threshold_ns = slo_latency_ms * 1'000'000;
    (*engine)->EnableSlo(objectives, &metrics);
    shard::ShardedPirEngine* e = engine->get();
    slo_status = [e] {
      const std::string body = e->SloStatusJson();
      return Bytes(body.begin(), body.end());
    };
  }

  std::unique_ptr<obs::EventLog> eventlog;
  net::PirServiceServer::EventProvider event_dump;
  const uint64_t eventlog_capacity = flags.GetU64("eventlog", 0);
  if (eventlog_capacity > 0) {
    obs::EventLog::Options elopts;
    elopts.capacity = eventlog_capacity;
    eventlog = std::make_unique<obs::EventLog>(elopts);
    eventlog->PublishMetrics(&metrics);
    (*engine)->EnableEventLog(eventlog.get());
    event_dump = [log = eventlog.get()] {
      const std::string body = obs::EventLogJson(*log);
      return Bytes(body.begin(), body.end());
    };
  }

  std::unique_ptr<obs::FlightRecorder> recorder;
  net::PirServiceServer::IncidentProvider incident_dump;
  const uint64_t incidents = flags.GetU64("incidents", 0);
  if (incidents > 0) {
    obs::FlightRecorder::Options fropts;
    fropts.max_incidents = incidents;
    recorder = std::make_unique<obs::FlightRecorder>(fropts);
    recorder->AttachEventLog(eventlog.get());
    recorder->AttachTracer(tracer.get());
    recorder->AttachMetrics(&metrics);
    recorder->AttachProfiler(profiler.get());
    recorder->PublishMetrics(&metrics);
    // Registers the runtime's triggers (privacy breach, SLO burn,
    // dispatcher overload) and the config fingerprint. Must follow
    // EnableSlo so the SLO trigger sees the logical tracker.
    (*engine)->EnableFlightRecorder(recorder.get());
    incident_dump = [r = recorder.get()](bool show,
                                         uint64_t id) -> Result<Bytes> {
      r->Poll();
      if (show) {
        const std::string body = r->ShowJson(id);
        if (body.empty()) {
          return NotFoundError("no such incident in the store");
        }
        return Bytes(body.begin(), body.end());
      }
      const std::string body = r->ListJson();
      return Bytes(body.begin(), body.end());
    };
  }

  net::PirServiceServer::HealthProvider health = [e = engine->get()] {
    const std::string body = e->HealthJson();
    return Bytes(body.begin(), body.end());
  };

  control::ShardedEnginePlant plant(engine->get());
  std::unique_ptr<control::PrivacyCostController> controller;
  net::PirServiceServer::ControlProvider control_provider;
  const double control_c_bound = flags.GetDouble("control-c-bound", 0.0);
  if (control_c_bound > 0.0) {
    control::PrivacyCostController::Options copts;
    copts.c_bound = control_c_bound;
    copts.k_min = flags.GetU64("control-kmin", 1);
    copts.k_max = flags.GetU64("control-kmax", 0);
    copts.tick_interval = std::chrono::milliseconds(
        flags.GetU64("control-interval-ms", 1000));
    copts.start_frozen = flags.GetU64("control-frozen", 0) != 0;
    Result<std::unique_ptr<control::PrivacyCostController>> created =
        control::PrivacyCostController::Create(copts, &plant);
    if (!created.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    controller = std::move(*created);
    controller->EnableMetrics(&metrics);
    controller->EnableEventLog(eventlog.get());
    controller->EnableTracing(tracer.get());
    if (recorder != nullptr) {
      controller->EnableFlightRecorder(recorder.get());
    }
    control_provider = [c = controller.get()](
                           const net::ControlRequest& request)
        -> Result<Bytes> {
      switch (request.verb) {
        case net::ControlVerb::kStatus:
          break;
        case net::ControlVerb::kFreeze:
          c->Freeze();
          break;
        case net::ControlVerb::kUnfreeze:
          c->Unfreeze();
          break;
        case net::ControlVerb::kSetBounds: {
          const Status set = c->SetBounds(request.k_min, request.k_max);
          if (!set.ok()) {
            return set;
          }
          break;
        }
      }
      const std::string body = c->StatusJson();
      return Bytes(body.begin(), body.end());
    };
    controller->Start();
  }

  net::ServiceHub hub(engine->get(), std::move(psk), /*rng_seed=*/0,
                      &metrics, tracer.get(), std::move(profile_dump),
                      std::move(slo_status), /*keyword_manifest=*/nullptr,
                      std::move(event_dump), std::move(incident_dump),
                      std::move(health), std::move(control_provider));
  Result<std::unique_ptr<net::TcpFrameListener>> listener =
      net::TcpFrameListener::Listen(
          [&hub](ByteSpan frame) { return hub.HandleFrame(frame); }, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  const shard::ShardPlan& plan = (*engine)->plan();
  std::printf("sharded hub: %llu pages x %zuB over %llu shard(s), "
              "per-shard k = %llu, worst c = %.4f, queue depth %zu\n",
              (unsigned long long)plan.total_pages(), options.page_size,
              (unsigned long long)plan.shards(),
              (unsigned long long)plan.spec(0).block_size, plan.worst_c(),
              options.queue_depth);
  std::printf("serving on 127.0.0.1:%u\n", (*listener)->port());
  std::fflush(stdout);
  (*listener)->Run();
  if (controller != nullptr) {
    controller->Stop();
  }
  (*engine)->Drain();
  return 0;
}

int ServeStorage(int argc, char** argv) {
  std::vector<std::string> positional;
  uint64_t trace_buffer = 0;
  uint64_t profile_sample = 0;
  uint64_t slo_latency_ms = 0;
  uint64_t eventlog_capacity = 0;
  uint64_t incidents = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-buffer") == 0 && i + 1 < argc) {
      trace_buffer = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--profile-sample") == 0 &&
               i + 1 < argc) {
      profile_sample = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--slo-latency-ms") == 0 &&
               i + 1 < argc) {
      slo_latency_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--eventlog") == 0 && i + 1 < argc) {
      eventlog_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--incidents") == 0 && i + 1 < argc) {
      incidents = std::strtoull(argv[++i], nullptr, 10);
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() < 3 || positional.size() > 4) {
    return 2;
  }
  const std::string path = positional[0];
  const uint64_t slots = std::strtoull(positional[1].c_str(), nullptr, 10);
  const uint64_t slot_size =
      std::strtoull(positional[2].c_str(), nullptr, 10);
  const uint16_t port =
      positional.size() == 4
          ? static_cast<uint16_t>(
                std::strtoul(positional[3].c_str(), nullptr, 10))
          : 0;
  if (slots == 0 || slot_size == 0) {
    std::fprintf(stderr, "error: slots and slot-size must be positive\n");
    return 2;
  }

  // Open if present, else create.
  Result<std::unique_ptr<storage::FileDisk>> disk =
      storage::FileDisk::Open(path, slots, slot_size);
  if (!disk.ok()) {
    disk = storage::FileDisk::Create(path, slots, slot_size);
    if (!disk.ok()) {
      std::fprintf(stderr, "error: %s\n", disk.status().ToString().c_str());
      return 1;
    }
    std::printf("created %s (%llu x %llu bytes)\n", path.c_str(),
                (unsigned long long)slots, (unsigned long long)slot_size);
  } else {
    std::printf("opened %s\n", path.c_str());
  }

  // Everything the provider observes is public by assumption (it is the
  // untrusted party), so its process-wide registry may be served to any
  // client via the kStats wire op and the shpir_stats tool.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::PublishBuildInfo(&metrics);
  storage::MeteredDisk metered(disk->get(), &metrics);
  std::unique_ptr<obs::Tracer> tracer;
  if (trace_buffer > 0) {
    obs::Tracer::Options trace_options;
    trace_options.buffer_capacity = trace_buffer;
    tracer = std::make_unique<obs::Tracer>(trace_options);
  }
  std::unique_ptr<obs::Profiler> profiler;
  if (profile_sample > 0) {
    obs::Profiler::Options profile_options;
    profile_options.sample_every = profile_sample;
    profiler = std::make_unique<obs::Profiler>(profile_options);
    profiler->PublishMetrics(&metrics);
  }
  std::unique_ptr<obs::SloTracker> slo;
  if (slo_latency_ms > 0) {
    obs::SloTracker::Objectives objectives;
    objectives.latency_threshold_ns = slo_latency_ms * 1'000'000;
    slo = std::make_unique<obs::SloTracker>(objectives);
    slo->PublishMetrics(&metrics);
  }
  std::unique_ptr<obs::EventLog> eventlog;
  if (eventlog_capacity > 0) {
    obs::EventLog::Options elopts;
    elopts.capacity = eventlog_capacity;
    eventlog = std::make_unique<obs::EventLog>(elopts);
    eventlog->PublishMetrics(&metrics);
  }
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (incidents > 0) {
    obs::FlightRecorder::Options fropts;
    fropts.max_incidents = incidents;
    recorder = std::make_unique<obs::FlightRecorder>(fropts);
    recorder->AttachEventLog(eventlog.get());
    recorder->AttachTracer(tracer.get());
    recorder->AttachMetrics(&metrics);
    recorder->AttachProfiler(profiler.get());
    recorder->PublishMetrics(&metrics);
    recorder->SetConfigFingerprint(
        "slots=" + std::to_string(slots) +
        " slot_size=" + std::to_string(slot_size) + " | " +
        obs::BuildInfoSummary());
    if (slo != nullptr) {
      recorder->AddTrigger("slo_burn_alert", [s = slo.get()] {
        return s->Evaluate().alert_transitions;
      });
    }
  }
  net::StorageServer server(&metered, &metrics, tracer.get(),
                            profiler.get(), slo.get(), eventlog.get(),
                            recorder.get());
  Result<std::unique_ptr<net::TcpStorageListener>> listener =
      net::TcpStorageListener::Listen(&server, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", (*listener)->port());
  std::fflush(stdout);
  (*listener)->Run();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "hub") == 0) {
    return ServeHub(argc, argv);
  }
  const int code = ServeStorage(argc, argv);
  if (code == 2) {
    std::fprintf(
        stderr,
        "usage: %s <disk-file> <slots> <slot-size> [port]\n"
        "          [--trace-buffer SPANS] [--profile-sample N]\n"
        "          [--slo-latency-ms T] [--eventlog N] [--incidents K]\n"
        "       %s hub --pages N [--page-size B] [--cache M] [--c C]\n"
        "          [--shards S] [--queue-depth D] [--deadline-ms T]\n"
        "          [--port P] [--psk STR] [--seed X]\n"
        "          [--trace-buffer SPANS] [--profile-sample N]\n"
        "          [--slo-latency-ms T] [--eventlog N] [--incidents K]\n"
        "          [--control-c-bound C] [--control-kmin K]\n"
        "          [--control-kmax K] [--control-interval-ms T]\n"
        "          [--control-frozen 0|1]\n",
        argv[0], argv[0]);
  }
  return code;
}
