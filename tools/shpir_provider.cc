// Storage-provider daemon for the two-party model: hosts a file-backed
// block store and serves the shpir wire protocol over TCP. The provider
// only ever sees sealed pages.
//
//   shpir_provider <disk-file> <slots> <slot-size> [port]
//
// Creates the disk file if it does not exist. Prints the bound port and
// serves until killed.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "net/storage_server.h"
#include "net/tcp_transport.h"
#include "obs/metrics.h"
#include "storage/file_disk.h"
#include "storage/metered_disk.h"

int main(int argc, char** argv) {
  using namespace shpir;
  if (argc < 4 || argc > 5) {
    std::fprintf(stderr,
                 "usage: %s <disk-file> <slots> <slot-size> [port]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const uint64_t slots = std::strtoull(argv[2], nullptr, 10);
  const uint64_t slot_size = std::strtoull(argv[3], nullptr, 10);
  const uint16_t port =
      argc == 5 ? static_cast<uint16_t>(std::strtoul(argv[4], nullptr, 10))
                : 0;
  if (slots == 0 || slot_size == 0) {
    std::fprintf(stderr, "error: slots and slot-size must be positive\n");
    return 2;
  }

  // Open if present, else create.
  Result<std::unique_ptr<storage::FileDisk>> disk =
      storage::FileDisk::Open(path, slots, slot_size);
  if (!disk.ok()) {
    disk = storage::FileDisk::Create(path, slots, slot_size);
    if (!disk.ok()) {
      std::fprintf(stderr, "error: %s\n", disk.status().ToString().c_str());
      return 1;
    }
    std::printf("created %s (%llu x %llu bytes)\n", path.c_str(),
                (unsigned long long)slots, (unsigned long long)slot_size);
  } else {
    std::printf("opened %s\n", path.c_str());
  }

  // Everything the provider observes is public by assumption (it is the
  // untrusted party), so its process-wide registry may be served to any
  // client via the kStats wire op and the shpir_stats tool.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  storage::MeteredDisk metered(disk->get(), &metrics);
  net::StorageServer server(&metered, &metrics);
  Result<std::unique_ptr<net::TcpStorageListener>> listener =
      net::TcpStorageListener::Listen(&server, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", (*listener)->port());
  std::fflush(stdout);
  (*listener)->Run();
  return 0;
}
