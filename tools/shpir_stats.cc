// Observability CLI for the two-party model: polls a running
// shpir_provider for its metrics snapshot over the kStats wire op and
// renders it. The snapshot is aggregate-only by construction — the
// provider's registry never holds per-request data.
//
//   shpir_stats [--host H] [--port P]
//               [--json | --prometheus | --slo | --health | --events |
//                --control]
//               [--watch SECONDS]
//
// Default output is a human-readable table (headed by a build-identity
// line when the provider publishes shpir_build_info); --json dumps the
// raw wire payload; --prometheus re-exports it in Prometheus text
// format (for scraping through a sidecar); --slo fetches the provider's
// SLO/error-budget status document instead (SLO_STATUS op, JSON —
// requires the provider to run with --slo-latency-ms); --health fetches
// the readiness document (HEALTH op, JSON) and exits nonzero unless the
// endpoint reports "ready":true; --events fetches the structured
// event-log dump (EVENT_DUMP op, JSON — recent events plus the log's
// own emit/drop/rate-limit counters). --watch re-polls
// every SECONDS seconds until interrupted; transient poll failures
// (provider restarting, connection refused) are reported and retried,
// and the tool only gives up after several consecutive failures.
// --control fetches the privacy/cost controller status (CONTROL_STATUS
// op) and renders a per-shard table — current k, pending k, theoretical
// and live-estimated c, cooldown — plus the controller state line;
// combined with --watch it is a live controller dashboard.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/tcp_transport.h"
#include "net/wire.h"
#include "obs/export.h"

namespace {

using namespace shpir;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

enum class Format {
  kTable,
  kJson,
  kPrometheus,
  kSlo,
  kHealth,
  kEvents,
  kControl
};

/// Extracts the numeric/boolean token following `"key":` inside
/// `json[from..)`. Returns the empty string when absent. Good enough
/// for the controller's closed status schema; not a general parser.
std::string FieldToken(const std::string& json, const std::string& key,
                       size_t from, size_t to) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos || at >= to) {
    return "";
  }
  size_t begin = at + needle.size();
  size_t end = begin;
  while (end < to && json[end] != ',' && json[end] != '}' &&
         json[end] != ']') {
    ++end;
  }
  return json.substr(begin, end - begin);
}

/// Renders the controller status document as a state line plus one row
/// per shard (current k, pending k, c_theory, live c-estimate,
/// cooldown) — the operator's at-a-glance controller view.
void RenderControlTable(const std::string& json) {
  std::printf("controller: frozen=%s ticks=%s clamps=%s bounds=[%s, %s] "
              "c_bound=%s\n",
              FieldToken(json, "frozen", 0, json.size()).c_str(),
              FieldToken(json, "ticks", 0, json.size()).c_str(),
              FieldToken(json, "clamps", 0, json.size()).c_str(),
              FieldToken(json, "k_min", 0, json.size()).c_str(),
              FieldToken(json, "k_max", 0, json.size()).c_str(),
              FieldToken(json, "c_bound", 0, json.size()).c_str());
  std::printf("%6s %6s %9s %9s %11s %9s %9s\n", "shard", "k", "pending",
              "c_theory", "c_estimate", "queue", "cooldown");
  size_t cursor = json.find("\"shards\":[");
  if (cursor == std::string::npos) {
    return;
  }
  const size_t shards_end = json.find("],\"decisions\"", cursor);
  const size_t limit =
      shards_end == std::string::npos ? json.size() : shards_end;
  while (true) {
    const size_t open = json.find('{', cursor);
    if (open == std::string::npos || open >= limit) {
      break;
    }
    const size_t close = json.find('}', open);
    const size_t end = close == std::string::npos ? limit : close;
    std::printf("%6s %6s %9s %9s %11s %9s %9s\n",
                FieldToken(json, "shard", open, end).c_str(),
                FieldToken(json, "k", open, end).c_str(),
                FieldToken(json, "pending_k", open, end).c_str(),
                FieldToken(json, "c_theory", open, end).c_str(),
                FieldToken(json, "c_estimate", open, end).c_str(),
                FieldToken(json, "queue_fraction", open, end).c_str(),
                FieldToken(json, "cooldown", open, end).c_str());
    cursor = end + 1;
  }
}

int PollOnce(const std::string& host, uint16_t port, Format format) {
  Result<std::unique_ptr<net::TcpTransport>> transport =
      net::TcpTransport::Connect(host, port);
  if (!transport.ok()) {
    return Fail(transport.status());
  }
  net::Request request;
  request.op = format == Format::kSlo       ? net::Op::kSloStatus
               : format == Format::kHealth  ? net::Op::kHealth
               : format == Format::kEvents  ? net::Op::kEventDump
               : format == Format::kControl ? net::Op::kControlStatus
                                            : net::Op::kStats;
  if (format == Format::kControl) {
    net::ControlRequest control;  // Read-only status verb.
    request.payload = net::EncodeControlRequest(control);
  }
  Result<Bytes> reply =
      (*transport)->RoundTrip(net::EncodeRequest(request));
  if (!reply.ok()) {
    return Fail(reply.status());
  }
  Result<Bytes> payload = net::DecodeResponse(*reply);
  if (!payload.ok()) {
    return Fail(payload.status());
  }
  const std::string json(payload->begin(), payload->end());
  if (format == Format::kHealth) {
    std::printf("%s\n", json.c_str());
    // Load-balancer convention: nonzero exit when the endpoint does
    // not report itself ready.
    return json.find("\"ready\":true") != std::string::npos ? 0 : 1;
  }
  if (format == Format::kJson || format == Format::kSlo ||
      format == Format::kEvents) {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  if (format == Format::kControl) {
    RenderControlTable(json);
    return 0;
  }
  Result<obs::MetricsSnapshot> snapshot = obs::ParseJsonSnapshot(json);
  if (!snapshot.ok()) {
    return Fail(snapshot.status());
  }
  if (format == Format::kPrometheus) {
    std::fputs(obs::ToPrometheusText(*snapshot).c_str(), stdout);
  } else {
    // Identity header first: which binary produced these numbers.
    for (const obs::SnapshotInfo& info : snapshot->infos) {
      if (info.name != "shpir_build_info") {
        continue;
      }
      std::fputs("build:", stdout);
      for (const auto& [key, value] : info.labels) {
        std::printf(" %s=%s", key.c_str(), value.c_str());
      }
      std::fputc('\n', stdout);
    }
    std::fputs(obs::RenderTable(*snapshot).c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 9000;
  Format format = Format::kTable;
  uint64_t watch_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      format = Format::kJson;
    } else if (arg == "--prometheus") {
      format = Format::kPrometheus;
    } else if (arg == "--slo") {
      format = Format::kSlo;
    } else if (arg == "--health") {
      format = Format::kHealth;
    } else if (arg == "--events") {
      format = Format::kEvents;
    } else if (arg == "--control") {
      format = Format::kControl;
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--watch" && i + 1 < argc) {
      watch_seconds = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host H] [--port P] [--json | "
                   "--prometheus | --slo | --health | --events | "
                   "--control] [--watch SECONDS]\n",
                   argv[0]);
      return 2;
    }
  }
  if (watch_seconds == 0) {
    return PollOnce(host, port, format);
  }
  // Watch mode rides out transient failures: a provider mid-restart
  // should not kill the watcher, but a dead endpoint should not spin
  // forever either.
  constexpr int kMaxConsecutiveFailures = 5;
  int consecutive_failures = 0;
  bool first = true;
  while (true) {
    // Separate successive tables; error lines separate themselves.
    if (!first && consecutive_failures == 0 &&
        (format == Format::kTable || format == Format::kControl)) {
      std::printf("---\n");
      std::fflush(stdout);
    }
    first = false;
    const int rc = PollOnce(host, port, format);
    if (rc != 0) {
      if (++consecutive_failures >= kMaxConsecutiveFailures) {
        std::fprintf(stderr, "giving up after %d consecutive failures\n",
                     consecutive_failures);
        return rc;
      }
    } else {
      consecutive_failures = 0;
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
  }
}
