// Trace-dump CLI: fetches the buffered distributed-tracing spans from a
// running shpir endpoint as Chrome trace-event JSON (load the output in
// Perfetto / chrome://tracing; see docs/OBSERVABILITY.md).
//
// Two-party model — polls a shpir_provider's storage server over the
// plaintext TRACE_DUMP wire op:
//
//   shpir_trace [--host H] [--port P] [--out FILE]
//
// Three-party model — performs the hub handshake and fetches the dump
// through the sealed session, so only holders of the pre-shared key can
// read the (aggregate, public-by-construction) span buffer:
//
//   shpir_trace hub [--host H] [--port P] [--psk STR] [--client-id N]
//                   [--out FILE]
//
// Default output is stdout; --out writes the JSON to FILE.
//
// --lookup TRACE_ID filters the fetched dump client-side down to the
// spans of one trace (the 16-hex id shown in span args and in metric
// exemplars), so an exemplar on a latency histogram links directly to
// its example trace.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "net/tcp_transport.h"
#include "net/wire.h"

namespace {

using namespace shpir;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr,
                                              10);
  }
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Canonical 16-hex lowercase form of a user-supplied trace id
/// (tolerates an 0x prefix, uppercase, and missing leading zeros).
std::string NormalizeTraceId(std::string id) {
  if (id.size() >= 2 && id[0] == '0' && (id[1] == 'x' || id[1] == 'X')) {
    id.erase(0, 2);
  }
  for (char& c : id) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  while (id.size() < 16) {
    id.insert(id.begin(), '0');
  }
  return id;
}

/// Client-side trace lookup: keeps only the traceEvents whose args
/// carry `"trace_id":"<id>"`. The scan is string-aware (span names are
/// JSON-escaped and may contain braces), with one nesting level for
/// the args object.
Bytes FilterTrace(const Bytes& json, const std::string& trace_id) {
  const std::string text(json.begin(), json.end());
  const std::string needle = "\"trace_id\":\"" + trace_id + "\"";
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const size_t array = text.find("\"traceEvents\":[");
  size_t i = array == std::string::npos ? text.size() : array + 15;
  while (i < text.size() && text[i] != ']') {
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '{') {
      break;  // Malformed dump; emit what was matched so far.
    }
    const size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}' && --depth == 0) {
        ++i;
        break;
      }
    }
    const std::string event = text.substr(start, i - start);
    if (event.find(needle) != std::string::npos) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += event;
    }
  }
  out += "]}";
  return Bytes(out.begin(), out.end());
}

int Emit(const Flags& flags, const Bytes& dump) {
  const std::string lookup = flags.Get("lookup");
  const Bytes json =
      // shpir-lint-allow-next-line(secret-arg): operator CLI writing the operator-requested dump to their own terminal or file
      lookup.empty() ? dump : FilterTrace(dump, NormalizeTraceId(lookup));
  const std::string out_path = flags.Get("out");
  if (out_path.empty()) {
    // shpir-lint-allow-next-line(secret-log): operator CLI writing the operator-requested dump to their own terminal or file
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(json.data()),
            static_cast<std::streamsize>(json.size()));
  if (!out) {
    // shpir-lint-allow-next-line(secret-log): operator CLI writing the operator-requested dump to their own terminal or file
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  // shpir-lint-allow-next-line(secret-log): operator CLI writing the operator-requested dump to their own terminal or file
  std::fprintf(stderr, "wrote %zu bytes to %s\n", json.size(),
               out_path.c_str());
  return 0;
}

/// Two-party model: the provider's trace buffer is served plaintext —
/// the provider is the untrusted party, so its own spans (request kinds
/// and timing it already observes) are public by definition.
int DumpStorage(const Flags& flags) {
  Result<std::unique_ptr<net::TcpTransport>> transport =
      net::TcpTransport::Connect(
          flags.Get("host", "127.0.0.1"),
          static_cast<uint16_t>(flags.GetU64("port", 9000)));
  if (!transport.ok()) {
    return Fail(transport.status());
  }
  net::Request request;
  request.op = net::Op::kTraceDump;
  Result<Bytes> reply =
      (*transport)->RoundTrip(net::EncodeRequest(request));
  if (!reply.ok()) {
    return Fail(reply.status());
  }
  Result<Bytes> payload = net::DecodeResponse(*reply);
  if (!payload.ok()) {
    return Fail(payload.status());
  }
  return Emit(flags, *payload);
}

/// Three-party model: handshake with the hub, then fetch the dump
/// through the sealed session (authenticated TRACE_DUMP op).
int DumpHub(const Flags& flags) {
  Result<std::unique_ptr<net::TcpTransport>> transport =
      net::TcpTransport::Connect(
          flags.Get("host", "127.0.0.1"),
          static_cast<uint16_t>(flags.GetU64("port", 9000)));
  if (!transport.ok()) {
    return Fail(transport.status());
  }
  const std::string psk_text = flags.Get("psk", "shpir");
  const Bytes psk(psk_text.begin(), psk_text.end());
  crypto::SecureRandom rng;  // OS entropy.
  const uint64_t client_id = flags.values.count("client-id")
                                 ? flags.GetU64("client-id", 0)
                                 : rng.NextUint64();
  Bytes nonce(net::SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> hello_reply = (*transport)->RoundTrip(
      net::ServiceHub::MakeHello(client_id, nonce));
  if (!hello_reply.ok()) {
    return Fail(hello_reply.status());
  }
  Result<net::SecureSession> session = net::ServiceHub::CompleteHandshake(
      *hello_reply, psk, client_id, nonce);
  if (!session.ok()) {
    return Fail(session.status());
  }
  net::TcpTransport* wire = transport->get();
  net::PirServiceClient client(
      std::move(session).value(), [wire, client_id](ByteSpan record) {
        return wire->RoundTrip(net::ServiceHub::MakeData(client_id, record));
      });
  Result<Bytes> json = client.TraceDump();
  if (!json.ok()) {
    return Fail(json.status());
  }
  return Emit(flags, *json);
}

}  // namespace

int main(int argc, char** argv) {
  const bool hub = argc >= 2 && std::strcmp(argv[1], "hub") == 0;
  Flags flags;
  for (int i = hub ? 2 : 1; i < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) {
      std::fprintf(
          stderr,
          "usage: %s [--host H] [--port P] [--out FILE] "
          "[--lookup TRACE_ID]\n"
          "       %s hub [--host H] [--port P] [--psk STR] "
          "[--client-id N] [--out FILE] [--lookup TRACE_ID]\n",
          argv[0], argv[0]);
      return 2;
    }
    flags.values[argv[i] + 2] = argv[i + 1];
  }
  return hub ? DumpHub(flags) : DumpStorage(flags);
}
